"""Engine smoke bench -- a small sweep through the execution engine.

Unlike the paper benches this one exists for CI: it is sized to finish
in seconds, exercises the parallel executor and the result cache end to
end, and leaves a machine-readable timing entry in
``results/timings.json`` for the perf-artifact archive. The timed
kernel is a cold (cache-empty) window sweep; the assertions then verify
that a warm rerun is served entirely from the cache and agrees with the
cold run.
"""

import os
import time

from repro.analysis import overlap_threshold_sweep, window_size_sweep
from repro.apps.synthetic import synthetic_trace
from repro.core import SynthesisConfig
from repro.exec import ExecutionEngine, ResultCache
from repro.obs import tracing
from repro.pipeline import reset_shared_runner, shm

from _bench_utils import emit, engine_from_env

WINDOWS = [150, 400, 1_200, 6_000]

# Threshold sweep for the shared-plane gate: every point shares ONE
# window fingerprint pair (threshold lives in the conflict spec, not
# the window spec), the exact shape the plane accelerates.
THRESHOLDS = [0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45]
GATE_WINDOW = 1_200

# The plane must not cost wall-clock either: publish + attach overhead
# stays within 1.5x of the no-plane sweep (generous -- the arms are
# near parity on this kernel -- with an absolute floor so a sub-50ms
# run cannot fail on timer noise).
SHM_MAX_RATIO = 1.5
SHM_FLOOR_S = 0.05


def test_engine_sweep_smoke(benchmark, results_dir, tmp_path):
    trace = synthetic_trace(
        burst_cycles=400, total_cycles=24_000, num_initiators=6,
        num_targets=6, seed=5,
    )
    config = SynthesisConfig(max_targets_per_bus=None)
    cache = ResultCache(tmp_path / "cache")
    jobs = engine_from_env().jobs
    cold_engine = ExecutionEngine(jobs=jobs, cache=cache)

    points = benchmark.pedantic(
        lambda: window_size_sweep(trace, WINDOWS, config, engine=cold_engine),
        rounds=1,
        iterations=1,
    )

    # fresh cache handle on the same directory: stats count only the warm run
    warm_engine = ExecutionEngine(jobs=1, cache=ResultCache(cache.cache_dir))
    warm_points = window_size_sweep(trace, WINDOWS, config, engine=warm_engine)
    assert warm_points == points
    assert warm_engine.cache.stats.hits == len(WINDOWS)
    assert warm_engine.cache.stats.misses == 0

    emit(
        results_dir,
        "engine_smoke",
        "engine smoke sweep (synthetic 12-core, burst ~400 cy)\n"
        + "\n".join(
            f"  window {int(point.value):>5} cy -> "
            f"{point.it_buses} IT + {point.ti_buses} TI buses"
            for point in points
        )
        + f"\n  cache: {cache.stats}",
    )


def _traced_sweep(trace, config, enabled):
    """One jobs=2 threshold sweep from a cold process-global state with
    the plane on/off, returning (points, spans, seconds)."""
    reset_shared_runner()
    shm.reset_plane()
    shm.set_enabled(enabled)
    tracing.arm_tracing()
    try:
        with tracing.root_span("bench.shm_gate", plane=enabled):
            begin = time.perf_counter()
            points = overlap_threshold_sweep(
                trace, THRESHOLDS, GATE_WINDOW, config,
                engine=ExecutionEngine(jobs=2),
            )
            seconds = time.perf_counter() - begin
        spans = tracing.collect_spans()
    finally:
        tracing.clear_spans()
        tracing.disarm_tracing()
    return points, spans, seconds


def test_engine_sweep_shm_plane_gate(benchmark, results_dir):
    """Multi-worker sweep gate for the shared stage plane.

    With the plane on, the parent analyzes the sweep's shared window
    spec once pre-fan-out and publishes it; the gate asserts **zero
    per-worker re-windowing** (every ``pipeline.window`` span carries
    the parent pid) and that the workers actually attached the
    published segments (``shm.attach`` spans from worker pids). The
    no-plane arm must show the redundancy the plane removes -- worker
    pids re-windowing the same spec -- and both arms must agree on
    every designed point. Worker spans reach the parent through the
    ``REPRO_TRACE`` spool, so the assertions see pool-side work.
    """
    trace = synthetic_trace(
        burst_cycles=400, total_cycles=24_000, num_initiators=6,
        num_targets=6, seed=5,
    )
    config = SynthesisConfig(max_targets_per_bus=None)
    parent = os.getpid()
    try:
        # Untimed warmup: the first sweep in a process pays analytics
        # compilation and pool spin-up; without it the first timed arm
        # loses on one-time cost, not plane cost.
        _traced_sweep(trace, config, False)
        points, spans, shm_seconds = benchmark.pedantic(
            lambda: _traced_sweep(trace, config, True),
            rounds=1, iterations=1,
        )
        window_pids = [s.pid for s in spans if s.name == "pipeline.window"]
        attach_pids = [s.pid for s in spans if s.name == "shm.attach"]
        # Exactly one analysis per side, both in the parent; the pool
        # resolved every window lookup from the shared plane.
        assert window_pids == [parent, parent], window_pids
        assert attach_pids and all(p != parent for p in attach_pids), (
            attach_pids
        )

        off_points, off_spans, off_seconds = _traced_sweep(
            trace, config, False
        )
        off_window_pids = [
            s.pid for s in off_spans if s.name == "pipeline.window"
        ]
        # PR 9 behavior: each worker re-windows the shared spec itself.
        assert off_window_pids and all(
            p != parent for p in off_window_pids
        ), off_window_pids
        assert not any(s.name.startswith("shm.") for s in off_spans)
        assert points == off_points

        budget = max(off_seconds, SHM_FLOOR_S) * SHM_MAX_RATIO
        assert shm_seconds <= budget, (
            f"plane-on sweep out of budget: {shm_seconds:.3f}s vs "
            f"no-plane {off_seconds:.3f}s (x{SHM_MAX_RATIO} allowed)"
        )
    finally:
        shm.set_enabled(True)
        shm.reset_plane()
        reset_shared_runner()

    benchmark.extra_info["plane_on_s"] = round(shm_seconds, 4)
    benchmark.extra_info["plane_off_s"] = round(off_seconds, 4)
    benchmark.extra_info["worker_rewindow_spans_removed"] = len(
        off_window_pids
    )
    emit(
        results_dir,
        "engine_shm_gate",
        "shared-plane sweep gate (8 thresholds, jobs=2)\n"
        f"  plane on : {shm_seconds * 1e3:8.2f} ms "
        f"(window analyses: {len(window_pids)}, all parent; "
        f"worker attaches: {len(attach_pids)})\n"
        f"  plane off: {off_seconds * 1e3:8.2f} ms "
        f"(worker re-windowings: {len(off_window_pids)})\n"
        f"  points byte-identical: {[p.it_buses for p in points]}",
    )
