"""Engine smoke bench -- a small sweep through the execution engine.

Unlike the paper benches this one exists for CI: it is sized to finish
in seconds, exercises the parallel executor and the result cache end to
end, and leaves a machine-readable timing entry in
``results/timings.json`` for the perf-artifact archive. The timed
kernel is a cold (cache-empty) window sweep; the assertions then verify
that a warm rerun is served entirely from the cache and agrees with the
cold run.
"""

from repro.analysis import window_size_sweep
from repro.apps.synthetic import synthetic_trace
from repro.core import SynthesisConfig
from repro.exec import ExecutionEngine, ResultCache

from _bench_utils import emit, engine_from_env

WINDOWS = [150, 400, 1_200, 6_000]


def test_engine_sweep_smoke(benchmark, results_dir, tmp_path):
    trace = synthetic_trace(
        burst_cycles=400, total_cycles=24_000, num_initiators=6,
        num_targets=6, seed=5,
    )
    config = SynthesisConfig(max_targets_per_bus=None)
    cache = ResultCache(tmp_path / "cache")
    jobs = engine_from_env().jobs
    cold_engine = ExecutionEngine(jobs=jobs, cache=cache)

    points = benchmark.pedantic(
        lambda: window_size_sweep(trace, WINDOWS, config, engine=cold_engine),
        rounds=1,
        iterations=1,
    )

    # fresh cache handle on the same directory: stats count only the warm run
    warm_engine = ExecutionEngine(jobs=1, cache=ResultCache(cache.cache_dir))
    warm_points = window_size_sweep(trace, WINDOWS, config, engine=warm_engine)
    assert warm_points == points
    assert warm_engine.cache.stats.hits == len(WINDOWS)
    assert warm_engine.cache.stats.misses == 0

    emit(
        results_dir,
        "engine_smoke",
        "engine smoke sweep (synthetic 12-core, burst ~400 cy)\n"
        + "\n".join(
            f"  window {int(point.value):>5} cy -> "
            f"{point.it_buses} IT + {point.ti_buses} TI buses"
            for point in points
        )
        + f"\n  cache: {cache.stats}",
    )
