"""Scenario-suite bench -- the smoke suite end to end.

Sized for CI: four small, structurally distinct workloads on a 6x6
platform, each synthesized individually through the execution engine
(parallel + cached) plus one robust union-policy design replayed against
every scenario. The timed kernel is a cold (cache-empty) run; the
assertions then verify the acceptance properties -- zero replay
violations under the union policy, a robust bus count dominating every
per-scenario optimum, and a warm rerun served from the cache.
"""

from repro.exec import ExecutionEngine, ResultCache
from repro.scenarios import ScenarioSuiteRunner, build_suite

from _bench_utils import emit, engine_from_env


def test_scenario_suite_smoke(benchmark, results_dir, tmp_path):
    suite = build_suite("smoke")
    cache = ResultCache(tmp_path / "cache")
    jobs = engine_from_env().jobs
    cold_runner = ScenarioSuiteRunner(
        engine=ExecutionEngine(jobs=jobs, cache=cache), policy="union"
    )

    report = benchmark.pedantic(
        lambda: cold_runner.run(suite), rounds=1, iterations=1
    )

    assert report.total_violations == 0
    for outcome in report.outcomes:
        assert report.robust_buses >= outcome.individual_buses

    # fresh cache handle on the same directory: stats count only the warm run
    warm_runner = ScenarioSuiteRunner(
        engine=ExecutionEngine(jobs=1, cache=ResultCache(cache.cache_dir)),
        policy="union",
    )
    warm_report = warm_runner.run(suite)
    assert warm_report.robust_buses == report.robust_buses
    assert warm_runner.engine.cache.stats.hits == len(suite)
    assert warm_runner.engine.cache.stats.misses == 0

    emit(results_dir, "scenario_suite", report.summary())
