"""Sec. 7.3 -- real-time stream guarantees.

Critical streams whose traffic overlaps in any window are placed on
separate buses; the paper reports their packet latency on the designed
crossbar as "almost equal to the latency of perfect communication using
a full crossbar". We mark two private-memory streams critical in each
benchmark, design, and compare the critical streams' latency against the
full crossbar reference.

The timed kernel runs the whole experiment.
"""

from repro.analysis import format_table
from repro.apps import build_application
from repro.core import CrossbarSynthesizer, SynthesisConfig

from _bench_utils import emit

CRITICAL = (0, 4)
APPS = ("mat2", "des", "qsort")


def run_experiment():
    synthesizer = CrossbarSynthesizer(SynthesisConfig())
    results = {}
    for name in APPS:
        app = build_application(name, critical_targets=CRITICAL)
        full = app.simulate_full_crossbar()
        report = synthesizer.design(app, trace=full.trace)
        validation = app.simulate(
            report.design.it.as_list(),
            report.design.ti.as_list(),
            app.sim_cycles * 4,
        )
        results[name] = {
            "separated": (
                report.design.it.binding[CRITICAL[0]]
                != report.design.it.binding[CRITICAL[1]]
            ),
            "full_critical": full.latency_stats(critical_only=True),
            "designed_critical": validation.latency_stats(critical_only=True),
            "designed_all": validation.latency_stats(),
        }
    return results


def test_sec73_realtime_streams(benchmark, results_dir):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for name in APPS:
        data = results[name]
        ratio = (
            data["designed_critical"].mean / data["full_critical"].mean
        )
        rows.append(
            [
                name,
                str(data["separated"]),
                data["full_critical"].mean,
                data["designed_critical"].mean,
                ratio,
            ]
        )
    emit(
        results_dir,
        "sec73_realtime",
        format_table(
            [
                "application", "critical pair separated",
                "full-xbar critical avg", "designed critical avg",
                "designed/full",
            ],
            rows,
            title=(
                "Sec. 7.3: real-time stream latency on the designed "
                "crossbar (paper: ~= full crossbar)"
            ),
        ),
    )

    for name in APPS:
        data = results[name]
        assert data["separated"], name
        ratio = data["designed_critical"].mean / data["full_critical"].mean
        assert ratio < 1.35, name  # near-perfect-communication latency
