#!/usr/bin/env python
"""Gate bench timings against the committed baseline.

Reads the machine-readable timings the bench session emits
(``benchmarks/results/timings.json``) and compares each bench's mean
against ``benchmarks/results/baseline.json``. A bench slower than
``--max-ratio`` times its baseline fails the check (CI's perf gate);
the per-bench ratios are also written to ``results/regression_report.json``
so the perf artifact records the trajectory.

Baselines are wall-clock means measured on one reference machine, so the
gate is deliberately loose (default 2x): it catches algorithmic
regressions -- e.g. losing the columnar-kernel speedup -- not scheduler
noise.

Usage::

    python benchmarks/check_regression.py            # gate (CI)
    python benchmarks/check_regression.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_FORMAT = "repro-bench-baseline-v1"


def load_timings(path: Path) -> dict:
    """Per-bench mean seconds from a pytest-benchmark timings dump."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    means = {}
    for entry in payload.get("benchmarks", []):
        name = entry.get("name")
        mean = entry.get("mean")
        if name and isinstance(mean, (int, float)):
            means[name] = float(mean)
    return means


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--timings", type=Path, default=RESULTS_DIR / "timings.json",
        help="timings JSON written by the bench session",
    )
    parser.add_argument(
        "--baseline", type=Path, default=RESULTS_DIR / "baseline.json",
        help="committed baseline JSON",
    )
    parser.add_argument(
        "--max-ratio", type=float, default=2.0,
        help="fail when mean exceeds baseline * ratio (default: 2.0)",
    )
    parser.add_argument(
        "--allow-missing", action="store_true",
        help="do not fail when a baselined bench is absent from the timings",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current timings and exit",
    )
    parser.add_argument(
        "--headroom", type=float, default=1.5,
        help="padding factor applied to measured means when writing the "
        "baseline, absorbing cross-machine/CI scheduler variance "
        "(default: 1.5)",
    )
    parser.add_argument(
        "--record-new", action="store_true",
        help="append padded baseline entries for benches that have none "
        "yet (existing entries are left untouched)",
    )
    args = parser.parse_args(argv)

    if not args.timings.exists():
        print(f"error: no timings at {args.timings}; run the benches first")
        return 1
    measured = load_timings(args.timings)

    if args.update_baseline:
        payload = {
            "format": BASELINE_FORMAT,
            "note": (
                "Upper-bound mean bench wall-clock seconds: measured "
                f"reference-machine means padded by {args.headroom}x for "
                "cross-machine and CI scheduler variance. CI fails when a "
                "bench regresses past max-ratio times these values. "
                "Regenerate with 'python benchmarks/check_regression.py "
                "--update-baseline' after intentional performance changes."
            ),
            "measured_means_s": {
                name: round(mean, 4) for name, mean in sorted(measured.items())
            },
            "benchmarks": {
                name: round(mean * args.headroom, 4)
                for name, mean in sorted(measured.items())
            },
        }
        args.baseline.parent.mkdir(exist_ok=True)
        args.baseline.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(
            f"baseline updated: {args.baseline} ({len(measured)} benches, "
            f"means padded {args.headroom}x)"
        )
        return 0

    # A bench without a baseline entry is *new*: it is recorded in the
    # report (and optionally into the baseline via --record-new) but can
    # never fail the gate -- otherwise adding a bench would break CI
    # before its baseline is committed. An absent baseline file is the
    # degenerate case where every bench is new.
    if args.baseline.exists():
        baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    else:
        print(f"note: no baseline at {args.baseline}; all benches are new")
        baseline = {"format": BASELINE_FORMAT, "benchmarks": {},
                    "measured_means_s": {}}
    expected = baseline.get("benchmarks", {})

    failures = []
    report = {}
    for name, reference in sorted(expected.items()):
        mean = measured.get(name)
        if mean is None:
            report[name] = {"baseline_s": reference, "status": "missing"}
            message = f"  {name}: MISSING from timings (baseline {reference}s)"
            if args.allow_missing:
                print(message + " [allowed]")
            else:
                print(message)
                failures.append(name)
            continue
        ratio = mean / reference if reference else float("inf")
        status = "ok" if ratio <= args.max_ratio else "regression"
        report[name] = {
            "baseline_s": reference,
            "mean_s": round(mean, 4),
            "ratio": round(ratio, 3),
            "status": status,
        }
        print(
            f"  {name}: {mean:.4f}s vs baseline {reference:.4f}s "
            f"-> {ratio:.2f}x [{status}]"
        )
        if status == "regression":
            failures.append(name)
    new_benches = sorted(set(measured) - set(expected))
    for name in new_benches:
        report[name] = {"mean_s": round(measured[name], 4), "status": "new"}
        print(f"  {name}: {measured[name]:.4f}s (no baseline yet -- recorded)")
    if args.record_new and new_benches:
        for name in new_benches:
            baseline.setdefault("measured_means_s", {})[name] = round(
                measured[name], 4
            )
            baseline.setdefault("benchmarks", {})[name] = round(
                measured[name] * args.headroom, 4
            )
        args.baseline.parent.mkdir(exist_ok=True)
        args.baseline.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(
            f"recorded {len(new_benches)} new baseline entr"
            f"{'y' if len(new_benches) == 1 else 'ies'} "
            f"(means padded {args.headroom}x) into {args.baseline}"
        )

    report_path = args.timings.parent / "regression_report.json"
    report_path.write_text(
        json.dumps(
            {"max_ratio": args.max_ratio, "benchmarks": report},
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    if failures:
        print(
            f"FAIL: {len(failures)} bench(es) regressed past "
            f"{args.max_ratio}x the committed baseline: {', '.join(failures)}"
        )
        return 1
    print(f"OK: {len(report)} bench(es) within {args.max_ratio}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
