"""Incremental suite re-synthesis bench: cold run vs one-edit warm rerun.

The cold phase runs the smoke suite end to end on a fresh
:class:`ScenarioSuiteRunner`. One scenario's generator seed is then
edited and the *same* runner re-runs the suite -- the timed kernel. The
staged pipeline serves every unchanged scenario's stages (trace build,
windowing, conflicts, individual solve) from its artifact store, so the
warm rerun re-executes only the edited scenario plus the suite-level
merge solve.

This bench doubles as the CI gate for the incremental path: it asserts
the warm rerun performs *strictly fewer* solver invocations than the
cold run and still produces a report byte-identical to a cold run of
the edited suite.
"""

import json
import time

from repro.core import SOLVE_COUNTER
from repro.scenarios import (
    Scenario,
    ScenarioSuite,
    ScenarioSuiteRunner,
    build_suite,
)

from _bench_utils import emit


def _edit_one_scenario(suite: ScenarioSuite) -> ScenarioSuite:
    """The suite with one scenario's generator seed changed."""
    scenarios = list(suite.scenarios)
    payload = scenarios[1].to_dict()
    payload["params"] = {**payload["params"], "seed": 97}
    scenarios[1] = Scenario.from_dict(payload)
    return ScenarioSuite(
        name=suite.name, scenarios=tuple(scenarios),
        description=suite.description,
    )


def test_incremental_suite_edit(benchmark, results_dir):
    suite = build_suite("smoke")
    edited = _edit_one_scenario(suite)
    runner = ScenarioSuiteRunner()

    SOLVE_COUNTER.reset()
    cold_begin = time.perf_counter()
    runner.run(suite)
    cold_seconds = time.perf_counter() - cold_begin
    cold_solves = SOLVE_COUNTER.total

    SOLVE_COUNTER.reset()
    warm_report = benchmark.pedantic(
        lambda: runner.run(edited), rounds=1, iterations=1
    )
    warm_solves = SOLVE_COUNTER.total

    # CI gate: the warm rerun must re-solve strictly less than cold.
    assert 0 < warm_solves < cold_solves

    # ... while staying byte-identical to a cold run of the edited suite.
    reference = ScenarioSuiteRunner().run(edited)
    warm_bytes = json.dumps(warm_report.to_dict(), sort_keys=True)
    assert warm_bytes == json.dumps(reference.to_dict(), sort_keys=True)

    warm_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["cold_solves"] = cold_solves
    benchmark.extra_info["warm_solves"] = warm_solves
    benchmark.extra_info["warm_vs_cold_speedup"] = (
        round(cold_seconds / warm_seconds, 2) if warm_seconds else None
    )

    breakdown = runner.explain_cache()
    emit(
        results_dir,
        "incremental_suite",
        "\n".join(
            [
                "incremental suite re-synthesis (smoke, one scenario edited)",
                f"  cold run : {cold_solves} solves, {cold_seconds:.3f}s",
                f"  warm run : {warm_solves} solves, {warm_seconds:.3f}s",
                "",
                "warm-run stage breakdown:",
                breakdown,
            ]
        ),
    )
