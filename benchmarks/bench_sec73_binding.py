"""Sec. 7.3 -- effect of the optimal binding.

The paper compares the overlap-minimizing binding (MILP2) against random
bindings that merely satisfy the design constraints (Eqs. 3-9): random
binding averaged 2.1x higher packet latency across the benchmarks.

For each application we keep the designed configuration (bus counts)
fixed, swap in random feasible bindings on both crossbars, and measure
the average-latency ratio against the optimally bound design.

The timed kernel runs the whole experiment.
"""

import statistics

from repro.analysis import format_table
from repro.core import CrossbarSynthesizer, SynthesisConfig
from repro.core.binding import random_feasible_binding
from repro.core.spec import CrossbarDesign

from _bench_utils import PAPER_APPS, emit

RANDOM_SEEDS = (1, 2, 3)


def run_experiment(app_traces):
    synthesizer = CrossbarSynthesizer(SynthesisConfig())
    results = {}
    for name, (app, trace) in app_traces.items():
        report = synthesizer.design(app, trace=trace)
        optimal_run = app.simulate(
            report.design.it.as_list(),
            report.design.ti.as_list(),
            app.sim_cycles * 4,
        )
        optimal_mean = optimal_run.latency_stats().mean
        random_means = []
        for seed in RANDOM_SEEDS:
            random_design = CrossbarDesign(
                it=random_feasible_binding(
                    report.it_report.problem,
                    report.it_report.conflicts,
                    report.design.it.num_buses,
                    synthesizer.config,
                    seed=seed,
                ),
                ti=random_feasible_binding(
                    report.ti_report.problem,
                    report.ti_report.conflicts,
                    report.design.ti.num_buses,
                    synthesizer.config,
                    seed=seed + 100,
                ),
                label=f"random-{seed}",
            )
            run = app.simulate(
                random_design.it.as_list(),
                random_design.ti.as_list(),
                app.sim_cycles * 4,
            )
            random_means.append(run.latency_stats().mean)
        results[name] = (optimal_mean, random_means)
    return results


def test_sec73_random_vs_optimal_binding(benchmark, app_traces, results_dir):
    results = benchmark.pedantic(
        run_experiment, args=(app_traces,), rounds=1, iterations=1
    )

    rows = []
    ratios = []
    for name in PAPER_APPS:
        optimal_mean, random_means = results[name]
        ratio = statistics.mean(random_means) / optimal_mean
        ratios.append(ratio)
        rows.append(
            [name, optimal_mean, statistics.mean(random_means), ratio]
        )
    overall = statistics.mean(ratios)
    rows.append(["average", "", "", overall])
    emit(
        results_dir,
        "sec73_binding",
        format_table(
            [
                "application", "optimal avg lat (cy)",
                "random avg lat (cy)", "random/optimal",
            ],
            rows,
            title=(
                "Sec. 7.3: random vs optimal binding "
                "(paper: random is ~2.1x worse on average)"
            ),
        ),
    )

    # random binding must never beat the optimal one meaningfully
    assert all(ratio > 0.97 for ratio in ratios)
    # and must be clearly worse in aggregate
    assert overall > 1.15
