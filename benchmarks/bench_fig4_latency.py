"""Fig. 4 -- packet latencies of avg-based vs window-based designs.

The paper normalizes each design's average (Fig. 4(a)) and maximum
(Fig. 4(b)) packet latency to the full crossbar's, for all five MPSoCs.
Crossbars designed from average traffic land at 4-7x the window-designed
latencies; the window-based designs stay near the full crossbar.

The timed kernel runs the whole experiment (design + 3 validation
simulations per application).
"""

from repro.analysis import bar_chart, compare_designs, format_table
from repro.core import (
    CrossbarSynthesizer,
    SynthesisConfig,
    average_traffic_design,
    full_crossbar_design,
)

from _bench_utils import PAPER_APPS, emit


def run_experiment(app_traces):
    synthesizer = CrossbarSynthesizer(SynthesisConfig())
    outcome = {}
    for name, (app, trace) in app_traces.items():
        windowed = synthesizer.design(app, trace=trace).design
        average = average_traffic_design(trace)
        full = full_crossbar_design(trace)
        evaluations = compare_designs(app, [windowed, average, full])
        outcome[name] = evaluations
    return outcome


def test_fig4_relative_latencies(benchmark, app_traces, results_dir):
    outcome = benchmark.pedantic(
        run_experiment, args=(app_traces,), rounds=1, iterations=1
    )

    rows = []
    avg_series, win_series = [], []
    max_avg_series, max_win_series = [], []
    for name in PAPER_APPS:
        evaluations = outcome[name]
        full = evaluations["full"].stats
        avg_stats = evaluations["average-traffic"].stats
        win_stats = evaluations["windowed"].stats
        avg_rel = avg_stats.mean / full.mean
        win_rel = win_stats.mean / full.mean
        avg_max_rel = avg_stats.maximum / full.maximum
        win_max_rel = win_stats.maximum / full.maximum
        avg_series.append(avg_rel)
        win_series.append(win_rel)
        max_avg_series.append(avg_max_rel)
        max_win_series.append(win_max_rel)
        rows.append([name, avg_rel, win_rel, avg_max_rel, win_max_rel,
                     avg_rel / win_rel])

    table = format_table(
        [
            "application", "avg-design mean rel", "win-design mean rel",
            "avg-design max rel", "win-design max rel", "avg/win mean",
        ],
        rows,
        title=(
            "Fig. 4: packet latency relative to a full crossbar\n"
            "(paper: avg designs are 4x-7x above win designs; win stays "
            "near 1)"
        ),
    )
    chart_a = bar_chart(
        [f"{name}:avg" for name in PAPER_APPS]
        + [f"{name}:win" for name in PAPER_APPS],
        avg_series + win_series,
        title="Fig. 4(a): average packet latency (relative to full)",
        unit="x",
    )
    chart_b = bar_chart(
        [f"{name}:avg" for name in PAPER_APPS]
        + [f"{name}:win" for name in PAPER_APPS],
        max_avg_series + max_win_series,
        title="Fig. 4(b): maximum packet latency (relative to full)",
        unit="x",
    )
    emit(results_dir, "fig4", "\n\n".join([table, chart_a, chart_b]))

    for name, avg_rel, win_rel in zip(PAPER_APPS, avg_series, win_series):
        # windowed designs stay within acceptable bounds of the minimum
        assert win_rel < 1.6, name
        # average-traffic designs are far worse, on every application
        assert avg_rel > 1.7 * win_rel, name
    for avg_max, win_max in zip(max_avg_series, max_win_series):
        assert avg_max > 3 * win_max
