"""Fig. 5(a) -- initiator->target crossbar size vs window size.

The paper sweeps the analysis window on a 20-core synthetic benchmark
with ~1000-cycle bursts: windows much smaller than the burst give a
near-full crossbar; windows of 1-4 burst lengths compact sharply; very
large windows degenerate toward the average-traffic design.

The timed kernel is the full sweep (assignment backend, for baseline
comparability); an untimed tier split then re-solves a window subset
through each exact MILP backend tier (``--milp-backend``) and charts
seconds per window size per tier.
"""

import time

from repro.analysis import bar_chart, format_table, window_size_sweep, xy_plot
from repro.apps.synthetic import synthetic_trace
from repro.core import SynthesisConfig

from _bench_utils import emit, engine_from_env, note_kernel_speedup

BURST = 1_000
WINDOWS = [200, 300, 400, 750, 1_000, 2_000, 3_000, 4_000, 50_000, 120_000]

MILP_TIERS = ("highs", "portfolio")
TIER_WINDOWS = [200, 1_000, 4_000, 120_000]


def test_fig5a_window_size_sweep(benchmark, results_dir):
    trace = synthetic_trace(
        burst_cycles=BURST, total_cycles=120_000, seed=3
    )
    config = SynthesisConfig(max_targets_per_bus=None)
    engine = engine_from_env()

    points = benchmark.pedantic(
        lambda: window_size_sweep(trace, WINDOWS, config, engine=engine),
        rounds=1,
        iterations=1,
    )
    note_kernel_speedup(benchmark)

    table = format_table(
        ["window (cy)", "window/burst", "IT buses"],
        [
            [int(point.value), point.value / BURST, point.it_buses]
            for point in points
        ],
        title=(
            "Fig. 5(a): IT crossbar size vs window size "
            f"(synthetic 20-core benchmark, burst ~{BURST} cy)"
        ),
    )
    plot = xy_plot(
        [point.value / BURST for point in points],
        [point.it_buses for point in points],
        title="IT buses vs window/burst ratio",
        x_label="window/burst",
        y_label="buses",
    )
    emit(results_dir, "fig5a", table + "\n\n" + plot)

    sizes = {int(point.value): point.it_buses for point in points}

    # PR 9 follow-up: the same sweep points through each exact MILP
    # backend tier. The assignment sweep above already warmed the
    # shared window store, so every tier resolves windows from the
    # plane and the split isolates *solver* cost per window size.
    # All tiers are exact -- bus counts must match point for point.
    tier_split = {}
    for tier in MILP_TIERS:
        tier_config = SynthesisConfig(
            max_targets_per_bus=None, backend="milp", milp_backend=tier
        )
        per_window = {}
        for window in TIER_WINDOWS:
            begin = time.perf_counter()
            (point,) = window_size_sweep(
                trace, [window], tier_config, engine=engine
            )
            per_window[window] = round(time.perf_counter() - begin, 4)
            assert point.it_buses == sizes[window], (
                f"milp:{tier} disagrees with assignment at window {window}"
            )
        tier_split[tier] = per_window
    benchmark.extra_info["milp_tier_split_s"] = tier_split

    tier_table = format_table(
        ["window (cy)"] + [f"{tier} (s)" for tier in MILP_TIERS],
        [
            [window] + [tier_split[tier][window] for tier in MILP_TIERS]
            for window in TIER_WINDOWS
        ],
        title=(
            "Fig. 5(a) sweep, MILP backend tier split "
            "(seconds per design point, windows pre-warmed)"
        ),
    )
    tier_charts = [
        bar_chart(
            [str(window) for window in TIER_WINDOWS],
            [tier_split[tier][window] * 1e3 for window in TIER_WINDOWS],
            title=f"milp:{tier} ms per window size",
            unit=" ms",
        )
        for tier in MILP_TIERS
    ]
    emit(
        results_dir,
        "fig5a_milp_tiers",
        "\n\n".join([tier_table] + tier_charts),
    )

    full_size = trace.num_targets
    # below the burst size: close to a full crossbar
    assert sizes[200] >= 0.8 * full_size
    # a few burst lengths: sharply compacted
    assert sizes[4_000] <= 0.6 * sizes[200]
    # monotone non-increasing across the sweep
    ordered = [point.it_buses for point in points]
    assert all(a >= b for a, b in zip(ordered, ordered[1:]))
