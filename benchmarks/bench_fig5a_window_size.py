"""Fig. 5(a) -- initiator->target crossbar size vs window size.

The paper sweeps the analysis window on a 20-core synthetic benchmark
with ~1000-cycle bursts: windows much smaller than the burst give a
near-full crossbar; windows of 1-4 burst lengths compact sharply; very
large windows degenerate toward the average-traffic design.

The timed kernel is the full sweep.
"""

from repro.analysis import format_table, window_size_sweep, xy_plot
from repro.apps.synthetic import synthetic_trace
from repro.core import SynthesisConfig

from _bench_utils import emit, engine_from_env, note_kernel_speedup

BURST = 1_000
WINDOWS = [200, 300, 400, 750, 1_000, 2_000, 3_000, 4_000, 50_000, 120_000]


def test_fig5a_window_size_sweep(benchmark, results_dir):
    trace = synthetic_trace(
        burst_cycles=BURST, total_cycles=120_000, seed=3
    )
    config = SynthesisConfig(max_targets_per_bus=None)
    engine = engine_from_env()

    points = benchmark.pedantic(
        lambda: window_size_sweep(trace, WINDOWS, config, engine=engine),
        rounds=1,
        iterations=1,
    )
    note_kernel_speedup(benchmark)

    table = format_table(
        ["window (cy)", "window/burst", "IT buses"],
        [
            [int(point.value), point.value / BURST, point.it_buses]
            for point in points
        ],
        title=(
            "Fig. 5(a): IT crossbar size vs window size "
            f"(synthetic 20-core benchmark, burst ~{BURST} cy)"
        ),
    )
    plot = xy_plot(
        [point.value / BURST for point in points],
        [point.it_buses for point in points],
        title="IT buses vs window/burst ratio",
        x_label="window/burst",
        y_label="buses",
    )
    emit(results_dir, "fig5a", table + "\n\n" + plot)

    sizes = {int(point.value): point.it_buses for point in points}
    full_size = trace.num_targets
    # below the burst size: close to a full crossbar
    assert sizes[200] >= 0.8 * full_size
    # a few burst lengths: sharply compacted
    assert sizes[4_000] <= 0.6 * sizes[200]
    # monotone non-increasing across the sweep
    ordered = [point.it_buses for point in points]
    assert all(a >= b for a, b in zip(ordered, ordered[1:]))
