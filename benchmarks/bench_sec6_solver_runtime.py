"""Sec. 6 -- solver runtime ablations.

Three claims are exercised on Mat2's initiator->target problem:

1. **Two-MILP split**: "solving MILP1 for feasibility check is usually
   faster than solving MILP2 with objective function and additional
   constraints". We time the feasibility probe against the full binding
   optimization at the designed configuration.
2. **Specialized solver vs literal MILP**: the assignment branch-and-
   bound answers the same models as the Eq. 3-11 MILP; we time both
   backends on the same feasibility probe (both exact, wildly different
   constants).
3. **MILP backend tiers**: the native HiGHS backend (and the racing
   portfolio built on it) must beat the pure-Python reference branch
   and bound by >= 3x on the largest binding formulation -- the gate
   that justifies racing at all. Warm-started re-solves must explore
   fewer branch-and-bound nodes than cold ones.

These use pytest-benchmark's statistics properly (multiple rounds)
where the kernels are sub-second; the reference MILP2 solve is tens of
seconds, so the backend gate times it exactly once.
"""

import time

import pytest

from repro.core import SynthesisConfig, build_conflicts
from repro.core.assignment import solve_assignment
from repro.core.binding import binding_overlap_objective
from repro.core.formulation import build_binding_model, build_feasibility_model
from repro.core.problem import CrossbarDesignProblem
from repro.core.search import search_minimum_buses
from repro.milp import BranchBoundOptions, solve_milp


@pytest.fixture(scope="module")
def mat2_problem(app_traces):
    _app, trace = app_traces["mat2"]
    problem = CrossbarDesignProblem.from_trace(trace, window_size=1_000)
    config = SynthesisConfig()
    conflicts = build_conflicts(problem, config)
    outcome = search_minimum_buses(problem, conflicts, config)
    return problem, conflicts, config, outcome.num_buses


def test_milp1_feasibility_probe(benchmark, mat2_problem):
    """MILP1 flavour: first feasible binding at the designed size."""
    problem, conflicts, config, num_buses = mat2_problem
    result = benchmark(
        lambda: solve_assignment(
            problem, conflicts, num_buses,
            max_targets_per_bus=config.max_targets_per_bus,
        )
    )
    assert result.is_feasible


def test_milp2_binding_optimization(benchmark, mat2_problem):
    """MILP2 flavour: full overlap-minimizing optimization."""
    problem, conflicts, config, num_buses = mat2_problem
    result = benchmark(
        lambda: solve_assignment(
            problem, conflicts, num_buses,
            max_targets_per_bus=config.max_targets_per_bus,
            optimize=True,
        )
    )
    assert result.status == "optimal"


def test_literal_milp_feasibility(benchmark, mat2_problem):
    """The same feasibility probe through the literal Eq. 3-9 MILP."""
    problem, conflicts, config, num_buses = mat2_problem

    def probe():
        model = build_feasibility_model(
            problem, conflicts, num_buses, config.max_targets_per_bus
        )
        return solve_milp(
            model.model, BranchBoundOptions(feasibility_only=True)
        )

    solution = benchmark.pedantic(probe, rounds=3, iterations=1)
    assert solution.is_feasible


def test_split_is_faster_than_direct_optimization(benchmark, mat2_problem):
    """The Sec. 6 rationale, asserted directly on solver node counts:
    the feasibility check explores far fewer nodes than the
    optimization, so probing configurations with MILP1 before running
    MILP2 once is the right split."""
    problem, conflicts, config, num_buses = mat2_problem

    def both():
        feasibility = solve_assignment(
            problem, conflicts, num_buses,
            max_targets_per_bus=config.max_targets_per_bus,
        )
        optimization = solve_assignment(
            problem, conflicts, num_buses,
            max_targets_per_bus=config.max_targets_per_bus,
            optimize=True,
        )
        return feasibility, optimization

    feasibility, optimization = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    assert feasibility.nodes <= optimization.nodes


def test_milp2_backend_racing(benchmark, mat2_problem):
    """The backend-tier gate on the largest binding formulation.

    The benchmark kernel is the HiGHS solve; the reference and
    portfolio solves are timed once each (the reference takes tens of
    seconds -- exactly why the tier exists) and attached as
    ``extra_info`` so the timings JSON carries the full per-backend
    picture. Both the HiGHS and portfolio paths must clear >= 3x over
    the reference, and all three must agree on the optimal objective.
    """
    problem, conflicts, config, num_buses = mat2_problem
    model = build_binding_model(
        problem, conflicts, num_buses, config.max_targets_per_bus
    )

    def timed(backend):
        begin = time.perf_counter()
        solution = solve_milp(model.model, BranchBoundOptions(backend=backend))
        return solution, time.perf_counter() - begin

    reference, reference_s = timed("reference")
    portfolio, portfolio_s = timed("portfolio")
    highs = benchmark.pedantic(
        lambda: solve_milp(model.model, BranchBoundOptions(backend="highs")),
        rounds=3, iterations=1,
    )
    assert highs.objective == pytest.approx(reference.objective)
    assert portfolio.objective == pytest.approx(reference.objective)

    highs_s = benchmark.stats.stats.mean
    benchmark.extra_info["reference_s"] = round(reference_s, 4)
    benchmark.extra_info["highs_s"] = round(highs_s, 4)
    benchmark.extra_info["portfolio_s"] = round(portfolio_s, 4)
    benchmark.extra_info["highs_speedup"] = round(reference_s / highs_s, 2)
    benchmark.extra_info["portfolio_speedup"] = round(
        reference_s / portfolio_s, 2
    )
    benchmark.extra_info["reference_nodes"] = reference.nodes
    benchmark.extra_info["highs_nodes"] = highs.nodes
    assert reference_s / highs_s >= 3.0
    assert reference_s / portfolio_s >= 3.0


def test_milp2_warm_start_nodes(benchmark, app_traces):
    """Warm-started re-solves explore strictly fewer nodes than cold.

    Qsort's binding formulation keeps the reference solver sub-second;
    the warm hint is the cold optimum's binding, i.e. exactly what the
    pipeline's hint slot would serve after a suite edit.
    """
    _app, trace = app_traces["qsort"]
    problem = CrossbarDesignProblem.from_trace(trace, window_size=1_000)
    config = SynthesisConfig()
    conflicts = build_conflicts(problem, config)
    num_buses = search_minimum_buses(problem, conflicts, config).num_buses
    model = build_binding_model(
        problem, conflicts, num_buses, config.max_targets_per_bus
    )
    options = BranchBoundOptions(backend="reference")
    cold = solve_milp(model.model, options)
    binding = model.extract_binding(cold)
    warm_values = model.warm_values(
        binding, objective=binding_overlap_objective(problem, binding)
    )
    warm = benchmark.pedantic(
        lambda: solve_milp(model.model, options, warm_values=warm_values),
        rounds=3, iterations=1,
    )
    assert warm.objective == pytest.approx(cold.objective)
    benchmark.extra_info["cold_nodes"] = cold.nodes
    benchmark.extra_info["warm_nodes"] = warm.nodes
    assert warm.nodes < cold.nodes
