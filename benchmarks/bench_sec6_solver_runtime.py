"""Sec. 6 -- solver runtime ablations.

Two claims are exercised on Mat2's initiator->target problem:

1. **Two-MILP split**: "solving MILP1 for feasibility check is usually
   faster than solving MILP2 with objective function and additional
   constraints". We time the feasibility probe against the full binding
   optimization at the designed configuration.
2. **Specialized solver vs literal MILP**: the assignment branch-and-
   bound answers the same models as the Eq. 3-11 MILP; we time both
   backends on the same feasibility probe (both exact, wildly different
   constants).

These use pytest-benchmark's statistics properly (multiple rounds), as
the kernels are sub-second.
"""

import pytest

from repro.core import SynthesisConfig, build_conflicts
from repro.core.assignment import solve_assignment
from repro.core.formulation import build_feasibility_model
from repro.core.problem import CrossbarDesignProblem
from repro.core.search import search_minimum_buses
from repro.milp import BranchBoundOptions, solve_milp


@pytest.fixture(scope="module")
def mat2_problem(app_traces):
    _app, trace = app_traces["mat2"]
    problem = CrossbarDesignProblem.from_trace(trace, window_size=1_000)
    config = SynthesisConfig()
    conflicts = build_conflicts(problem, config)
    outcome = search_minimum_buses(problem, conflicts, config)
    return problem, conflicts, config, outcome.num_buses


def test_milp1_feasibility_probe(benchmark, mat2_problem):
    """MILP1 flavour: first feasible binding at the designed size."""
    problem, conflicts, config, num_buses = mat2_problem
    result = benchmark(
        lambda: solve_assignment(
            problem, conflicts, num_buses,
            max_targets_per_bus=config.max_targets_per_bus,
        )
    )
    assert result.is_feasible


def test_milp2_binding_optimization(benchmark, mat2_problem):
    """MILP2 flavour: full overlap-minimizing optimization."""
    problem, conflicts, config, num_buses = mat2_problem
    result = benchmark(
        lambda: solve_assignment(
            problem, conflicts, num_buses,
            max_targets_per_bus=config.max_targets_per_bus,
            optimize=True,
        )
    )
    assert result.status == "optimal"


def test_literal_milp_feasibility(benchmark, mat2_problem):
    """The same feasibility probe through the literal Eq. 3-9 MILP."""
    problem, conflicts, config, num_buses = mat2_problem

    def probe():
        model = build_feasibility_model(
            problem, conflicts, num_buses, config.max_targets_per_bus
        )
        return solve_milp(
            model.model, BranchBoundOptions(feasibility_only=True)
        )

    solution = benchmark.pedantic(probe, rounds=3, iterations=1)
    assert solution.is_feasible


def test_split_is_faster_than_direct_optimization(benchmark, mat2_problem):
    """The Sec. 6 rationale, asserted directly on solver node counts:
    the feasibility check explores far fewer nodes than the
    optimization, so probing configurations with MILP1 before running
    MILP2 once is the right split."""
    problem, conflicts, config, num_buses = mat2_problem

    def both():
        feasibility = solve_assignment(
            problem, conflicts, num_buses,
            max_targets_per_bus=config.max_targets_per_bus,
        )
        optimization = solve_assignment(
            problem, conflicts, num_buses,
            max_targets_per_bus=config.max_targets_per_bus,
            optimize=True,
        )
        return feasibility, optimization

    feasibility, optimization = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    assert feasibility.nodes <= optimization.nodes
