"""Shared constants and output helpers for the experiment benches."""

from pathlib import Path

PAPER_APPS = ("mat1", "mat2", "fft", "qsort", "des")

RESULTS_DIR = Path(__file__).parent / "results"


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a bench's table and persist it under results/."""
    print(f"\n{text}\n")
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
