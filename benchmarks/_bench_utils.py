"""Shared constants and output helpers for the experiment benches."""

import json
import os
from pathlib import Path

from repro.exec import ExecutionEngine

PAPER_APPS = ("mat1", "mat2", "fft", "qsort", "des")

RESULTS_DIR = Path(__file__).parent / "results"

TIMINGS_FILE = RESULTS_DIR / "timings.json"

PRE_KERNEL_REFERENCE_S = {
    # Mean wall-clock of the pure-Python interval pipeline (pre columnar
    # kernels), measured on the reference machine with a cold result
    # cache and jobs=1. The kernel benches report their speedup against
    # these so the bench JSON carries the before/after trajectory.
    "test_fig5a_window_size_sweep": 3.15,
    "test_fig6_overlap_threshold_sweep": 2.20,
}


def note_kernel_speedup(benchmark) -> None:
    """Attach the pre-kernel reference and measured speedup to the bench.

    The values land in ``extra_info`` inside ``results/timings.json``.
    The speedup divides a *reference-machine* pre-kernel wall-clock by
    this host's measured mean, so it conflates host speed with the
    kernel change on any other machine -- ``speedup_basis`` flags that,
    and only same-host runs should be compared across commits.
    """
    reference = PRE_KERNEL_REFERENCE_S.get(benchmark.name)
    if reference is None:
        return
    benchmark.extra_info["pre_kernel_reference_s"] = reference
    benchmark.extra_info["speedup_basis"] = (
        "pre-kernel reference measured on the baseline.json reference "
        "machine; ratio is only meaningful on comparable hosts"
    )
    try:
        mean = benchmark.stats.stats.mean
    except AttributeError:  # stats API shifted; speedup is best-effort
        return
    if mean:
        benchmark.extra_info["kernel_speedup_vs_reference"] = round(
            reference / mean, 2
        )


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a bench's table and persist it under results/."""
    print(f"\n{text}\n")
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def engine_from_env() -> ExecutionEngine:
    """Execution engine configured from the environment.

    ``REPRO_BENCH_JOBS`` sets the worker count (``0`` = one per CPU)
    and ``REPRO_BENCH_CACHE_DIR`` points at a result cache. Both unset
    gives a serial, uncached engine -- i.e. exactly the historical
    in-process behaviour, so default timings stay comparable across
    runs.
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR") or None
    return ExecutionEngine(jobs=jobs, cache=cache_dir)


def write_timings(entries, path: Path = TIMINGS_FILE) -> None:
    """Persist benchmark timing stats as machine-readable JSON.

    ``entries`` is a list of flat per-bench stat dictionaries (name,
    mean, min, max, rounds, ...). CI archives the file as a per-run
    perf artifact.
    """
    path.parent.mkdir(exist_ok=True)
    payload = {"format": "repro-bench-timings-v1", "benchmarks": list(entries)}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
