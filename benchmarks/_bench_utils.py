"""Shared constants and output helpers for the experiment benches."""

import json
import os
from pathlib import Path

from repro.exec import ExecutionEngine

PAPER_APPS = ("mat1", "mat2", "fft", "qsort", "des")

RESULTS_DIR = Path(__file__).parent / "results"

TIMINGS_FILE = RESULTS_DIR / "timings.json"


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a bench's table and persist it under results/."""
    print(f"\n{text}\n")
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def engine_from_env() -> ExecutionEngine:
    """Execution engine configured from the environment.

    ``REPRO_BENCH_JOBS`` sets the worker count (``0`` = one per CPU)
    and ``REPRO_BENCH_CACHE_DIR`` points at a result cache. Both unset
    gives a serial, uncached engine -- i.e. exactly the historical
    in-process behaviour, so default timings stay comparable across
    runs.
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR") or None
    return ExecutionEngine(jobs=jobs, cache=cache_dir)


def write_timings(entries, path: Path = TIMINGS_FILE) -> None:
    """Persist benchmark timing stats as machine-readable JSON.

    ``entries`` is a list of flat per-bench stat dictionaries (name,
    mean, min, max, rounds, ...). CI archives the file as a per-run
    perf artifact.
    """
    path.parent.mkdir(exist_ok=True)
    payload = {"format": "repro-bench-timings-v1", "benchmarks": list(entries)}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
