"""Extension bench -- variable (phase-aligned) analysis windows.

The paper's conclusions propose variable simulation window sizes for QoS
as future work; this repository implements them
(:mod:`repro.traffic.qos`). The bench quantifies the trade on the
synthetic benchmark against uniform windows at three resolutions:

* a *fine* uniform grid (window = burst / 2): tightest control, most
  windows, largest crossbar,
* a *coarse* uniform grid (window = 4x burst): compact crossbar, worst
  latency tail,
* *phase-aligned variable* windows (max = 4x burst, min = burst / 2):
  windows track burst edges, so the analysis lands between the two
  uniform extremes (size and latency) while running on a small fraction
  of the fine grid's window count -- burst-level demand information at
  coarse-grid analysis cost.
"""

from repro.analysis import format_table
from repro.apps.synthetic import build_synthetic
from repro.core import CrossbarSynthesizer, SynthesisConfig
from repro.traffic import phase_aligned_boundaries

from _bench_utils import emit

BURST = 1_000


def run_experiment():
    app = build_synthetic(burst_cycles=BURST, total_cycles=100_000, seed=3)
    trace = app.simulate_full_crossbar().trace
    full_stats = app.simulate_full_crossbar().latency_stats()

    variants = {
        "uniform-fine": SynthesisConfig(
            window_size=BURST // 2, max_targets_per_bus=None
        ),
        "uniform-coarse": SynthesisConfig(
            window_size=4 * BURST, max_targets_per_bus=None
        ),
        "variable": SynthesisConfig(
            window_size=4 * BURST,
            variable_windows=True,
            variable_window_ratio=8,
            max_targets_per_bus=None,
        ),
    }
    outcome = {}
    for label, config in variants.items():
        report = CrossbarSynthesizer(config).design(app, trace=trace)
        validation = app.simulate(
            report.design.it.as_list(),
            report.design.ti.as_list(),
            app.sim_cycles,
        )
        stats = validation.latency_stats()
        outcome[label] = {
            "windows": report.it_report.problem.num_windows,
            "buses": report.design.bus_count,
            "mean": stats.mean,
            "max": stats.maximum,
            "mean_rel": stats.mean / full_stats.mean,
            "max_rel": stats.maximum / full_stats.maximum,
        }
    return outcome


def test_variable_window_extension(benchmark, results_dir):
    outcome = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = [
        [
            label,
            data["windows"],
            data["buses"],
            data["mean"],
            data["max"],
            data["mean_rel"],
        ]
        for label, data in outcome.items()
    ]
    emit(
        results_dir,
        "ext_variable_windows",
        format_table(
            [
                "analysis", "windows", "total buses", "mean lat (cy)",
                "max lat (cy)", "mean vs full",
            ],
            rows,
            title=(
                "Extension: phase-aligned variable windows vs uniform "
                "(paper future work)"
            ),
        ),
    )

    fine = outcome["uniform-fine"]
    coarse = outcome["uniform-coarse"]
    variable = outcome["variable"]
    # variable windows need far fewer windows than the fine uniform grid
    assert variable["windows"] < 0.6 * fine["windows"]
    # and land between the two uniform extremes on size ...
    assert coarse["buses"] <= variable["buses"] <= fine["buses"]
    # ... and on mean latency
    assert variable["mean"] <= 1.02 * coarse["mean"]
    assert variable["mean"] >= 0.98 * fine["mean"]
