"""Fig. 5(b) -- acceptable window size vs burst size.

For burst sizes of 1000..5000 cycles the paper reports the acceptable
analysis window growing roughly linearly (about 5x the burst size at the
conservative end). We define "acceptable" operationally, as the paper's
text does: the largest window whose designed crossbar still keeps mean
packet latency within a bound of the full crossbar's, measured by
re-simulation.

The timed kernel is the full burst sweep (design + validation per
candidate window).
"""

import numpy as np

from repro.analysis import format_table, xy_plot
from repro.analysis.sweep import acceptable_window_search
from repro.apps.synthetic import build_synthetic
from repro.core import SynthesisConfig

from _bench_utils import emit

BURSTS = [1_000, 2_000, 3_000, 4_000, 5_000]
MULTIPLES = [1, 2, 3, 4, 5, 6, 8]
LATENCY_BOUND = 1.5  # on the mean
PEAK_BOUND = 3.0  # on the maximum


def run_sweep():
    acceptable = {}
    for burst in BURSTS:
        app = build_synthetic(
            burst_cycles=burst,
            total_cycles=max(90_000, burst * 45),
            seed=3,
        )
        trace = app.simulate_full_crossbar().trace
        candidates = [burst * multiple for multiple in MULTIPLES]
        acceptable[burst] = acceptable_window_search(
            app,
            trace,
            candidates,
            max_latency_ratio=LATENCY_BOUND,
            max_peak_ratio=PEAK_BOUND,
            config=SynthesisConfig(max_targets_per_bus=None),
        )
    return acceptable


def test_fig5b_burst_vs_window(benchmark, results_dir):
    acceptable = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = [
        [burst, window, window / burst]
        for burst, window in acceptable.items()
    ]
    table = format_table(
        ["burst (cy)", "acceptable window (cy)", "window/burst"],
        rows,
        title=(
            "Fig. 5(b): acceptable window size vs burst size "
            f"(mean within {LATENCY_BOUND}x and max within {PEAK_BOUND}x "
            f"of full crossbar)"
        ),
    )
    plot = xy_plot(
        list(acceptable.keys()),
        list(acceptable.values()),
        title="acceptable window vs burst size",
        x_label="burst",
        y_label="window",
    )
    emit(results_dir, "fig5b", table + "\n\n" + plot)

    windows = np.array([acceptable[burst] for burst in BURSTS], dtype=float)
    bursts = np.array(BURSTS, dtype=float)
    # every burst admits some acceptable window of at least its own size
    assert (windows >= bursts).all()
    # linear growth: correlation of window with burst is strong
    correlation = np.corrcoef(bursts, windows)[0, 1]
    assert correlation > 0.8
    # slope in the paper's ballpark (window a small multiple of burst)
    slope = np.polyfit(bursts, windows, 1)[0]
    assert 1.0 <= slope <= 8.0
