"""Fig. 6 -- crossbar size vs overlap threshold.

Sweeping the pre-processing threshold from 0% to 50% of the window on
the synthetic benchmark: at 0% any overlapping pair is separated
(contention-free over-design, near-full crossbar); relaxing the
threshold lets the bandwidth constraints take over and the crossbar
shrinks. The plot ends at 50% because beyond it the window bandwidth
constraint is violated anyway (Sec. 7.4).

The timed kernel is the full threshold sweep.
"""

from repro.analysis import bar_chart, format_table, overlap_threshold_sweep
from repro.apps.synthetic import synthetic_trace
from repro.core import SynthesisConfig

from _bench_utils import emit, engine_from_env, note_kernel_speedup

THRESHOLDS = [0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50]
WINDOW = 2_000  # twice the typical burst


def test_fig6_overlap_threshold_sweep(benchmark, results_dir):
    trace = synthetic_trace(burst_cycles=1_000, total_cycles=120_000, seed=3)
    config = SynthesisConfig(max_targets_per_bus=None)
    engine = engine_from_env()

    points = benchmark.pedantic(
        lambda: overlap_threshold_sweep(trace, THRESHOLDS, WINDOW, config, engine=engine),
        rounds=1,
        iterations=1,
    )
    note_kernel_speedup(benchmark)

    table = format_table(
        ["threshold", "IT buses"],
        [[f"{point.value:.0%}", point.it_buses] for point in points],
        title=(
            "Fig. 6: IT crossbar size vs overlap threshold "
            f"(synthetic benchmark, window {WINDOW} cy)"
        ),
    )
    chart = bar_chart(
        [f"{point.value:.0%}" for point in points],
        [point.it_buses for point in points],
        title="IT crossbar size vs overlap threshold",
        unit=" buses",
    )
    emit(results_dir, "fig6", table + "\n\n" + chart)

    sizes = [point.it_buses for point in points]
    # monotone non-increasing in the threshold
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))
    # strict 0% threshold over-designs vs the 50% end
    assert sizes[0] > sizes[-1]
    # 0% is near the full crossbar for this heavily synchronized traffic
    assert sizes[0] >= 0.8 * trace.num_targets
