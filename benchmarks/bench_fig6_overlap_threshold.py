"""Fig. 6 -- crossbar size vs overlap threshold.

Sweeping the pre-processing threshold from 0% to 50% of the window on
the synthetic benchmark: at 0% any overlapping pair is separated
(contention-free over-design, near-full crossbar); relaxing the
threshold lets the bandwidth constraints take over and the crossbar
shrinks. The plot ends at 50% because beyond it the window bandwidth
constraint is violated anyway (Sec. 7.4).

The timed kernel is the full threshold sweep (assignment backend, for
baseline comparability); an untimed tier split then re-solves a
threshold subset through each exact MILP backend tier
(``--milp-backend``) and charts seconds per threshold per tier.
"""

import time

from repro.analysis import bar_chart, format_table, overlap_threshold_sweep
from repro.apps.synthetic import synthetic_trace
from repro.core import SynthesisConfig

from _bench_utils import emit, engine_from_env, note_kernel_speedup

THRESHOLDS = [0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50]
WINDOW = 2_000  # twice the typical burst

MILP_TIERS = ("highs", "portfolio")
TIER_THRESHOLDS = [0.0, 0.20, 0.50]


def test_fig6_overlap_threshold_sweep(benchmark, results_dir):
    trace = synthetic_trace(burst_cycles=1_000, total_cycles=120_000, seed=3)
    config = SynthesisConfig(max_targets_per_bus=None)
    engine = engine_from_env()

    points = benchmark.pedantic(
        lambda: overlap_threshold_sweep(trace, THRESHOLDS, WINDOW, config, engine=engine),
        rounds=1,
        iterations=1,
    )
    note_kernel_speedup(benchmark)

    table = format_table(
        ["threshold", "IT buses"],
        [[f"{point.value:.0%}", point.it_buses] for point in points],
        title=(
            "Fig. 6: IT crossbar size vs overlap threshold "
            f"(synthetic benchmark, window {WINDOW} cy)"
        ),
    )
    chart = bar_chart(
        [f"{point.value:.0%}" for point in points],
        [point.it_buses for point in points],
        title="IT crossbar size vs overlap threshold",
        unit=" buses",
    )
    emit(results_dir, "fig6", table + "\n\n" + chart)

    # PR 9 follow-up: the same design points through each exact MILP
    # backend tier. The sweep above warmed the shared window store
    # (threshold lives in the conflict stage, so every threshold shares
    # one window fingerprint) -- the split isolates solver cost.
    reference = {point.value: point.it_buses for point in points}
    tier_split = {}
    for tier in MILP_TIERS:
        tier_config = SynthesisConfig(
            max_targets_per_bus=None, backend="milp", milp_backend=tier
        )
        per_threshold = {}
        for threshold in TIER_THRESHOLDS:
            begin = time.perf_counter()
            (point,) = overlap_threshold_sweep(
                trace, [threshold], WINDOW, tier_config, engine=engine
            )
            per_threshold[threshold] = round(
                time.perf_counter() - begin, 4
            )
            assert point.it_buses == reference[threshold], (
                f"milp:{tier} disagrees with assignment at {threshold:.0%}"
            )
        tier_split[tier] = per_threshold
    benchmark.extra_info["milp_tier_split_s"] = tier_split

    tier_table = format_table(
        ["threshold"] + [f"{tier} (s)" for tier in MILP_TIERS],
        [
            [f"{threshold:.0%}"]
            + [tier_split[tier][threshold] for tier in MILP_TIERS]
            for threshold in TIER_THRESHOLDS
        ],
        title=(
            "Fig. 6 sweep, MILP backend tier split "
            "(seconds per design point, windows pre-warmed)"
        ),
    )
    tier_charts = [
        bar_chart(
            [f"{threshold:.0%}" for threshold in TIER_THRESHOLDS],
            [
                tier_split[tier][threshold] * 1e3
                for threshold in TIER_THRESHOLDS
            ],
            title=f"milp:{tier} ms per threshold",
            unit=" ms",
        )
        for tier in MILP_TIERS
    ]
    emit(
        results_dir,
        "fig6_milp_tiers",
        "\n\n".join([tier_table] + tier_charts),
    )

    sizes = [point.it_buses for point in points]
    # monotone non-increasing in the threshold
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))
    # strict 0% threshold over-designs vs the 50% end
    assert sizes[0] > sizes[-1]
    # 0% is near the full crossbar for this heavily synchronized traffic
    assert sizes[0] >= 0.8 * trace.num_targets
