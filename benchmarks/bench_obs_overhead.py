"""Observability overhead bench -- tracing must be (nearly) free.

The observability layer promises zero-cost instrumentation when
disarmed and negligible cost when armed: ``span()`` returns a shared
null singleton after two module-global reads, and armed spans do a
handful of ``perf_counter`` calls plus one deque append. This bench
holds the layer to that promise on the hottest end-to-end path we
have: a fully warm window sweep (every point served from the result
cache), where per-solve work cannot hide instrumentation cost.

The same kernel is timed twice -- tracing disarmed, then armed under a
root span -- and the bench asserts the armed best-of-N stays within 5%
of the disarmed one. Best-of-N minimums (not means) are compared so a
single scheduler hiccup cannot fail the gate; a small absolute floor
absorbs timer granularity on sub-millisecond deltas. The armed timing
also lands in ``results/timings.json`` via ``benchmark.pedantic`` so
``check_regression.py`` gates it against the committed baseline.
"""

import time

from repro.analysis import window_size_sweep
from repro.apps.synthetic import synthetic_trace
from repro.core import SynthesisConfig
from repro.exec import ExecutionEngine, ResultCache
from repro.obs import tracing

from _bench_utils import emit

WINDOWS = [150, 400, 1_200, 6_000]

# Best-of-N rounds per arm. Minimums converge fast; more rounds only
# buys noise rejection, and the warm kernel is cheap enough that 15
# rounds still finish in a couple of seconds.
ROUNDS = 15

# Armed best-of-N must stay within 5% of disarmed (the ISSUE's bar),
# with an absolute floor so timer granularity on a sub-ms kernel cannot
# manufacture a relative failure.
MAX_OVERHEAD_RATIO = 1.05
ABSOLUTE_FLOOR_S = 0.002


def _best_of(kernel, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        begin = time.perf_counter()
        kernel()
        best = min(best, time.perf_counter() - begin)
    return best


def test_obs_overhead_warm_sweep(benchmark, results_dir, tmp_path):
    trace = synthetic_trace(
        burst_cycles=400, total_cycles=24_000, num_initiators=6,
        num_targets=6, seed=5,
    )
    config = SynthesisConfig(max_targets_per_bus=None)
    cache = ResultCache(tmp_path / "cache")
    cold = window_size_sweep(
        trace, WINDOWS, config, engine=ExecutionEngine(jobs=1, cache=cache)
    )

    def warm_sweep():
        # Fresh engine + cache handle per call: stats never accumulate
        # across rounds and every round replays the identical hit path.
        # The explicit span is the instrumentation under test: a fully
        # warm sweep never reaches the engine's own spans (nothing is
        # pending), so disarmed rounds exercise the null-span fast path
        # and armed rounds the real record-and-emit path.
        with tracing.span("bench.warm_sweep", windows=len(WINDOWS)):
            engine = ExecutionEngine(jobs=1, cache=ResultCache(cache.cache_dir))
            points = window_size_sweep(trace, WINDOWS, config, engine=engine)
        assert points == cold
        return points

    assert not tracing.tracing_enabled()
    disarmed_best = _best_of(warm_sweep)

    tracing.arm_tracing()
    try:
        with tracing.root_span("bench.obs_overhead"):
            armed_best = _best_of(warm_sweep)
            benchmark.pedantic(warm_sweep, rounds=1, iterations=1)
        spans = tracing.collect_spans()
    finally:
        tracing.clear_spans()
        tracing.disarm_tracing()

    # The armed runs must actually have recorded something, or the
    # comparison proves nothing.
    names = {span.name for span in spans}
    assert "bench.obs_overhead" in names
    assert "bench.warm_sweep" in names

    budget = max(disarmed_best * MAX_OVERHEAD_RATIO,
                 disarmed_best + ABSOLUTE_FLOOR_S)
    assert armed_best <= budget, (
        f"tracing overhead out of budget: armed best {armed_best:.4f}s vs "
        f"disarmed best {disarmed_best:.4f}s "
        f"({armed_best / disarmed_best:.2%})"
    )

    overhead = (armed_best / disarmed_best - 1.0) * 100.0
    emit(
        results_dir,
        "obs_overhead",
        "observability overhead (warm sweep, best of "
        f"{ROUNDS})\n"
        f"  disarmed best : {disarmed_best * 1e3:8.2f} ms\n"
        f"  armed best    : {armed_best * 1e3:8.2f} ms\n"
        f"  overhead      : {overhead:+.1f}% (budget 5% or "
        f"{ABSOLUTE_FLOOR_S * 1e3:.0f} ms floor)\n"
        f"  spans recorded: {len(spans)}",
    )
