"""Shared fixtures for the experiment benches.

Every bench regenerates one table or figure of the paper. Expensive
artifacts (full-crossbar traces) are computed once per session; each
bench writes its regenerated table/series to ``benchmarks/results/`` so
the output survives pytest's capture and can be diffed against
EXPERIMENTS.md. At session end the collected timing statistics are
additionally dumped to ``benchmarks/results/timings.json`` in a
machine-readable form for CI to archive.
"""

from pathlib import Path

import pytest

from repro.apps import build_application

from _bench_utils import PAPER_APPS, RESULTS_DIR, write_timings


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def app_traces():
    """Full-crossbar traces of all five paper benchmarks (Phase 1)."""
    traces = {}
    for name in PAPER_APPS:
        app = build_application(name)
        traces[name] = (app, app.simulate_full_crossbar().trace)
    return traces


def pytest_sessionfinish(session, exitstatus):
    """Emit machine-readable JSON timings for every bench that ran."""
    benchmark_session = getattr(session.config, "_benchmarksession", None)
    if benchmark_session is None or not benchmark_session.benchmarks:
        return
    entries = []
    for bench in benchmark_session.benchmarks:
        try:
            entries.append(bench.as_dict(include_data=False, flat=True))
        except Exception:  # never let timing export break a bench run
            continue
    if entries:
        try:
            write_timings(entries)
        except OSError:
            pass
