"""Ablation -- bus arbitration policy.

The platform exposes STbus's arbitration flavours; the synthesis
methodology is agnostic to them, but validated latency is not. We run
Mat2's designed crossbar under fixed-priority, round-robin and FIFO
arbitration: the mean barely moves (the windowed design keeps buses
uncongested) while fixed priority shows the worst tail, since high-index
cores lose every head-to-head arbitration.
"""

from dataclasses import replace

from repro.analysis import format_table
from repro.core import CrossbarSynthesizer, SynthesisConfig
from repro.platform import SoC

from _bench_utils import emit

POLICIES = ("fixed-priority", "round-robin", "fifo")


def run_experiment(app_traces):
    app, trace = app_traces["mat2"]
    design = CrossbarSynthesizer(SynthesisConfig()).design(
        app, trace=trace
    ).design
    outcomes = {}
    for policy in POLICIES:
        config = replace(app.config, arbitration=policy)
        soc = SoC(
            config,
            design.it.as_list(),
            design.ti.as_list(),
            app.build_programs(),
        )
        result = soc.run(app.sim_cycles * 4)
        outcomes[policy] = result.latency_stats()
    return outcomes


def test_arbitration_ablation(benchmark, app_traces, results_dir):
    outcomes = benchmark.pedantic(
        run_experiment, args=(app_traces,), rounds=1, iterations=1
    )

    rows = [
        [policy, stats.mean, stats.p95, stats.maximum]
        for policy, stats in outcomes.items()
    ]
    emit(
        results_dir,
        "ablation_arbitration",
        format_table(
            ["arbitration", "mean lat (cy)", "p95 (cy)", "max lat (cy)"],
            rows,
            title="Ablation: arbitration policy on Mat2's designed crossbar",
        ),
    )

    means = [stats.mean for stats in outcomes.values()]
    # the windowed design keeps all policies within a tight band
    assert max(means) < 1.3 * min(means)
    for stats in outcomes.values():
        assert stats.count > 1_000
