"""Table 1 -- crossbar performance and cost on Mat2.

Paper values (21-core matrix benchmark, latencies in cycles, size
normalized to the shared bus):

    type     avg lat   max lat   size ratio
    shared   35.1      51        1
    full     6         9         10.5
    partial  9.9       20        4

Our absolute latencies differ (burst mix of the reconstructed workload),
but the ordering and ratios must hold: shared is several times slower
than both crossbars, the designed partial crossbar performs close to the
full crossbar at a fraction of its size (full / shared size ratio is
exactly 10.5 by construction: 21 buses vs 2).

The timed kernel is the synthesis step itself (Phases 2-4).
"""

from repro.analysis import compare_designs, format_table
from repro.core import (
    CrossbarSynthesizer,
    SynthesisConfig,
    full_crossbar_design,
    shared_bus_design,
)

from _bench_utils import emit


def test_table1_crossbar_cost(benchmark, app_traces, results_dir):
    app, trace = app_traces["mat2"]
    synthesizer = CrossbarSynthesizer(SynthesisConfig())

    report = benchmark.pedantic(
        lambda: synthesizer.design(app, trace=trace), rounds=1, iterations=1
    )
    partial = report.design

    designs = [shared_bus_design(trace), partial, full_crossbar_design(trace)]
    evaluations = compare_designs(app, designs)
    shared = evaluations["shared"]

    rows = []
    for label, paper_row in (
        ("shared", (35.1, 51, 1.0)),
        ("full", (6.0, 9, 10.5)),
        ("windowed", (9.9, 20, 4.0)),
    ):
        evaluation = evaluations[label]
        rows.append(
            [
                "partial" if label == "windowed" else label,
                evaluation.stats.mean,
                evaluation.stats.maximum,
                evaluation.bus_count / shared.bus_count,
                f"{paper_row[0]}/{paper_row[1]}/{paper_row[2]}",
            ]
        )
    emit(
        results_dir,
        "table1",
        format_table(
            ["type", "avg lat (cy)", "max lat (cy)", "size ratio",
             "paper avg/max/size"],
            rows,
            title="Table 1: crossbar performance and cost (Mat2)",
        ),
    )

    full_eval = evaluations["full"]
    partial_eval = evaluations["windowed"]
    # shape assertions: shared much slower; partial close to full at a
    # fraction of the size
    assert shared.stats.mean > 2.5 * full_eval.stats.mean
    assert shared.stats.maximum > 3 * full_eval.stats.maximum
    assert partial_eval.stats.mean < 1.4 * full_eval.stats.mean
    assert full_eval.bus_count / shared.bus_count == 10.5
    assert partial_eval.bus_count / shared.bus_count <= 4.0
