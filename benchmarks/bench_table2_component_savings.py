"""Table 2 -- crossbar component savings across the five MPSoCs.

Paper values (total buses across both crossbars):

    application   full   designed   ratio
    Mat1          25     8          3.13
    Mat2          21     6          3.5
    FFT           29     15         1.93
    QSort         15     6          2.5
    DES           19     6          3.12

The timed kernel designs all five applications.
"""


from repro.analysis import format_table
from repro.core import CrossbarSynthesizer, SynthesisConfig

from _bench_utils import PAPER_APPS, emit

PAPER_DESIGNED = {"mat1": 8, "mat2": 6, "fft": 15, "qsort": 6, "des": 6}
PAPER_FULL = {"mat1": 25, "mat2": 21, "fft": 29, "qsort": 15, "des": 19}


def test_table2_component_savings(benchmark, app_traces, results_dir):
    synthesizer = CrossbarSynthesizer(SynthesisConfig())

    def design_all():
        return {
            name: synthesizer.design(app, trace=trace).design
            for name, (app, trace) in app_traces.items()
        }

    designs = benchmark.pedantic(design_all, rounds=1, iterations=1)

    rows = []
    for name in PAPER_APPS:
        app, _trace = app_traces[name]
        design = designs[name]
        full_count = app.num_cores
        rows.append(
            [
                name,
                full_count,
                design.bus_count,
                full_count / design.bus_count,
                f"{PAPER_FULL[name]} -> {PAPER_DESIGNED[name]} "
                f"({PAPER_FULL[name] / PAPER_DESIGNED[name]:.2f}x)",
            ]
        )
    emit(
        results_dir,
        "table2",
        format_table(
            ["application", "full buses", "designed buses", "ratio", "paper"],
            rows,
            title="Table 2: component savings",
        ),
    )

    for name in PAPER_APPS:
        app, _trace = app_traces[name]
        design = designs[name]
        # full crossbar bus count must equal the paper's core count
        assert app.num_cores == PAPER_FULL[name]
        # designed size within one bus of the paper's
        assert abs(design.bus_count - PAPER_DESIGNED[name]) <= 1, name
        # savings must be substantial everywhere
        assert app.num_cores / design.bus_count >= 1.8
