"""Server throughput bench: warm vs cold request latency over HTTP.

The bench stands up a real ``repro serve`` daemon (in-process threads,
real sockets, a temporary cache directory) and measures three request
paths end to end:

* **cold** -- first design request for a fingerprint: full pipeline
  solve on a worker thread;
* **warm** -- the identical request resubmitted: answered from the
  finished-job registry / whole-result cache without queueing a solve;
* **coalesced burst** -- N identical requests submitted concurrently
  against a fresh fingerprint: single-flight admission shares ONE
  solve across all of them (asserted via the solver-invocation
  counter).

The timed kernel is the warm path -- the daemon's steady-state answer
latency -- and the CI gate asserts warm stays well under cold, i.e.
that the coalescing/caching layers actually short-circuit the solver.

A second bench (``test_server_fault_injected_burst``) times the same
coalesced-burst shape against a daemon whose pool workers crash on
every first task attempt (a seeded ``repro.resilience`` plan): the
cost of crash -> pool rebuild -> per-task retry, end to end over HTTP,
with the answer asserted byte-identical to a fault-free daemon's.
"""

import json
import tempfile
import threading
import time
import urllib.request

from repro.core import SOLVE_COUNTER

from _bench_utils import emit


def _post(base, payload):
    request = urllib.request.Request(
        f"{base}/v1/jobs",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def _get(base, path):
    with urllib.request.urlopen(f"{base}{path}") as response:
        return json.loads(response.read())


def _submit_and_wait(base, payload):
    job = _post(base, payload)["job"]
    done = _get(base, f"/v1/jobs/{job}?wait=120")
    assert done["state"] == "done", done.get("error")
    return done


def test_server_throughput(benchmark, results_dir):
    from repro.server import SynthesisServer

    with tempfile.TemporaryDirectory() as cache_dir:
        server = SynthesisServer(port=0, cache_dir=cache_dir, workers=2)
        server.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            cold_request = {"kind": "design", "app": "qsort"}

            SOLVE_COUNTER.reset()
            cold_begin = time.perf_counter()
            _submit_and_wait(base, cold_request)
            cold_seconds = time.perf_counter() - cold_begin
            cold_solves = SOLVE_COUNTER.total
            assert cold_solves > 0

            # Warm path: identical request, no solver work.
            SOLVE_COUNTER.reset()
            warm = benchmark.pedantic(
                lambda: _submit_and_wait(base, cold_request),
                rounds=5,
                iterations=1,
            )
            assert warm["state"] == "done"
            assert SOLVE_COUNTER.total == 0

            # Coalesced burst against a fresh fingerprint: N concurrent
            # identical submissions, ONE solve.
            burst_request = {
                "kind": "design", "app": "qsort", "threshold": 0.25,
            }
            SOLVE_COUNTER.reset()
            burst = 8
            job_ids = []
            lock = threading.Lock()

            def submit():
                response = _post(base, burst_request)
                with lock:
                    job_ids.append(response["job"])

            burst_begin = time.perf_counter()
            threads = [
                threading.Thread(target=submit) for _ in range(burst)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(set(job_ids)) == 1  # every submitter shares one job
            done = _get(base, f"/v1/jobs/{job_ids[0]}?wait=120")
            burst_seconds = time.perf_counter() - burst_begin
            assert done["state"] == "done"
            burst_solves = SOLVE_COUNTER.total
            # The acceptance property: the burst cost one request's
            # solves, not eight requests' worth.
            assert burst_solves == cold_solves

            stats = _get(base, "/v1/stats")
            assert stats["coalescing"]["coalesced"] >= burst - 1
        finally:
            server.stop()

    warm_mean = benchmark.stats.stats.mean
    # CI gate: the warm path must short-circuit the solver. Cold runs
    # a full pipeline solve; warm answers from the finished-job
    # registry, so an order-of-magnitude gap is expected -- gate at 2x
    # to stay robust against scheduler noise on slow CI hosts.
    assert warm_mean < cold_seconds / 2, (
        f"warm request mean {warm_mean:.4f}s not well under cold "
        f"{cold_seconds:.4f}s"
    )

    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["cold_solves"] = cold_solves
    benchmark.extra_info["burst_size"] = burst
    benchmark.extra_info["burst_seconds"] = round(burst_seconds, 4)
    benchmark.extra_info["burst_solves"] = burst_solves
    benchmark.extra_info["warm_over_cold"] = round(
        warm_mean / cold_seconds, 4
    )

    emit(
        results_dir,
        "server_throughput",
        "\n".join(
            [
                "repro serve request paths (design qsort)",
                f"  cold solve        {cold_seconds * 1e3:9.1f} ms "
                f"({cold_solves} solver calls)",
                f"  warm request      {warm_mean * 1e3:9.1f} ms "
                "(0 solver calls)",
                f"  coalesced burst   {burst_seconds * 1e3:9.1f} ms "
                f"({burst} submitters, {burst_solves} solver calls)",
            ]
        ),
    )


def test_server_fault_injected_burst(benchmark, results_dir):
    """Chaos burst: coalesced suite solve under injected worker crashes.

    Every pool worker's *first* attempt at a task crashes (seeded
    ``worker.crash`` plan, match ``*:a0``), so the timed request pays
    the full recovery ladder -- broken pool, one rebuild, per-task
    retries -- and must still return a report byte-identical to a
    fault-free daemon's. The gate is correctness-under-chaos plus the
    degradation being *visible* (engine counters, fired tallies,
    degraded health); the timing records what recovery costs end to
    end over HTTP.
    """
    from repro.resilience import (
        FaultPlan,
        FaultRule,
        clear_plan,
        install_plan,
    )
    from repro.server import SynthesisServer

    # Suite jobs fan scenario solves out through the job's scoped
    # engine pool (design jobs solve in-thread), so this is the server
    # path where worker crashes actually bite.
    request = {"kind": "suite", "suite": "smoke"}

    # Fault-free reference: the same request on a clean daemon.
    with tempfile.TemporaryDirectory() as cache_dir:
        server = SynthesisServer(
            port=0, cache_dir=cache_dir, workers=2, engine_jobs=2
        )
        server.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            clean_begin = time.perf_counter()
            clean = _submit_and_wait(base, request)
            clean_seconds = time.perf_counter() - clean_begin
        finally:
            server.stop()
    clean_bytes = json.dumps(clean["result"], sort_keys=True)

    install_plan(
        FaultPlan(
            seed=7,
            rules={"worker.crash": FaultRule(rate=1.0, match=("*:a0",))},
        )
    )
    try:
        with tempfile.TemporaryDirectory() as cache_dir:
            server = SynthesisServer(
                port=0, cache_dir=cache_dir, workers=2, engine_jobs=2
            )
            server.start()
            base = f"http://127.0.0.1:{server.server_address[1]}"
            try:
                burst = 6
                lock = threading.Lock()

                def chaos_burst():
                    job_ids = []

                    def submit():
                        response = _post(base, request)
                        with lock:
                            job_ids.append(response["job"])

                    threads = [
                        threading.Thread(target=submit)
                        for _ in range(burst)
                    ]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join()
                    assert len(set(job_ids)) == 1  # still single-flight
                    done = _get(base, f"/v1/jobs/{job_ids[0]}?wait=120")
                    assert done["state"] == "done", done.get("error")
                    return done

                done = benchmark.pedantic(
                    chaos_burst, rounds=1, iterations=1
                )
                # The acceptance property: chaos may cost latency, never
                # answers.
                assert json.dumps(done["result"], sort_keys=True) == (
                    clean_bytes
                )

                stats = _get(base, "/v1/stats")
                assert stats["coalescing"]["coalesced"] >= burst - 1
                engine = stats["engine"]
                assert engine["task_retries"] >= 1
                assert engine["pool_rebuilds"] >= 1
                assert engine["degraded"] is True
                faults = stats["faults"]
                assert faults is not None
                # fired tallies are process-local and the crashes fire
                # inside pool workers; the *engine* counters above are
                # the parent-visible proof they happened.
                assert "worker.crash" in faults["points"]
                assert faults["seed"] == 7
                health = _get(base, "/v1/health")
                assert health["degraded"] is True
            finally:
                server.stop()
    finally:
        clear_plan()

    chaos_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["clean_seconds"] = round(clean_seconds, 4)
    benchmark.extra_info["burst_size"] = burst
    benchmark.extra_info["task_retries"] = engine["task_retries"]
    benchmark.extra_info["pool_rebuilds"] = engine["pool_rebuilds"]
    benchmark.extra_info["fault_points"] = faults["points"]
    benchmark.extra_info["chaos_over_clean"] = round(
        chaos_seconds / clean_seconds, 4
    )

    emit(
        results_dir,
        "server_fault_injected_burst",
        "\n".join(
            [
                "repro serve chaos burst (suite smoke, crash-first-attempt"
                " plan)",
                f"  fault-free solve  {clean_seconds * 1e3:9.1f} ms",
                f"  chaos burst       {chaos_seconds * 1e3:9.1f} ms "
                f"({burst} submitters, {engine['task_retries']} retries, "
                f"{engine['pool_rebuilds']} pool rebuilds)",
                "  report byte-identical to the fault-free daemon's",
            ]
        ),
    )
