"""Server throughput bench: warm vs cold request latency over HTTP.

The bench stands up a real ``repro serve`` daemon (in-process threads,
real sockets, a temporary cache directory) and measures three request
paths end to end:

* **cold** -- first design request for a fingerprint: full pipeline
  solve on a worker thread;
* **warm** -- the identical request resubmitted: answered from the
  finished-job registry / whole-result cache without queueing a solve;
* **coalesced burst** -- N identical requests submitted concurrently
  against a fresh fingerprint: single-flight admission shares ONE
  solve across all of them (asserted via the solver-invocation
  counter).

The timed kernel is the warm path -- the daemon's steady-state answer
latency -- and the CI gate asserts warm stays well under cold, i.e.
that the coalescing/caching layers actually short-circuit the solver.

A second bench (``test_server_fault_injected_burst``) times the same
coalesced-burst shape against a daemon whose pool workers crash on
every first task attempt (a seeded ``repro.resilience`` plan): the
cost of crash -> pool rebuild -> per-task retry, end to end over HTTP,
with the answer asserted byte-identical to a fault-free daemon's.
"""

import json
import tempfile
import threading
import time
import urllib.request

from repro.core import SOLVE_COUNTER

from _bench_utils import emit


def _post(base, payload):
    request = urllib.request.Request(
        f"{base}/v1/jobs",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def _get(base, path):
    with urllib.request.urlopen(f"{base}{path}") as response:
        return json.loads(response.read())


def _submit_and_wait(base, payload):
    job = _post(base, payload)["job"]
    done = _get(base, f"/v1/jobs/{job}?wait=120")
    assert done["state"] == "done", done.get("error")
    return done


def test_server_throughput(benchmark, results_dir):
    from repro.server import SynthesisServer

    with tempfile.TemporaryDirectory() as cache_dir:
        server = SynthesisServer(port=0, cache_dir=cache_dir, workers=2)
        server.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            cold_request = {"kind": "design", "app": "qsort"}

            SOLVE_COUNTER.reset()
            cold_begin = time.perf_counter()
            _submit_and_wait(base, cold_request)
            cold_seconds = time.perf_counter() - cold_begin
            cold_solves = SOLVE_COUNTER.total
            assert cold_solves > 0

            # Warm path: identical request, no solver work.
            SOLVE_COUNTER.reset()
            warm = benchmark.pedantic(
                lambda: _submit_and_wait(base, cold_request),
                rounds=5,
                iterations=1,
            )
            assert warm["state"] == "done"
            assert SOLVE_COUNTER.total == 0

            # Coalesced burst against a fresh fingerprint: N concurrent
            # identical submissions, ONE solve.
            burst_request = {
                "kind": "design", "app": "qsort", "threshold": 0.25,
            }
            SOLVE_COUNTER.reset()
            burst = 8
            job_ids = []
            lock = threading.Lock()

            def submit():
                response = _post(base, burst_request)
                with lock:
                    job_ids.append(response["job"])

            burst_begin = time.perf_counter()
            threads = [
                threading.Thread(target=submit) for _ in range(burst)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(set(job_ids)) == 1  # every submitter shares one job
            done = _get(base, f"/v1/jobs/{job_ids[0]}?wait=120")
            burst_seconds = time.perf_counter() - burst_begin
            assert done["state"] == "done"
            burst_solves = SOLVE_COUNTER.total
            # The acceptance property: the burst cost one request's
            # solves, not eight requests' worth.
            assert burst_solves == cold_solves

            stats = _get(base, "/v1/stats")
            assert stats["coalescing"]["coalesced"] >= burst - 1
        finally:
            server.stop()

    warm_mean = benchmark.stats.stats.mean
    # CI gate: the warm path must short-circuit the solver. Cold runs
    # a full pipeline solve; warm answers from the finished-job
    # registry, so an order-of-magnitude gap is expected -- gate at 2x
    # to stay robust against scheduler noise on slow CI hosts.
    assert warm_mean < cold_seconds / 2, (
        f"warm request mean {warm_mean:.4f}s not well under cold "
        f"{cold_seconds:.4f}s"
    )

    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["cold_solves"] = cold_solves
    benchmark.extra_info["burst_size"] = burst
    benchmark.extra_info["burst_seconds"] = round(burst_seconds, 4)
    benchmark.extra_info["burst_solves"] = burst_solves
    benchmark.extra_info["warm_over_cold"] = round(
        warm_mean / cold_seconds, 4
    )

    emit(
        results_dir,
        "server_throughput",
        "\n".join(
            [
                "repro serve request paths (design qsort)",
                f"  cold solve        {cold_seconds * 1e3:9.1f} ms "
                f"({cold_solves} solver calls)",
                f"  warm request      {warm_mean * 1e3:9.1f} ms "
                "(0 solver calls)",
                f"  coalesced burst   {burst_seconds * 1e3:9.1f} ms "
                f"({burst} submitters, {burst_solves} solver calls)",
            ]
        ),
    )


def test_server_multi_fingerprint_burst(benchmark, results_dir):
    """Shared stage plane SLO: a burst of design requests that differ
    only in overlap threshold.

    Threshold lives in the *conflict* stage spec, so these requests
    share window-stage fingerprints while remaining distinct jobs with
    distinct solves -- exactly the shape the zero-copy plane exists
    for. The timed kernel is the warm burst: K fresh-threshold
    requests against a daemon whose plane already holds the window
    tensors. The gates:

    * zero re-windowing on the warm burst -- every job's ``window``
      progress row shows ``shm_hit`` (2 per job: both crossbar sides)
      and no ``computed``/``disk_hit``;
    * every report byte-identical to a ``--no-shm`` daemon's;
    * the warm burst is not slower than the no-plane daemon answering
      the same burst from its npz sidecar tier.
    """
    from repro.pipeline import shm
    from repro.server import SynthesisServer

    cold_thresholds = (0.10, 0.20, 0.30, 0.40)
    warm_thresholds = (0.15, 0.25, 0.35, 0.45)

    def burst(base, thresholds):
        """Submit one design request per threshold concurrently."""
        payloads = {}
        lock = threading.Lock()

        def one(threshold):
            done = _submit_and_wait(
                base,
                {"kind": "design", "app": "qsort", "threshold": threshold},
            )
            with lock:
                payloads[threshold] = done

        threads = [
            threading.Thread(target=one, args=(t,)) for t in thresholds
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return payloads

    def window_tallies(payloads):
        totals = {"computed": 0, "disk_hit": 0, "shm_hit": 0}
        for done in payloads.values():
            row = done.get("progress", {}).get("window", {})
            for kind in totals:
                totals[kind] += row.get(kind, 0)
        return totals

    shm.reset_plane()
    shm.set_enabled(True)
    results = {}
    try:
        with tempfile.TemporaryDirectory() as cache_dir:
            server = SynthesisServer(port=0, cache_dir=cache_dir, workers=2)
            server.start()
            base = f"http://127.0.0.1:{server.server_address[1]}"
            try:
                cold_begin = time.perf_counter()
                cold = burst(base, cold_thresholds)
                cold_seconds = time.perf_counter() - cold_begin
                cold_windows = window_tallies(cold)
                # The first job(s) pay the windowing; later jobs in the
                # same burst already ride the plane.
                assert cold_windows["computed"] >= 2
                assert cold_windows["shm_hit"] > 0

                warm = benchmark.pedantic(
                    lambda: burst(base, warm_thresholds),
                    rounds=1,
                    iterations=1,
                )
                warm_seconds = benchmark.stats.stats.mean
                warm_windows = window_tallies(warm)
                # The acceptance property: zero re-windowing on the
                # warm burst -- every window served by the plane.
                assert warm_windows["computed"] == 0, warm_windows
                assert warm_windows["disk_hit"] == 0, warm_windows
                assert warm_windows["shm_hit"] == 2 * len(warm_thresholds)

                stats = _get(base, "/v1/stats")
                assert stats["shm"]["enabled"] is True
                assert stats["shm"]["offers"] >= 2
                assert stats["shm"]["events"].get("local_hit", 0) >= (
                    warm_windows["shm_hit"]
                )
                for threshold, done in {**cold, **warm}.items():
                    results[threshold] = json.dumps(
                        done["result"], sort_keys=True
                    )
            finally:
                server.stop()

        # Reference daemon without the plane (the --no-shm wiring):
        # same bursts, fresh cache; windows come off the npz sidecar
        # tier instead. Reports must be byte-identical.
        shm.reset_plane()
        shm.set_enabled(False)
        with tempfile.TemporaryDirectory() as cache_dir:
            server = SynthesisServer(port=0, cache_dir=cache_dir, workers=2)
            server.start()
            base = f"http://127.0.0.1:{server.server_address[1]}"
            try:
                plain_cold = burst(base, cold_thresholds)
                plain_begin = time.perf_counter()
                plain_warm = burst(base, warm_thresholds)
                plain_seconds = time.perf_counter() - plain_begin
                plain_windows = window_tallies(
                    {**plain_cold, **plain_warm}
                )
                assert plain_windows["shm_hit"] == 0
                for threshold, done in {
                    **plain_cold, **plain_warm
                }.items():
                    assert results[threshold] == json.dumps(
                        done["result"], sort_keys=True
                    ), f"report for threshold {threshold} diverged"
            finally:
                server.stop()
    finally:
        shm.set_enabled(True)
        shm.reset_plane()

    # SLO: riding the plane must not lose to re-reading sidecars (a
    # generous bound -- solver time dominates both sides; the real
    # teeth are the zero-re-windowing tallies above).
    assert warm_seconds < max(plain_seconds, 0.05) * 1.5, (
        f"plane burst {warm_seconds:.4f}s vs no-shm {plain_seconds:.4f}s"
    )

    benchmark.extra_info["burst_size"] = len(warm_thresholds)
    benchmark.extra_info["cold_burst_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["noshm_burst_seconds"] = round(plain_seconds, 4)
    benchmark.extra_info["cold_window_computed"] = cold_windows["computed"]
    benchmark.extra_info["warm_window_shm_hits"] = warm_windows["shm_hit"]
    benchmark.extra_info["warm_over_noshm"] = round(
        warm_seconds / plain_seconds, 4
    ) if plain_seconds else None

    emit(
        results_dir,
        "server_multi_fingerprint_burst",
        "\n".join(
            [
                "repro serve multi-fingerprint burst (design qsort, "
                f"{len(warm_thresholds)} thresholds/burst)",
                f"  cold burst        {cold_seconds * 1e3:9.1f} ms "
                f"({cold_windows['computed']} windows computed, "
                f"{cold_windows['shm_hit']} plane hits)",
                f"  warm burst (shm)  {warm_seconds * 1e3:9.1f} ms "
                f"({warm_windows['shm_hit']} plane hits, 0 re-windowed)",
                f"  warm burst (off)  {plain_seconds * 1e3:9.1f} ms "
                "(npz sidecar tier)",
                "  reports byte-identical with the plane on and off",
            ]
        ),
    )


def test_server_fault_injected_burst(benchmark, results_dir):
    """Chaos burst: coalesced suite solve under injected worker crashes.

    Every pool worker's *first* attempt at a task crashes (seeded
    ``worker.crash`` plan, match ``*:a0``), so the timed request pays
    the full recovery ladder -- broken pool, one rebuild, per-task
    retries -- and must still return a report byte-identical to a
    fault-free daemon's. The gate is correctness-under-chaos plus the
    degradation being *visible* (engine counters, fired tallies,
    degraded health); the timing records what recovery costs end to
    end over HTTP.
    """
    from repro.resilience import (
        FaultPlan,
        FaultRule,
        clear_plan,
        install_plan,
    )
    from repro.server import SynthesisServer

    # Suite jobs fan scenario solves out through the job's scoped
    # engine pool (design jobs solve in-thread), so this is the server
    # path where worker crashes actually bite.
    request = {"kind": "suite", "suite": "smoke"}

    # Fault-free reference: the same request on a clean daemon.
    with tempfile.TemporaryDirectory() as cache_dir:
        server = SynthesisServer(
            port=0, cache_dir=cache_dir, workers=2, engine_jobs=2
        )
        server.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            clean_begin = time.perf_counter()
            clean = _submit_and_wait(base, request)
            clean_seconds = time.perf_counter() - clean_begin
        finally:
            server.stop()
    clean_bytes = json.dumps(clean["result"], sort_keys=True)

    install_plan(
        FaultPlan(
            seed=7,
            rules={"worker.crash": FaultRule(rate=1.0, match=("*:a0",))},
        )
    )
    try:
        with tempfile.TemporaryDirectory() as cache_dir:
            server = SynthesisServer(
                port=0, cache_dir=cache_dir, workers=2, engine_jobs=2
            )
            server.start()
            base = f"http://127.0.0.1:{server.server_address[1]}"
            try:
                burst = 6
                lock = threading.Lock()

                def chaos_burst():
                    job_ids = []

                    def submit():
                        response = _post(base, request)
                        with lock:
                            job_ids.append(response["job"])

                    threads = [
                        threading.Thread(target=submit)
                        for _ in range(burst)
                    ]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join()
                    assert len(set(job_ids)) == 1  # still single-flight
                    done = _get(base, f"/v1/jobs/{job_ids[0]}?wait=120")
                    assert done["state"] == "done", done.get("error")
                    return done

                done = benchmark.pedantic(
                    chaos_burst, rounds=1, iterations=1
                )
                # The acceptance property: chaos may cost latency, never
                # answers.
                assert json.dumps(done["result"], sort_keys=True) == (
                    clean_bytes
                )

                stats = _get(base, "/v1/stats")
                assert stats["coalescing"]["coalesced"] >= burst - 1
                engine = stats["engine"]
                assert engine["task_retries"] >= 1
                assert engine["pool_rebuilds"] >= 1
                assert engine["degraded"] is True
                faults = stats["faults"]
                assert faults is not None
                # fired tallies are process-local and the crashes fire
                # inside pool workers; the *engine* counters above are
                # the parent-visible proof they happened.
                assert "worker.crash" in faults["points"]
                assert faults["seed"] == 7
                health = _get(base, "/v1/health")
                assert health["degraded"] is True
            finally:
                server.stop()
    finally:
        clear_plan()

    chaos_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["clean_seconds"] = round(clean_seconds, 4)
    benchmark.extra_info["burst_size"] = burst
    benchmark.extra_info["task_retries"] = engine["task_retries"]
    benchmark.extra_info["pool_rebuilds"] = engine["pool_rebuilds"]
    benchmark.extra_info["fault_points"] = faults["points"]
    benchmark.extra_info["chaos_over_clean"] = round(
        chaos_seconds / clean_seconds, 4
    )

    emit(
        results_dir,
        "server_fault_injected_burst",
        "\n".join(
            [
                "repro serve chaos burst (suite smoke, crash-first-attempt"
                " plan)",
                f"  fault-free solve  {clean_seconds * 1e3:9.1f} ms",
                f"  chaos burst       {chaos_seconds * 1e3:9.1f} ms "
                f"({burst} submitters, {engine['task_retries']} retries, "
                f"{engine['pool_rebuilds']} pool rebuilds)",
                "  report byte-identical to the fault-free daemon's",
            ]
        ),
    )
