"""Latency-replay bench: cold vs warm replay of the mixed suite.

The cold phase runs the ``mixed`` suite with ``replay_latency=True`` on
a fresh :class:`ScenarioSuiteRunner`: every scenario's trace replays
through the platform simulator on the robust design (the mixed suite is
all profile-backed, so every replay takes the trace-driven path). The
*same* runner then re-runs the suite -- the timed kernel -- and every
replay must come back from the pipeline's replay-artifact store.

This bench doubles as the CI gate for replay caching: it asserts the
warm run performs **zero** fabric simulations (the platform-level
:data:`~repro.platform.soc.SIMULATION_COUNTER`) and still produces a
report byte-identical to the cold run.
"""

import json
import time

from repro.platform import SIMULATION_COUNTER
from repro.scenarios import ScenarioSuiteRunner, build_suite

from _bench_utils import emit


def test_replay_suite_warm(benchmark, results_dir):
    suite = build_suite("mixed")
    runner = ScenarioSuiteRunner(replay_latency=True)

    SIMULATION_COUNTER.reset()
    cold_begin = time.perf_counter()
    cold_report = runner.run(suite)
    cold_seconds = time.perf_counter() - cold_begin
    cold_sims = SIMULATION_COUNTER.runs
    assert cold_sims >= len(suite)  # one replay per scenario (plus none hidden)

    SIMULATION_COUNTER.reset()
    warm_report = benchmark.pedantic(
        lambda: runner.run(suite), rounds=1, iterations=1
    )
    warm_sims = SIMULATION_COUNTER.runs

    # CI gate: a warm replay re-simulates nothing...
    assert warm_sims == 0

    # ... and reproduces the cold report byte for byte.
    cold_bytes = json.dumps(cold_report.to_dict(), sort_keys=True)
    warm_bytes = json.dumps(warm_report.to_dict(), sort_keys=True)
    assert warm_bytes == cold_bytes

    warm_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["cold_simulations"] = cold_sims
    benchmark.extra_info["warm_simulations"] = warm_sims
    benchmark.extra_info["warm_vs_cold_speedup"] = (
        round(cold_seconds / warm_seconds, 2) if warm_seconds else None
    )

    latency_rows = "\n".join(
        f"  {outcome.scenario.name:<22} "
        f"{outcome.latency.mean:8.1f} cy over {outcome.latency.count} packets"
        for outcome in warm_report.outcomes
    )
    emit(
        results_dir,
        "replay_suite",
        "\n".join(
            [
                "latency replay of the mixed suite (trace-driven drivers)",
                f"  cold run : {cold_sims} fabric simulations, "
                f"{cold_seconds:.3f}s",
                f"  warm run : {warm_sims} fabric simulations, "
                f"{warm_seconds:.3f}s",
                "",
                "replayed latency of the robust design:",
                latency_rows,
            ]
        ),
    )
