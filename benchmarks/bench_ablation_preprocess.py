"""Ablation -- the pre-processing conflict matrix.

The paper motivates pre-processing twice: separating high-overlap pairs
improves latency, and identifying them early "can also speed up the
process of finding the optimal crossbar configuration" (Sec. 5) --
conflicts prune the search and sharpen the clique lower bound.

We design the FFT benchmark (the conflict-heavy one) with and without
the threshold rule and compare designed size, solver effort and
validated latency.
"""

from repro.analysis import format_table
from repro.core import CrossbarSynthesizer, SynthesisConfig

from _bench_utils import emit


def run_experiment(app_traces):
    app, trace = app_traces["fft"]
    outcomes = {}
    for label, threshold in (("with-preprocess", 0.3), ("no-preprocess", 0.5)):
        config = SynthesisConfig(
            overlap_threshold=threshold,
            use_criticality=(label == "with-preprocess"),
        )
        report = CrossbarSynthesizer(config).design(app, trace=trace)
        validation = app.simulate(
            report.design.it.as_list(),
            report.design.ti.as_list(),
            app.sim_cycles * 4,
        )
        outcomes[label] = {
            "buses": report.design.bus_count,
            "conflicts": report.it_report.conflicts.num_conflicts,
            "clique_bound": report.it_report.conflicts.clique_lower_bound(),
            "mean_latency": validation.latency_stats().mean,
            "max_latency": validation.latency_stats().maximum,
        }
    return app, outcomes


def test_preprocess_ablation(benchmark, app_traces, results_dir):
    app, outcomes = benchmark.pedantic(
        run_experiment, args=(app_traces,), rounds=1, iterations=1
    )

    rows = [
        [
            label,
            data["conflicts"],
            data["clique_bound"],
            data["buses"],
            data["mean_latency"],
            data["max_latency"],
        ]
        for label, data in outcomes.items()
    ]
    emit(
        results_dir,
        "ablation_preprocess",
        format_table(
            [
                "variant", "IT conflicts", "clique LB", "total buses",
                "mean lat (cy)", "max lat (cy)",
            ],
            rows,
            title="Ablation: conflict pre-processing on FFT",
        ),
    )

    strict = outcomes["with-preprocess"]
    loose = outcomes["no-preprocess"]
    # pre-processing finds the conflicts and a non-trivial clique bound
    assert strict["conflicts"] > loose["conflicts"]
    assert strict["clique_bound"] >= loose["clique_bound"]
    # dropping it compacts the crossbar but costs worst-case latency
    assert loose["buses"] <= strict["buses"]
    assert loose["max_latency"] >= strict["max_latency"]
