"""Minimal in-tree PEP 517/660 build backend.

The execution environment for this reproduction is fully offline and lacks
the ``wheel`` package, which the stock setuptools backend requires for both
regular and editable wheel builds. This backend implements just enough of
PEP 517 (``build_wheel``) and PEP 660 (``build_editable``) with the standard
library alone so that ``pip install -e .`` works everywhere.

The editable wheel contains a single ``.pth`` file pointing at ``src/``; the
regular wheel contains the package sources. Both carry the required
``*.dist-info`` metadata with real sha256 RECORD entries.
"""

from __future__ import annotations

import base64
import hashlib
import os
import zipfile

NAME = "repro"
VERSION = "1.0.0"
DIST_INFO = f"{NAME}-{VERSION}.dist-info"
TAG = "py3-none-any"

METADATA = f"""\
Metadata-Version: 2.1
Name: {NAME}
Version: {VERSION}
Summary: Application-specific STbus crossbar generation (Murali & De Micheli, DATE 2005)
Requires-Python: >=3.10
Requires-Dist: numpy>=1.24
Requires-Dist: scipy>=1.10
Requires-Dist: networkx>=3.0
"""

WHEEL_FILE = f"""\
Wheel-Version: 1.0
Generator: repro-in-tree-backend (1.0)
Root-Is-Purelib: true
Tag: {TAG}
"""

ENTRY_POINTS = """\
[console_scripts]
repro = repro.cli:main
"""


def _record_entry(arcname: str, data: bytes) -> str:
    digest = base64.urlsafe_b64encode(hashlib.sha256(data).digest())
    return f"{arcname},sha256={digest.rstrip(b'=').decode()},{len(data)}"


def _write_wheel(path: str, files: dict[str, bytes]) -> None:
    record_name = f"{DIST_INFO}/RECORD"
    records = [_record_entry(arcname, data) for arcname, data in files.items()]
    records.append(f"{record_name},,")
    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as archive:
        for arcname, data in files.items():
            archive.writestr(arcname, data)
        archive.writestr(record_name, "\n".join(records) + "\n")


def _dist_info_files() -> dict[str, bytes]:
    return {
        f"{DIST_INFO}/METADATA": METADATA.encode(),
        f"{DIST_INFO}/WHEEL": WHEEL_FILE.encode(),
        f"{DIST_INFO}/entry_points.txt": ENTRY_POINTS.encode(),
    }


def _package_files() -> dict[str, bytes]:
    files: dict[str, bytes] = {}
    root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
    for dirpath, _dirnames, filenames in os.walk(os.path.join(root, NAME)):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            full = os.path.join(dirpath, filename)
            arcname = os.path.relpath(full, root).replace(os.sep, "/")
            with open(full, "rb") as handle:
                files[arcname] = handle.read()
    return files


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    """Build a regular wheel containing the package sources."""
    files = _package_files()
    files.update(_dist_info_files())
    wheel_name = f"{NAME}-{VERSION}-{TAG}.whl"
    _write_wheel(os.path.join(wheel_directory, wheel_name), files)
    return wheel_name


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    """Build a PEP 660 editable wheel (a ``.pth`` file pointing at src/)."""
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
    files = {f"{NAME}.pth": (src + "\n").encode()}
    files.update(_dist_info_files())
    wheel_name = f"{NAME}-{VERSION}-{TAG}.whl"
    _write_wheel(os.path.join(wheel_directory, wheel_name), files)
    return wheel_name


def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []
