#!/usr/bin/env python
"""Baseline shoot-out: windowed synthesis vs prior-work design styles.

Designs the FFT benchmark's crossbar four ways and validates each by
simulation:

* **average-traffic** (prior bus/NoC synthesis work): whole-run average
  bandwidth, no overlap awareness -- small but slow,
* **peak/contention-free** (Ho-Pinkston style): separates any pair of
  streams that ever overlaps -- fast but oversized,
* **windowed** (the paper): bandwidth AND overlap per window -- small
  and fast,
* **full crossbar**: the latency reference.

This is the Fig. 4 mechanism in miniature, on one application.
"""

from repro import (
    CrossbarSynthesizer,
    SynthesisConfig,
    average_traffic_design,
    build_application,
    full_crossbar_design,
    peak_bandwidth_design,
)
from repro.analysis import compare_designs, format_table


def main() -> None:
    app = build_application("fft")
    print(f"application: {app.name} ({app.num_cores} cores)")
    trace = app.simulate_full_crossbar().trace

    designs = [
        average_traffic_design(trace),
        peak_bandwidth_design(trace, window_size=app.default_window),
        CrossbarSynthesizer(SynthesisConfig()).design(app, trace=trace).design,
        full_crossbar_design(trace),
    ]
    evaluations = compare_designs(app, designs)
    full_stats = evaluations["full"].stats

    rows = []
    for label in ("average-traffic", "peak-bandwidth", "windowed", "full"):
        evaluation = evaluations[label]
        rows.append(
            [
                label,
                evaluation.bus_count,
                evaluation.stats.mean,
                evaluation.stats.maximum,
                evaluation.stats.mean / full_stats.mean,
                evaluation.stats.maximum / max(full_stats.maximum, 1),
            ]
        )
    print()
    print(
        format_table(
            [
                "design", "buses", "avg lat (cy)", "max lat (cy)",
                "avg vs full", "max vs full",
            ],
            rows,
        )
    )
    windowed = evaluations["windowed"]
    average = evaluations["average-traffic"]
    peak = evaluations["peak-bandwidth"]
    print(
        f"\nwindowed design: {windowed.bus_count} buses at "
        f"{windowed.stats.mean / full_stats.mean:.2f}x full-crossbar latency"
    )
    print(
        f"average-traffic design is {average.stats.mean / windowed.stats.mean:.1f}x "
        f"slower; peak design needs {peak.bus_count - windowed.bus_count} "
        f"more buses for {windowed.stats.mean / peak.stats.mean:.2f}x its latency"
    )


if __name__ == "__main__":
    main()
