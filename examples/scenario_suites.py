#!/usr/bin/env python
"""Scenario suites: one robust crossbar for many use-cases.

The paper designs a crossbar per application; a shipping SoC must serve
every use-case of the chip. This example:

1. builds the ``mixed`` suite -- the paper's synthetic burst benchmark
   next to hotspot, open-loop Poisson and producer/consumer streaming
   workloads on one 10x10 platform,
2. synthesizes every scenario individually (through the execution
   engine, so repeat runs come from the cache),
3. synthesizes one *robust* crossbar under the exact ``union`` merge
   policy and replays it against every scenario (zero violations by
   construction),
4. relaxes to the ``weighted`` policy to show the size/isolation
   trade-off when rare use-cases stop forcing separations,
5. round-trips the suite through JSON -- the committed-and-diffed
   workflow for real projects.
"""

import tempfile
from pathlib import Path

from repro import (
    ExecutionEngine,
    ScenarioSuiteRunner,
    build_suite,
    load_suite,
    save_suite,
)


def main() -> None:
    suite = build_suite("mixed")
    print(f"suite: {suite.name} -- {suite.description}")
    for scenario in suite:
        print(f"  {scenario.name:<22} {scenario.source:<18} "
              f"weight={scenario.weight:g} load={scenario.load_scale:g}x")
    print()

    engine = ExecutionEngine(jobs=2)
    union = ScenarioSuiteRunner(engine=engine, policy="union").run(suite)
    print(union.summary())
    assert union.total_violations == 0  # union enforces every scenario exactly

    weighted = ScenarioSuiteRunner(
        engine=engine, policy="weighted", min_weight=0.6
    ).run(suite)
    print()
    print(
        f"weighted policy (min weight 60%): {weighted.robust_buses} buses vs "
        f"{union.robust_buses} under union, at "
        f"{weighted.total_violations} relaxed separation(s)"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "mixed.json"
        save_suite(suite, path)
        assert load_suite(path) == suite
        print(f"\nsuite round-tripped through JSON ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
