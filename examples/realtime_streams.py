#!/usr/bin/env python
"""Real-time streams: latency guarantees through bus separation.

Reproduces the paper's Sec. 7.3 real-time experiment on the DES
benchmark: two private-memory streams are declared critical. The
pre-processing phase detects that their traffic overlaps within analysis
windows and forbids them from sharing a bus, and the validation run shows
the critical streams' latency staying near the full-crossbar minimum even
though the rest of the system shares buses.
"""

from repro import CrossbarSynthesizer, SynthesisConfig, build_application
from repro.analysis import format_table

CRITICAL_TARGETS = (0, 4)  # pm0 and pm4 carry real-time traffic


def main() -> None:
    app = build_application("des", critical_targets=CRITICAL_TARGETS)
    print(f"application: {app.name} with critical targets {CRITICAL_TARGETS}")

    full = app.simulate_full_crossbar()
    trace = full.trace
    full_critical = full.latency_stats(critical_only=True)

    synthesizer = CrossbarSynthesizer(SynthesisConfig())
    report = synthesizer.design(app, trace=trace)
    print(report.summary())

    separated = (
        report.design.it.binding[CRITICAL_TARGETS[0]]
        != report.design.it.binding[CRITICAL_TARGETS[1]]
    )
    conflict_pairs = report.it_report.conflicts.conflicting_pairs()
    realtime_conflicts = [
        pair
        for pair in conflict_pairs
        if "real-time" in report.it_report.conflicts.reasons[pair]
    ]
    print(f"\nreal-time conflict pairs detected: {realtime_conflicts}")
    print(f"critical targets on different buses: {separated}")

    validation = synthesizer.validate(
        app, report.design, max_cycles=app.sim_cycles * 3
    )
    designed_all = validation.latency_stats()
    designed_critical = validation.latency_stats(critical_only=True)

    print()
    print(
        format_table(
            ["stream class", "design", "avg lat (cy)", "max lat (cy)"],
            [
                ["critical", "full crossbar", full_critical.mean,
                 full_critical.maximum],
                ["critical", "designed", designed_critical.mean,
                 designed_critical.maximum],
                ["all traffic", "designed", designed_all.mean,
                 designed_all.maximum],
            ],
        )
    )
    ratio = designed_critical.mean / max(full_critical.mean, 1e-9)
    print(
        f"\ncritical-stream latency on the designed crossbar is "
        f"{ratio:.2f}x the full-crossbar value\n"
        f"(paper: 'almost equal to the latency of perfect communication "
        f"using a full crossbar')"
    )


if __name__ == "__main__":
    main()
