#!/usr/bin/env python
"""Variable analysis windows (the paper's future-work extension).

The paper's conclusions propose variable simulation window sizes for
QoS. This example derives *phase-aligned* windows from the synthetic
benchmark's traffic -- boundaries at burst edges, fine windows across
busy phases, coarse ones across idle time -- and runs the synthesis flow
on them, comparing against uniform fine and coarse grids.
"""

from repro import CrossbarSynthesizer, SynthesisConfig
from repro.analysis import format_table
from repro.apps.synthetic import build_synthetic
from repro.traffic import WindowedTraffic, phase_aligned_boundaries

BURST = 1_000


def main() -> None:
    app = build_synthetic(burst_cycles=BURST, total_cycles=80_000, seed=3)
    trace = app.simulate_full_crossbar().trace
    full_stats = app.simulate_full_crossbar().latency_stats()
    print(
        f"synthetic benchmark: {trace.num_initiators}+{trace.num_targets} "
        f"cores, bursts ~{BURST} cy, {trace.total_cycles} cycles"
    )

    edges = phase_aligned_boundaries(
        trace, min_window=BURST // 2, max_window=4 * BURST
    )
    widths = [b - a for a, b in zip(edges, edges[1:])]
    print(
        f"\nphase-aligned boundaries: {len(edges) - 1} windows, "
        f"sizes {min(widths)}..{max(widths)} cycles"
    )
    windowed = WindowedTraffic(trace, boundaries=edges)
    print(f"peak per-window utilization: {windowed.utilization().max():.2f}")

    variants = {
        "uniform-fine": SynthesisConfig(
            window_size=BURST // 2, max_targets_per_bus=None
        ),
        "uniform-coarse": SynthesisConfig(
            window_size=4 * BURST, max_targets_per_bus=None
        ),
        "phase-aligned": SynthesisConfig(
            window_size=4 * BURST,
            variable_windows=True,
            variable_window_ratio=8,
            max_targets_per_bus=None,
        ),
    }
    rows = []
    for label, config in variants.items():
        report = CrossbarSynthesizer(config).design(app, trace=trace)
        validation = app.simulate(
            report.design.it.as_list(),
            report.design.ti.as_list(),
            app.sim_cycles,
        )
        stats = validation.latency_stats()
        rows.append(
            [
                label,
                report.it_report.problem.num_windows,
                report.design.bus_count,
                stats.mean,
                stats.mean / full_stats.mean,
            ]
        )
    print()
    print(
        format_table(
            ["analysis", "windows", "buses", "avg lat (cy)", "vs full"],
            rows,
        )
    )
    print(
        "\nphase alignment recovers burst-level demand information at a "
        "fraction of the\nfine grid's window count, landing between the "
        "uniform extremes."
    )


if __name__ == "__main__":
    main()
