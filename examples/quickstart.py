#!/usr/bin/env python
"""Quickstart: design the Mat2 crossbar end to end.

Runs the paper's full four-phase flow on the 21-core matrix
multiplication benchmark (Fig. 2(a)):

1. simulate Mat2 on a full STbus crossbar and record the traffic,
2. window the trace and extract overlaps,
3. pre-process conflicts and binary-search the minimum configuration,
4. bind targets optimally, then validate the designed crossbar by
   re-simulation against the full-crossbar and shared-bus references.

Expected outcome (paper Sec. 7.1 / Table 2): 3 initiator->target buses +
3 target->initiator buses, each IT bus carrying 3 private memories plus
a common target, at latency close to the full crossbar's.
"""

from repro import (
    CrossbarSynthesizer,
    SynthesisConfig,
    build_application,
    full_crossbar_design,
    shared_bus_design,
)
from repro.analysis import compare_designs, format_table


def main() -> None:
    app = build_application("mat2")
    print(f"application: {app.name} -- {app.description}")
    print(f"cores: {app.num_initiators} initiators + {app.num_targets} targets")

    print("\nPhase 1: full-crossbar simulation ...")
    full_run = app.simulate_full_crossbar()
    trace = full_run.trace
    print(f"  {len(trace)} transactions over {trace.total_cycles} cycles")

    print("\nPhases 2-4: windowed synthesis ...")
    synthesizer = CrossbarSynthesizer(SynthesisConfig())
    report = synthesizer.design(app, trace=trace)
    print(report.summary())

    print("\nIT bus composition:")
    for bus in range(report.design.it.num_buses):
        names = [
            trace.target_names[t]
            for t in report.design.it.targets_on_bus(bus)
        ]
        print(f"  bus {bus}: {', '.join(names)}")

    print("\nValidation: simulating three design points ...")
    designs = [
        shared_bus_design(trace),
        report.design,
        full_crossbar_design(trace),
    ]
    evaluations = compare_designs(app, designs)
    full_stats = evaluations["full"].stats
    rows = []
    for label in ("shared", "windowed", "full"):
        evaluation = evaluations[label]
        rows.append(
            [
                label,
                evaluation.bus_count,
                evaluation.stats.mean,
                evaluation.stats.maximum,
                evaluation.stats.mean / full_stats.mean,
            ]
        )
    print(
        format_table(
            ["design", "buses", "avg lat (cy)", "max lat (cy)", "avg vs full"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
