#!/usr/bin/env python
"""Bring your own application: design a crossbar for a custom MPSoC.

Shows the full public API surface a downstream user touches when their
system is *not* one of the bundled benchmarks:

* describe the platform (initiators, targets, timing) with
  :class:`repro.SoCConfig`,
* write workload programs directly from the operation vocabulary
  (``Compute`` / ``Read`` / ``Write`` / ``Lock`` / ``Barrier``),
* wrap everything in an :class:`repro.Application`,
* run the synthesis flow and persist the trace for later analysis.

The example models a 4+6-core video pipeline: capture DMA, two encoder
cores and a control core, with double-buffered frame stores.
"""

import random
import tempfile
from pathlib import Path

from repro import (
    Application,
    CrossbarSynthesizer,
    SynthesisConfig,
    load_trace_jsonl,
    save_trace_jsonl,
)
from repro.platform import (
    Barrier,
    Compute,
    Read,
    SoCConfig,
    TargetConfig,
    TargetKind,
    Write,
)

FRAME_STORE_A, FRAME_STORE_B = 0, 1
ENC_BUF_0, ENC_BUF_1 = 2, 3
BITSTREAM, CONTROL = 4, 5
FRAMES = 24


def capture_dma(rng: random.Random):
    """Writes captured lines into alternating frame stores."""
    for frame in range(FRAMES):
        store = FRAME_STORE_A if frame % 2 == 0 else FRAME_STORE_B
        for _line in range(10):
            yield Write(store, burst=16, stream="capture")
            yield Compute(rng.randrange(4, 12))
        yield Barrier(CONTROL, barrier_id=0, participants=3)


def encoder(index: int, rng: random.Random):
    """Reads its half of the frame, encodes, writes the bitstream."""
    for frame in range(FRAMES):
        store = FRAME_STORE_A if frame % 2 == 0 else FRAME_STORE_B
        buffer = ENC_BUF_0 if index == 0 else ENC_BUF_1
        for _block in range(6):
            yield Read(store, burst=16, stream=f"enc{index}-fetch")
            yield Compute(rng.randrange(30, 60))
            yield Write(buffer, burst=8, stream=f"enc{index}-work")
        yield Write(BITSTREAM, burst=8, stream=f"enc{index}-out")
        yield Barrier(CONTROL, barrier_id=0, participants=3)


def controller(rng: random.Random):
    """Low-rate supervision traffic."""
    for _tick in range(FRAMES * 2):
        yield Compute(rng.randrange(400, 700))
        yield Read(CONTROL, burst=1, stream="status")


def build_video_pipeline() -> Application:
    config = SoCConfig(
        initiator_names=["dma", "enc0", "enc1", "ctrl"],
        targets=[
            TargetConfig(name="frameA"),
            TargetConfig(name="frameB"),
            TargetConfig(name="encbuf0"),
            TargetConfig(name="encbuf1"),
            TargetConfig(name="bitstream", service_cycles=2),
            TargetConfig(name="control", kind=TargetKind.SEMAPHORE),
        ],
    )
    builders = (
        lambda: capture_dma(random.Random(1)),
        lambda: encoder(0, random.Random(2)),
        lambda: encoder(1, random.Random(3)),
        lambda: controller(random.Random(4)),
    )
    return Application(
        name="video-pipeline",
        config=config,
        program_builders=builders,
        sim_cycles=120_000,
        default_window=800,
        description="4-initiator video encode pipeline",
    )


def main() -> None:
    app = build_video_pipeline()
    print(f"custom application: {app.description}")
    full = app.simulate_full_crossbar()
    print(
        f"full-crossbar run: {len(full.trace)} transactions, "
        f"avg latency {full.latency_stats().mean:.1f} cy"
    )

    report = CrossbarSynthesizer(
        SynthesisConfig(window_size=800, overlap_threshold=0.2)
    ).design(app, trace=full.trace)
    print(report.summary())
    for bus in range(report.design.it.num_buses):
        names = [
            full.trace.target_names[t]
            for t in report.design.it.targets_on_bus(bus)
        ]
        print(f"  IT bus {bus}: {', '.join(names)}")

    validation = CrossbarSynthesizer().validate(
        app, report.design, max_cycles=app.sim_cycles * 3
    )
    ratio = validation.latency_stats().mean / full.latency_stats().mean
    print(
        f"designed crossbar: {report.design.bus_count} buses "
        f"(full would be {app.num_cores}), latency {ratio:.2f}x full"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "video_trace.jsonl"
        save_trace_jsonl(full.trace, path)
        reloaded = load_trace_jsonl(path)
        print(
            f"trace persisted and reloaded: {len(reloaded)} records, "
            f"{path.stat().st_size // 1024} KiB"
        )


if __name__ == "__main__":
    main()
