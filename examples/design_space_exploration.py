#!/usr/bin/env python
"""Design-space exploration on the 20-core synthetic benchmark.

Reproduces the paper's Sec. 7.2/7.4 methodology interactively: sweep the
analysis window size and the overlap threshold and watch the crossbar
size move between the full-crossbar and average-traffic extremes. The
window-size spectrum *is* the design spectrum: tiny windows behave like
peak-bandwidth design, whole-run windows like average-traffic design.

Both sweeps route through the execution engine: run with ``--jobs 8``
to fan points out over worker processes, and ``--cache-dir .cache`` to
make re-runs (near-)instant -- already-solved points are fetched from
the content-addressed result cache instead of being re-solved.
"""

import argparse

from repro import ExecutionEngine, SynthesisConfig
from repro.analysis import (
    bar_chart,
    format_table,
    overlap_threshold_sweep,
    window_size_sweep,
)
from repro.apps.synthetic import synthetic_trace

BURST_CYCLES = 1_000


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial, 0 = per CPU)")
    parser.add_argument("--cache-dir", default=None,
                        help="content-addressed result cache directory")
    args = parser.parse_args()
    engine = ExecutionEngine(jobs=args.jobs, cache=args.cache_dir)

    trace = synthetic_trace(
        burst_cycles=BURST_CYCLES, total_cycles=80_000, seed=3
    )
    print(
        f"synthetic benchmark: {trace.num_initiators}+{trace.num_targets} "
        f"cores, bursts ~{BURST_CYCLES} cycles, {len(trace)} packets"
    )
    config = SynthesisConfig(max_targets_per_bus=None)

    windows = [200, 400, 1_000, 2_000, 4_000, 20_000, trace.total_cycles]
    points = window_size_sweep(trace, windows, config, engine=engine)
    print("\n-- window-size sweep (Fig. 5(a) flavour) --")
    print(
        format_table(
            ["window (cy)", "IT buses", "TI buses", "total"],
            [
                [int(point.value), point.it_buses, point.ti_buses,
                 point.total_buses]
                for point in points
            ],
        )
    )
    print()
    print(
        bar_chart(
            [f"w={int(point.value)}" for point in points],
            [point.it_buses for point in points],
            title="IT crossbar size vs window size",
            unit=" buses",
        )
    )

    thresholds = [0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5]
    threshold_points = overlap_threshold_sweep(
        trace, thresholds, window_size=2 * BURST_CYCLES, config=config,
        engine=engine,
    )
    print("\n-- overlap-threshold sweep (Fig. 6 flavour) --")
    print(
        format_table(
            ["threshold", "IT buses"],
            [
                [f"{point.value:.0%}", point.it_buses]
                for point in threshold_points
            ],
        )
    )
    print()
    print(
        bar_chart(
            [f"{point.value:.0%}" for point in threshold_points],
            [point.it_buses for point in threshold_points],
            title="IT crossbar size vs overlap threshold",
            unit=" buses",
        )
    )

    print(
        "\nreading: aggressive designs pick window ~ burst size and a "
        "~10% threshold;\nconservative designs tolerate window ~ 4x burst "
        "and a 30-40% threshold."
    )
    if engine.cache is not None:
        print(f"result cache: {engine.cache.stats}")


if __name__ == "__main__":
    main()
