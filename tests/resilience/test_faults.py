"""The fault-injection framework itself: purity, scoping, inheritance.

Everything downstream (the chaos engine/cache/server tests) leans on
the properties proved here: decisions are a pure function of
``(seed, point, key)``, plans round-trip losslessly through JSON and
the environment, and child processes inherit the active plan without
explicit plumbing.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.errors import ConfigurationError
from repro.resilience import (
    FAULT_POINTS,
    FAULTS_ENV_VAR,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    clear_plan,
    fault_summary,
    install_from_spec,
    install_plan,
    maybe_io_error,
    should_inject,
)
from repro.resilience import faults as faults_module


KEYS = [f"{i}:a{a}" for i in range(100) for a in range(2)]


class TestDecisions:
    def test_decisions_pure_in_seed_point_key(self):
        a = FaultPlan(seed=42, rules={"worker.crash": FaultRule(rate=0.5)})
        b = FaultPlan(seed=42, rules={"worker.crash": FaultRule(rate=0.5)})
        assert [a.decide("worker.crash", k) for k in KEYS] == [
            b.decide("worker.crash", k) for k in KEYS
        ]

    def test_different_seeds_decide_differently(self):
        a = FaultPlan(seed=1, rules={"io.transient": FaultRule(rate=0.5)})
        b = FaultPlan(seed=2, rules={"io.transient": FaultRule(rate=0.5)})
        assert [a.decide("io.transient", k) for k in KEYS] != [
            b.decide("io.transient", k) for k in KEYS
        ]

    def test_rate_zero_never_fires_rate_one_always(self):
        never = FaultPlan(rules={"cache.corrupt": FaultRule(rate=0.0)})
        always = FaultPlan(rules={"cache.corrupt": FaultRule(rate=1.0)})
        assert not any(never.decide("cache.corrupt", k) for k in KEYS)
        assert all(always.decide("cache.corrupt", k) for k in KEYS)

    def test_rate_is_approximately_honoured(self):
        plan = FaultPlan(seed=0, rules={"worker.crash": FaultRule(rate=0.25)})
        fired = sum(
            plan.decide("worker.crash", str(i)) for i in range(4000)
        )
        assert 0.20 < fired / 4000 < 0.30

    def test_match_restricts_to_first_attempts(self):
        plan = FaultPlan(
            rules={"worker.crash": FaultRule(rate=1.0, match=("*:a0",))}
        )
        assert plan.decide("worker.crash", "3:a0")
        assert not plan.decide("worker.crash", "3:a1")

    def test_max_hits_caps_firing(self):
        plan = FaultPlan(
            rules={"io.transient": FaultRule(rate=1.0, max_hits=3)}
        )
        fired = [plan.decide("io.transient", str(i)) for i in range(10)]
        assert fired == [True] * 3 + [False] * 7
        assert plan.fired() == {"io.transient": 3}

    def test_unconfigured_point_never_fires(self):
        plan = FaultPlan(rules={"worker.crash": FaultRule()})
        assert not plan.decide("solver.slow", "1")


class TestValidation:
    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault point"):
            FaultPlan(rules={"disk.melt": FaultRule()})

    def test_out_of_range_rate_rejected(self):
        with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
            FaultRule(rate=1.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError, match="delay_s"):
            FaultRule(delay_s=-0.1)

    def test_unknown_rule_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault rule"):
            FaultRule.from_dict({"rate": 1.0, "wibble": 1})

    def test_unknown_plan_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault plan"):
            FaultPlan.from_dict({"seed": 1, "chaos": True})

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_known_points_are_the_documented_four(self):
        assert FAULT_POINTS == (
            "worker.crash", "cache.corrupt", "solver.slow", "io.transient",
        )


class TestSerialization:
    def test_json_roundtrip_preserves_decisions(self):
        plan = FaultPlan(
            seed=7,
            rules={
                "worker.crash": FaultRule(rate=0.4, match=("*:a0",)),
                "solver.slow": FaultRule(rate=1.0, delay_s=0.25, max_hits=2),
            },
        )
        revived = FaultPlan.from_json(plan.to_json())
        assert revived.to_dict() == plan.to_dict()
        assert [revived.decide("worker.crash", k) for k in KEYS] == [
            plan.decide("worker.crash", k) for k in KEYS
        ]

    def test_install_from_spec_inline_json(self):
        plan = install_from_spec('{"seed": 5, "rules": {"io.transient": {}}}')
        assert plan.seed == 5
        assert active_plan() is plan

    def test_install_from_spec_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            FaultPlan(seed=11, rules={"cache.corrupt": FaultRule()}).to_json()
        )
        plan = install_from_spec(str(path))
        assert plan.seed == 11
        assert "cache.corrupt" in plan.rules

    def test_install_from_spec_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            install_from_spec(str(tmp_path / "absent.json"))


class TestInstallation:
    def test_install_exports_env_and_clear_removes_it(self):
        plan = FaultPlan(seed=3, rules={"worker.crash": FaultRule()})
        install_plan(plan)
        assert os.environ[FAULTS_ENV_VAR] == plan.to_json()
        assert active_plan() is plan
        clear_plan()
        assert FAULTS_ENV_VAR not in os.environ
        assert active_plan() is None

    def test_active_plan_resolves_lazily_from_env(self, monkeypatch):
        spec = FaultPlan(seed=9, rules={"io.transient": FaultRule()})
        monkeypatch.setenv(FAULTS_ENV_VAR, spec.to_json())
        # Simulate a fresh process (e.g. a spawn worker): unresolved
        # module state, plan only present in the environment.
        monkeypatch.setattr(faults_module, "_ACTIVE", None)
        monkeypatch.setattr(faults_module, "_RESOLVED", False)
        plan = active_plan()
        assert plan is not None
        assert plan.seed == 9
        assert "io.transient" in plan.rules

    def test_child_process_inherits_plan_through_env(self):
        install_plan(
            FaultPlan(seed=21, rules={"solver.slow": FaultRule(delay_s=1.0)})
        )
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        probe = (
            "from repro.resilience import active_plan\n"
            "plan = active_plan()\n"
            "print(plan.seed, sorted(plan.rules))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == "21 ['solver.slow']"


class TestHelpers:
    def test_should_inject_false_without_plan(self):
        assert not should_inject("worker.crash", "0:a0")

    def test_maybe_io_error_raises_oserror_subclass(self):
        install_plan(FaultPlan(rules={"io.transient": FaultRule(rate=1.0)}))
        with pytest.raises(InjectedFault) as excinfo:
            maybe_io_error("k:a0")
        assert isinstance(excinfo.value, OSError)

    def test_fault_summary_none_without_plan(self):
        assert fault_summary() is None

    def test_fault_summary_reports_fired_tallies(self):
        install_plan(
            FaultPlan(seed=4, rules={"io.transient": FaultRule(rate=1.0)})
        )
        with pytest.raises(InjectedFault):
            maybe_io_error("k:a0")
        summary = fault_summary()
        assert summary == {
            "seed": 4,
            "points": ["io.transient"],
            "fired": {"io.transient": 1},
        }
