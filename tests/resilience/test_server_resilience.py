"""Server hardening: timeouts, cancellation, TTL eviction, shedding.

Service-level tests drive :class:`SynthesisService` (and the job
queue) directly with controllable executors -- blocking on an event or
sleeping past the timeout -- so every race is deterministic; one
HTTP-level test then proves the translation layer: 503 + Retry-After
on shedding, 400 on bad ``wait`` values, DELETE semantics, and the
degraded health report.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.server import (
    JobQueue,
    ServiceOverloaded,
    SynthesisServer,
    SynthesisService,
    parse_job_request,
)


def design_payload(threshold):
    return {"kind": "design", "app": "qsort", "threshold": threshold}


class TestJobTimeout:
    def test_overrunning_job_is_failed_and_counted(self):
        queue = JobQueue(
            lambda job: time.sleep(10.0), workers=1, job_timeout=0.05
        )
        try:
            job = queue.new_job(
                parse_job_request(design_payload(0.3)), "fp-timeout"
            )
            queue.submit(job)
            assert job.wait(5.0)
            assert job.state == "failed"
            assert "timed out after 0.05s" in job.error
            assert queue.timeouts() == 1
        finally:
            queue.shutdown(drain=False)

    def test_fast_job_is_untouched_by_the_timeout(self):
        queue = JobQueue(
            lambda job: {"ok": True}, workers=1, job_timeout=5.0
        )
        try:
            job = queue.new_job(
                parse_job_request(design_payload(0.3)), "fp-fast"
            )
            queue.submit(job)
            assert job.wait(5.0)
            assert job.state == "done"
            assert job.result == {"ok": True}
            assert queue.timeouts() == 0
        finally:
            queue.shutdown()

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError, match="job_timeout"):
            JobQueue(lambda job: {}, job_timeout=0.0)

    def test_timeout_degrades_service_health(self):
        service = SynthesisService(workers=1, job_timeout=0.05)
        service.queue._execute = lambda job: time.sleep(10.0)
        try:
            job, disposition = service.submit(design_payload(0.3))
            assert disposition == "new"
            assert job.wait(5.0)
            assert job.state == "failed"
            health = service.health()
            assert health["status"] == "degraded"
            assert any("timeout" in r for r in health["reasons"])
            assert service.stats()["queue"]["timeouts"] == 1
        finally:
            service.close(drain=False)


class TestCancellation:
    def test_queued_job_cancels_running_job_does_not(self):
        started = threading.Event()
        release = threading.Event()

        def blocking_execute(job):
            started.set()
            release.wait(10.0)
            return {"ok": True}

        service = SynthesisService(workers=1)
        service.queue._execute = blocking_execute
        try:
            running, _ = service.submit(design_payload(0.3))
            assert started.wait(5.0)
            queued, _ = service.submit(design_payload(0.35))

            assert service.cancel(queued.id) is True
            assert queued.state == "cancelled"
            assert queued.is_terminal
            assert queued.status()["error"] == "cancelled before execution"
            # Idempotence and the two non-cancellable answers.
            assert service.cancel(queued.id) is False
            assert service.cancel(running.id) is False
            assert service.cancel("job-999") is None

            release.set()
            assert running.wait(5.0)
            assert running.state == "done"
        finally:
            release.set()
            service.close(drain=False)

    def test_cancelled_job_is_skipped_by_the_worker(self):
        """A job cancelled while queued never executes: the worker's
        mark_running guard skips it."""
        ran = []
        release = threading.Event()

        def execute(job):
            ran.append(job.id)
            release.wait(5.0)
            return {}

        queue = JobQueue(execute, workers=1)
        try:
            first = queue.new_job(
                parse_job_request(design_payload(0.3)), "fp-a"
            )
            second = queue.new_job(
                parse_job_request(design_payload(0.35)), "fp-b"
            )
            queue.submit(first)
            queue.submit(second)
            assert second.cancel()
            release.set()
            assert first.wait(5.0)
            deadline = time.time() + 5.0
            while queue.active() and time.time() < deadline:
                time.sleep(0.01)
            assert ran == [first.id]
            assert second.state == "cancelled"
        finally:
            release.set()
            queue.shutdown(drain=False)


class TestTTLEviction:
    def test_finished_jobs_expire_from_both_registries(self):
        service = SynthesisService(workers=1, finished_ttl=0.05)
        service.queue._execute = lambda job: {"ok": True}
        try:
            job, disposition = service.submit(design_payload(0.3))
            assert disposition == "new"
            assert job.wait(5.0)
            # Before expiry: answered from the finished registry.
            again, disposition = service.submit(design_payload(0.3))
            assert again is job
            assert disposition == "finished"

            time.sleep(0.12)
            stats = service.stats()  # stats sweeps both registries
            assert service.queue.get(job.id) is None
            assert stats["coalescing"]["registry_size"] == 0
            assert stats["coalescing"]["ttl_evictions"] >= 1

            # A returning client simply resubmits and gets a new job.
            fresh, disposition = service.submit(design_payload(0.3))
            assert disposition == "new"
            assert fresh.id != job.id
        finally:
            service.close(drain=False)

    def test_no_ttl_means_no_eviction(self):
        service = SynthesisService(workers=1)
        service.queue._execute = lambda job: {"ok": True}
        try:
            job, _ = service.submit(design_payload(0.3))
            assert job.wait(5.0)
            service.stats()
            assert service.queue.get(job.id) is job
        finally:
            service.close(drain=False)


class TestLoadShedding:
    def test_new_requests_shed_at_the_depth_bound(self):
        started = threading.Event()
        release = threading.Event()

        def blocking_execute(job):
            started.set()
            release.wait(10.0)
            return {"ok": True}

        service = SynthesisService(workers=1, max_queue_depth=1)
        service.queue._execute = blocking_execute
        try:
            running, _ = service.submit(design_payload(0.3))
            assert started.wait(5.0)
            queued, _ = service.submit(design_payload(0.35))

            with pytest.raises(ServiceOverloaded) as excinfo:
                service.submit(design_payload(0.4))
            assert excinfo.value.depth == 1
            assert excinfo.value.retry_after > 0

            # Coalesced repeats of an admitted request are never shed.
            same, disposition = service.submit(design_payload(0.35))
            assert same is queued
            assert disposition == "coalesced"

            stats = service.stats()
            assert stats["shedding"] == {"max_queue_depth": 1, "shed": 1}
            assert any(
                "shed" in r for r in service.health()["reasons"]
            )

            # A shed request left no registry entry: once the queue
            # drains it is admitted like any new request.
            release.set()
            assert running.wait(5.0) and queued.wait(5.0)
            retried, disposition = service.submit(design_payload(0.4))
            assert disposition == "new"
            assert retried.wait(5.0)
        finally:
            release.set()
            service.close(drain=False)

    def test_invalid_depth_bound_rejected(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            SynthesisService(max_queue_depth=0)


class TestDegradedHealthPlumbing:
    def test_engine_degradation_reaches_health_and_stats(self):
        service = SynthesisService()
        try:
            service.engine.stats.record_serial_fallback(3)
            health = service.health()
            assert health["degraded"] is True
            assert any("serial" in r for r in health["reasons"])
            stats = service.stats()
            assert stats["engine"]["degraded"] is True
            assert stats["engine"]["serial_tasks"] == 3
        finally:
            service.close()

    def test_fault_summary_surfaces_in_stats(self):
        from repro.resilience import FaultPlan, FaultRule, install_plan

        service = SynthesisService()
        try:
            assert service.stats()["faults"] is None
            install_plan(
                FaultPlan(seed=8, rules={"worker.crash": FaultRule()})
            )
            faults = service.stats()["faults"]
            assert faults["seed"] == 8
            assert faults["points"] == ["worker.crash"]
        finally:
            service.close()


# -- HTTP translation layer -------------------------------------------


def http_request(base, path, method="GET", payload=None):
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        f"{base}{path}", data=data, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


class TestHTTPResilienceSurface:
    def test_shedding_cancellation_and_wait_validation(self):
        started = threading.Event()
        release = threading.Event()

        def blocking_execute(job):
            started.set()
            release.wait(10.0)
            return {"ok": True}

        server = SynthesisServer(port=0, workers=1, max_queue_depth=1)
        server.service.queue._execute = blocking_execute
        server.start()
        base = server.address
        try:
            status, body, _ = http_request(
                base, "/v1/jobs", "POST", design_payload(0.3)
            )
            assert status == 202
            running_id = body["job"]
            assert started.wait(5.0)

            status, body, _ = http_request(
                base, "/v1/jobs", "POST", design_payload(0.35)
            )
            assert status == 202
            queued_id = body["job"]

            # Queue full: 503 with machine-readable retry advice.
            status, body, headers = http_request(
                base, "/v1/jobs", "POST", design_payload(0.4)
            )
            assert status == 503
            assert "capacity" in body["error"]["message"]
            assert float(headers["Retry-After"]) > 0

            # Health now reports the shed, with a reason.
            status, health, _ = http_request(base, "/v1/health")
            assert status == 200
            assert health["status"] == "degraded"
            assert any("shed" in r for r in health["reasons"])

            # wait validation: negative, non-numeric and non-finite
            # are caller bugs -> 400; valid waits are clamped, not 4xx.
            for bad in ("-1", "soon", "nan", "inf"):
                status, body, _ = http_request(
                    base, f"/v1/jobs/{running_id}?wait={bad}"
                )
                assert status == 400, bad
                assert "non-negative" in body["error"]["message"]
            status, body, _ = http_request(
                base, f"/v1/jobs/{running_id}?wait=0"
            )
            assert status == 200
            assert body["state"] == "running"

            # DELETE: cancel the queued job; running and repeated
            # cancels are 409, unknown jobs 404.
            status, body, _ = http_request(
                base, f"/v1/jobs/{queued_id}", "DELETE"
            )
            assert status == 200
            assert body["state"] == "cancelled"
            status, body, _ = http_request(
                base, f"/v1/jobs/{queued_id}", "DELETE"
            )
            assert status == 409
            status, body, _ = http_request(
                base, f"/v1/jobs/{running_id}", "DELETE"
            )
            assert status == 409
            assert "running" in body["error"]["message"]
            status, _body, _ = http_request(
                base, "/v1/jobs/job-999", "DELETE"
            )
            assert status == 404

            release.set()
            status, body, _ = http_request(
                base, f"/v1/jobs/{running_id}?wait=5"
            )
            assert status == 200
            assert body["state"] == "done"

            status, stats, _ = http_request(base, "/v1/stats")
            assert status == 200
            assert stats["shedding"]["shed"] == 1
            assert stats["queue"]["jobs"].get("cancelled") == 1
        finally:
            release.set()
            server.stop(drain=True)
