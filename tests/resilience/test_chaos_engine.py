"""Chaos tests: the engine's recovery ladder under injected failures.

The acceptance property of the whole resilience PR lives here: with
workers being killed mid-sweep (a *real* ``os._exit`` producing a real
``BrokenProcessPool``), the engine retries, rebuilds and -- only past
its budgets -- degrades per task to serial execution, and the results
are **byte-identical** to a fault-free run. Every rung taken is
visible in :class:`~repro.resilience.EngineStats`, never silent.
"""

import json

import pytest

from repro.apps.synthetic import synthetic_trace
from repro.core import SynthesisConfig
from repro.exec import ExecutionEngine, SynthesisTask, result_to_dict
import repro.exec.engine as engine_module
from repro.resilience import FaultPlan, FaultRule, RetryPolicy, install_plan

WINDOWS = [150, 2_400]
CONFIG = SynthesisConfig(max_targets_per_bus=None)


@pytest.fixture(scope="module")
def small_trace():
    return synthetic_trace(
        burst_cycles=300, total_cycles=12_000, num_initiators=5,
        num_targets=5, seed=7,
    )


@pytest.fixture(scope="module")
def tasks():
    return [SynthesisTask(config=CONFIG, window_size=w) for w in WINDOWS]


def sweep_bytes(results):
    return json.dumps(
        [result_to_dict(r) for r in results], sort_keys=True
    ).encode()


@pytest.fixture(scope="module")
def baseline(small_trace, tasks):
    """Fault-free serial reference (serial == parallel is proved in
    tests/exec; chaos runs must land on these exact bytes)."""
    from repro.resilience import clear_plan

    clear_plan()
    return sweep_bytes(ExecutionEngine(jobs=1).run_sweep(small_trace, tasks))


class TestWorkerCrashRecovery:
    def test_crash_on_first_attempt_recovers_via_retry(
        self, small_trace, tasks, baseline
    ):
        """Every task's first attempt dies -> one pool rebuild, every
        task retried once, results byte-identical, no serial fallback."""
        install_plan(
            FaultPlan(
                seed=1,
                rules={"worker.crash": FaultRule(rate=1.0, match=("*:a0",))},
            )
        )
        engine = ExecutionEngine(jobs=2)
        results = engine.run_sweep(small_trace, tasks)
        assert sweep_bytes(results) == baseline
        stats = engine.stats.snapshot()
        assert stats["task_retries"] == len(tasks)
        assert stats["pool_rebuilds"] == 1
        assert stats["serial_fallbacks"] == 0
        assert stats["degraded"] is True

    def test_persistent_crashes_degrade_to_serial_per_task(
        self, small_trace, tasks, baseline
    ):
        """Workers die on *every* attempt -> the retry and rebuild
        budgets are spent, the remainder runs serially in-process, and
        the report is still byte-identical."""
        install_plan(
            FaultPlan(
                seed=1,
                rules={"worker.crash": FaultRule(rate=1.0, match=("*",))},
            )
        )
        engine = ExecutionEngine(jobs=2)
        results = engine.run_sweep(small_trace, tasks)
        assert sweep_bytes(results) == baseline
        stats = engine.stats.snapshot()
        assert stats["task_retries"] == len(tasks)
        assert stats["pool_rebuilds"] == 1
        assert stats["serial_fallbacks"] >= 1
        assert stats["serial_tasks"] == len(tasks)

    def test_batch_path_survives_first_attempt_crashes(
        self, small_trace, tasks, baseline
    ):
        """run_batch shares the same recovery ladder as run_sweep."""
        install_plan(
            FaultPlan(
                seed=1,
                rules={"worker.crash": FaultRule(rate=1.0, match=("*:a0",))},
            )
        )
        engine = ExecutionEngine(jobs=2)
        results = engine.run_batch([(small_trace, task) for task in tasks])
        assert sweep_bytes(results) == baseline
        assert engine.stats.snapshot()["task_retries"] == len(tasks)

    def test_custom_retry_policy_zero_retries_goes_straight_serial(
        self, small_trace, tasks, baseline
    ):
        install_plan(
            FaultPlan(
                seed=1,
                rules={"worker.crash": FaultRule(rate=1.0, match=("*",))},
            )
        )
        engine = ExecutionEngine(
            jobs=2, retry=RetryPolicy(task_retries=0, pool_rebuilds=0)
        )
        results = engine.run_sweep(small_trace, tasks)
        assert sweep_bytes(results) == baseline
        stats = engine.stats.snapshot()
        assert stats["task_retries"] == 0
        assert stats["pool_rebuilds"] == 0
        assert stats["serial_tasks"] == len(tasks)


class TestPoolInfrastructureFailures:
    def test_pool_construction_failure_runs_whole_batch_serially(
        self, small_trace, tasks, baseline, monkeypatch
    ):
        """Fork unavailable / resource squeeze at pool creation: the
        engine never raises, it solves everything in-process."""

        def broken_pool(*args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(
            engine_module, "ProcessPoolExecutor", broken_pool
        )
        engine = ExecutionEngine(jobs=2)
        results = engine.run_sweep(small_trace, tasks)
        assert sweep_bytes(results) == baseline
        stats = engine.stats.snapshot()
        assert stats["serial_fallbacks"] == 1
        assert stats["serial_tasks"] == len(tasks)

    def test_stale_worker_trace_retries_then_degrades_per_task(
        self, small_trace, tasks, baseline, monkeypatch
    ):
        """The satellite regression test for StaleWorkerTraceError:
        every worker installs the wrong trace digest, so every pool
        attempt refuses loudly; after the retry budget the engine
        solves each task serially against the *right* trace."""
        real_install = engine_module._install_worker_trace

        def stale_install(trace, digest=None):
            real_install(trace, digest="stale-digest")

        monkeypatch.setattr(
            engine_module, "_install_worker_trace", stale_install
        )
        engine = ExecutionEngine(jobs=2)
        results = engine.run_sweep(small_trace, tasks)
        assert sweep_bytes(results) == baseline
        stats = engine.stats.snapshot()
        # Stale workers fail the task, not the pool: retried in the
        # same pool (no rebuild), then degraded per task.
        assert stats["task_retries"] == len(tasks)
        assert stats["pool_rebuilds"] == 0
        assert stats["serial_fallbacks"] >= 1
        assert stats["serial_tasks"] == len(tasks)


class TestStatsPlumbing:
    def test_scoped_engines_share_stats(self):
        parent = ExecutionEngine(jobs=2)
        child = parent.scoped()
        assert child.stats is parent.stats
        assert child.retry is parent.retry

    def test_stats_snapshot_shape(self):
        stats = ExecutionEngine(jobs=1).stats.snapshot()
        assert stats == {
            "task_retries": 0,
            "pool_rebuilds": 0,
            "serial_fallbacks": 0,
            "serial_tasks": 0,
            "degraded": False,
        }
