"""Chaos tests: cache corruption and transient I/O never poison results.

A cache is an optimization, never a source of truth: corrupted entries
(injected via ``cache.corrupt``, or genuinely truncated on disk) must
read as misses and be re-solved to byte-identical values, and failing
writes (``io.transient``) must degrade to recomputation -- counted,
never raised into the solve that produced the value.
"""

import json
import os
import shutil
import time

import numpy as np
import pytest

from repro.apps.synthetic import synthetic_trace
from repro.core import SynthesisConfig
from repro.exec import ExecutionEngine, ResultCache, SynthesisTask, result_to_dict
from repro.pipeline import ArtifactStore
from repro.resilience import FaultPlan, FaultRule, clear_plan, install_plan

WINDOWS = [150, 2_400]
CONFIG = SynthesisConfig(max_targets_per_bus=None)


@pytest.fixture(scope="module")
def small_trace():
    return synthetic_trace(
        burst_cycles=300, total_cycles=6_000, num_initiators=4,
        num_targets=4, seed=3,
    )


@pytest.fixture(scope="module")
def tasks():
    return [SynthesisTask(config=CONFIG, window_size=w) for w in WINDOWS]


def sweep_bytes(results):
    return json.dumps(
        [result_to_dict(r) for r in results], sort_keys=True
    ).encode()


class TestCorruptedEntries:
    def test_injected_corruption_is_resolved_byte_identically(
        self, small_trace, tasks, tmp_path
    ):
        baseline_engine = ExecutionEngine(jobs=1, cache=str(tmp_path))
        baseline = sweep_bytes(baseline_engine.run_sweep(small_trace, tasks))
        assert baseline_engine.cache.stats.stores == len(tasks)

        # Every read of an existing entry now decodes to garbage.
        install_plan(
            FaultPlan(rules={"cache.corrupt": FaultRule(rate=1.0)})
        )
        chaos_engine = ExecutionEngine(jobs=1, cache=ResultCache(tmp_path))
        results = chaos_engine.run_sweep(small_trace, tasks)
        assert sweep_bytes(results) == baseline
        stats = chaos_engine.cache.stats
        assert stats.invalid == len(tasks)   # corrupt reads -> misses
        assert stats.stores == len(tasks)    # re-solved and rewritten

        # Injection off again: the rewritten entries serve warm hits.
        clear_plan()
        warm_engine = ExecutionEngine(jobs=1, cache=ResultCache(tmp_path))
        warm = warm_engine.run_sweep(small_trace, tasks)
        assert sweep_bytes(warm) == baseline
        assert warm_engine.cache.stats.hits == len(tasks)
        assert warm_engine.cache.stats.misses == 0

    def test_truncated_entry_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_json("abc123", {"format": "x", "value": 1})
        path = tmp_path / "abc123.json"
        path.write_bytes(path.read_bytes()[:7])  # torn mid-write
        assert cache.get_json("abc123") is None
        assert cache.stats.invalid == 1


class TestTransientWrites:
    def test_first_attempt_failure_is_retried_and_lands(self, tmp_path):
        install_plan(
            FaultPlan(
                rules={"io.transient": FaultRule(rate=1.0, match=("*:a0",))}
            )
        )
        cache = ResultCache(tmp_path)
        cache.put_json("k1", {"value": 1})
        assert cache.get_json("k1") == {"value": 1}
        assert cache.stats.stores == 1
        assert cache.stats.write_errors == 0

    def test_persistent_failure_is_swallowed_and_counted(self, tmp_path):
        install_plan(
            FaultPlan(rules={"io.transient": FaultRule(rate=1.0)})
        )
        cache = ResultCache(tmp_path)
        cache.put_json("k1", {"value": 1})  # must not raise
        assert cache.stats.write_errors == 1
        assert cache.stats.stores == 0
        assert "k1" not in cache

    def test_write_failure_never_fails_the_solve(
        self, small_trace, tasks, tmp_path
    ):
        """The whole point of best-effort persistence: a sweep over a
        dead disk still returns correct results."""
        baseline = sweep_bytes(
            ExecutionEngine(jobs=1).run_sweep(small_trace, tasks)
        )
        install_plan(
            FaultPlan(rules={"io.transient": FaultRule(rate=1.0)})
        )
        engine = ExecutionEngine(jobs=1, cache=str(tmp_path))
        results = engine.run_sweep(small_trace, tasks)
        assert sweep_bytes(results) == baseline
        assert engine.cache.stats.write_errors >= len(tasks)


class TestOrphanSweep:
    def _make_tmp(self, directory, name, age_s):
        path = directory / name
        path.write_text("partial")
        old = time.time() - age_s
        os.utime(path, (old, old))
        return path

    def test_construction_sweeps_stale_tmp_files(self, tmp_path):
        stale = self._make_tmp(tmp_path, ".tmp-dead1.json", 2 * 3600)
        fresh = self._make_tmp(tmp_path, ".tmp-live2.json", 1)
        entry = tmp_path / "realkey.json"
        entry.write_text("{}")

        ResultCache(tmp_path)
        assert not stale.exists()       # orphan from a killed writer
        assert fresh.exists()           # possibly a live writer: kept
        assert entry.exists()           # real entries untouched

    def test_prune_sweeps_orphans_too(self, tmp_path):
        cache = ResultCache(tmp_path)
        stale = self._make_tmp(tmp_path, ".tmp-dead3.npz", 2 * 3600)
        cache.prune(max_bytes=10**9)
        assert not stale.exists()

    def test_explicit_sweep_with_zero_age_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._make_tmp(tmp_path, ".tmp-a.json", 1)
        self._make_tmp(tmp_path, ".tmp-b.npz", 1)
        assert cache.sweep_orphans(max_age_s=0) == 2

    def test_orphans_are_invisible_to_keys_and_usage(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_json("goodkey", {"value": 1})
        self._make_tmp(tmp_path, ".tmp-orphan.json", 1)
        assert list(cache.keys()) == ["goodkey"]
        assert cache.usage().entries == 1


class TestTensorSidecars:
    def test_truncated_npz_sidecar_is_a_miss(self, tmp_path):
        store = ArtifactStore(disk=ResultCache(tmp_path))
        arrays = {"comm": np.arange(12.0).reshape(3, 4)}
        store.put_arrays("fp1", arrays)
        loaded = store.get_arrays("fp1")
        assert loaded is not None
        np.testing.assert_array_equal(loaded["comm"], arrays["comm"])

        path = tmp_path / "stage-fp1.npz"
        path.write_bytes(path.read_bytes()[:10])  # torn mid-write
        # Drop the uncompressed mmap tier so the torn npz is what gets
        # read (the hot tier would otherwise mask the corruption).
        shutil.rmtree(tmp_path / "stage-fp1.mmap", ignore_errors=True)
        assert store.get_arrays("fp1") is None

    def test_garbage_npz_sidecar_is_a_miss(self, tmp_path):
        store = ArtifactStore(disk=ResultCache(tmp_path))
        (tmp_path / "stage-fp2.npz").write_bytes(b"not a zip archive")
        assert store.get_arrays("fp2") is None

    def test_sidecar_write_failure_is_silent(self, tmp_path, monkeypatch):
        store = ArtifactStore(disk=ResultCache(tmp_path))

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", broken_replace)
        store.put_arrays("fp3", {"x": np.zeros(2)})  # must not raise
        monkeypatch.undo()
        assert store.get_arrays("fp3") is None
        # The temp file was cleaned up on the failure path.
        assert list(tmp_path.glob(".tmp-*")) == []
