"""The branch-and-bound wall-clock deadline and its equivalence gate.

Two properties, both load-bearing:

* **Equivalence**: with no deadline (or one that never fires) the
  search path is untouched -- solutions are identical field-for-field
  to the pre-deadline solver, which is what keeps every other
  byte-identity guarantee in the repo intact.
* **Graceful degradation**: an expiring deadline returns the best
  incumbent flagged ``timed_out`` (or a bare ``TIME_LIMIT`` when none
  exists yet) instead of running unboundedly.

Deadline tests drive a fake monotonic clock (one tick per call), so
node-exact cut points are deterministic -- no sleeps, no flakiness.
"""

import pytest

import repro.milp.branch_bound as bb
from repro.milp import (
    BranchBoundOptions,
    LinExpr,
    Model,
    SolveStatus,
    solve_milp,
)
from repro.resilience import FaultPlan, FaultRule, install_plan


def knapsack():
    # Explores exactly 3 nodes: fractional root, incumbent (items 1+2,
    # objective -20) at node 2, optimality proved at node 3.
    model = Model("knapsack")
    values = [10, 13, 7, 8]
    weights = [3, 4, 2, 3]
    xs = [model.binary_var(f"x{i}") for i in range(4)]
    model.add(LinExpr.total(w * x for w, x in zip(weights, xs)) <= 6)
    model.minimize(LinExpr.total(-v * x for v, x in zip(values, xs)))
    return model, xs


class _FakeClock:
    """``time`` stand-in: monotonic() ticks 1.0 per call.

    solve_milp reads the clock once at setup and once per node, so a
    ``time_limit`` of ``n + 0.5`` expires exactly at node ``n + 1``.
    """

    def __init__(self):
        self.now = 0.0

    def monotonic(self):
        value = self.now
        self.now += 1.0
        return value


@pytest.fixture
def fake_clock(monkeypatch):
    clock = _FakeClock()
    monkeypatch.setattr(bb, "time", clock)
    return clock


def solution_fields(solution, xs):
    return (
        solution.status,
        solution.objective,
        solution.nodes,
        solution.timed_out,
        [solution[x] for x in xs],
    )


class TestEquivalenceGate:
    def test_no_deadline_and_unreachable_deadline_are_identical(self):
        model_a, xs_a = knapsack()
        model_b, xs_b = knapsack()
        bare = solve_milp(model_a)
        bounded = solve_milp(
            model_b, BranchBoundOptions(time_limit=3600.0)
        )
        assert solution_fields(bare, xs_a) == solution_fields(bounded, xs_b)
        assert bare.status is SolveStatus.OPTIMAL
        assert not bare.timed_out

    def test_default_options_carry_no_deadline(self):
        assert BranchBoundOptions().time_limit is None


class TestDeadlineExpiry:
    def test_expiry_before_any_incumbent_reports_time_limit(
        self, fake_clock
    ):
        model, _xs = knapsack()
        solution = solve_milp(
            model, BranchBoundOptions(time_limit=1.5)
        )
        assert solution.status is SolveStatus.TIME_LIMIT
        assert solution.timed_out
        assert solution.objective is None
        assert not solution.is_feasible

    def test_expiry_after_incumbent_returns_it_flagged(self, fake_clock):
        # Cut at node 3: the incumbent from node 2 comes back FEASIBLE
        # (here it happens to equal the optimum, unproven at that point).
        model, xs = knapsack()
        solution = solve_milp(
            model, BranchBoundOptions(time_limit=2.5)
        )
        assert solution.status is SolveStatus.FEASIBLE
        assert solution.timed_out
        assert solution.objective == pytest.approx(-20)
        assert solution.is_feasible
        assert all(float(solution[x]).is_integer() for x in xs)

    def test_deadline_respects_node_accounting(self, fake_clock):
        model, _xs = knapsack()
        solution = solve_milp(
            model, BranchBoundOptions(time_limit=1.5)
        )
        # The expiring node is still counted as explored.
        assert solution.nodes == 2


class TestSlowSolverInjection:
    def test_injected_node_latency_triggers_a_real_deadline(self):
        """With ``solver.slow`` stretching every node far past the
        deadline, a wall-clock run times out on the first node."""
        install_plan(
            FaultPlan(
                rules={"solver.slow": FaultRule(rate=1.0, delay_s=0.05)}
            )
        )
        model, _xs = knapsack()
        solution = solve_milp(
            model, BranchBoundOptions(time_limit=0.01)
        )
        assert solution.timed_out
        assert solution.status in (
            SolveStatus.TIME_LIMIT, SolveStatus.FEASIBLE
        )
        assert solution.nodes == 1

    def test_injection_off_means_no_latency(self):
        model, _xs = knapsack()
        solution = solve_milp(
            model, BranchBoundOptions(time_limit=30.0)
        )
        assert solution.status is SolveStatus.OPTIMAL
        assert not solution.timed_out
