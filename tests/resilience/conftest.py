"""Shared hygiene for the chaos suite: no fault plan leaks anywhere.

Fault plans are process-global (module state plus the ``REPRO_FAULTS``
environment variable), so every test starts and ends with injection
fully cleared -- a leaked plan would poison unrelated tests in the
same run, including the deterministic-equivalence baselines this very
suite asserts against.
"""

import pytest

from repro.resilience import clear_plan


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    clear_plan()
    yield
    clear_plan()
