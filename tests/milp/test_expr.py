"""Unit tests for variables and linear expressions."""

import pytest

from repro.errors import ModelError
from repro.milp import LinExpr, Model, Sense, VarType


@pytest.fixture
def model():
    return Model("test")


class TestVariables:
    def test_binary_var_domain(self, model):
        x = model.binary_var("x")
        assert x.lower == 0 and x.upper == 1
        assert x.vtype is VarType.BINARY
        assert x.is_integral

    def test_integer_var(self, model):
        y = model.integer_var("y", lower=2, upper=7)
        assert (y.lower, y.upper) == (2, 7)
        assert y.is_integral

    def test_continuous_var_default_bounds(self, model):
        z = model.continuous_var("z")
        assert z.lower == 0
        assert z.upper == float("inf")
        assert not z.is_integral

    def test_duplicate_name_rejected(self, model):
        model.binary_var("x")
        with pytest.raises(ModelError):
            model.binary_var("x")

    def test_empty_domain_rejected(self, model):
        with pytest.raises(ModelError):
            model.integer_var("bad", lower=5, upper=2)

    def test_indices_are_column_positions(self, model):
        names = [model.binary_var(f"v{i}").index for i in range(4)]
        assert names == [0, 1, 2, 3]


class TestExpressions:
    def test_addition_collects_terms(self, model):
        x, y = model.binary_var("x"), model.binary_var("y")
        expr = x + y + x
        assert expr.terms[x] == 2.0
        assert expr.terms[y] == 1.0

    def test_subtraction_cancels_terms(self, model):
        x = model.binary_var("x")
        expr = x - x
        assert expr.terms == {}

    def test_scalar_multiplication(self, model):
        x = model.binary_var("x")
        expr = 3 * x + 1
        assert expr.terms[x] == 3.0
        assert expr.constant == 1.0

    def test_negation(self, model):
        x = model.binary_var("x")
        expr = -(x + 2)
        assert expr.terms[x] == -1.0
        assert expr.constant == -2.0

    def test_rsub(self, model):
        x = model.binary_var("x")
        expr = 5 - x
        assert expr.terms[x] == -1.0
        assert expr.constant == 5.0

    def test_total_sums_mixed_items(self, model):
        xs = [model.binary_var(f"x{i}") for i in range(3)]
        expr = LinExpr.total([*xs, 4])
        assert all(expr.terms[x] == 1.0 for x in xs)
        assert expr.constant == 4.0

    def test_non_scalar_multiplication_rejected(self, model):
        x, y = model.binary_var("x"), model.binary_var("y")
        with pytest.raises(ModelError):
            _ = x.to_expr() * y.to_expr()

    def test_value_evaluation(self, model):
        x, y = model.binary_var("x"), model.binary_var("y")
        expr = 2 * x - 3 * y + 1
        assert expr.value({x: 1.0, y: 1.0}) == 0.0


class TestConstraintBuilding:
    def test_le_constraint(self, model):
        x = model.binary_var("x")
        constraint = x + 1 <= 3
        assert constraint.sense is Sense.LE
        # canonical form: x + 1 - 3 <= 0
        assert constraint.expr.constant == -2.0

    def test_ge_and_eq(self, model):
        x = model.binary_var("x")
        assert (x >= 1).sense is Sense.GE
        assert (x.to_expr() == 1).sense is Sense.EQ

    def test_expr_vs_expr_comparison(self, model):
        x, y = model.binary_var("x"), model.binary_var("y")
        constraint = x + y <= 2 * y
        assert constraint.expr.terms[x] == 1.0
        assert constraint.expr.terms[y] == -1.0

    def test_violated_by(self, model):
        x = model.binary_var("x")
        constraint = x <= 0
        assert constraint.violated_by({x: 1.0})
        assert not constraint.violated_by({x: 0.0})
