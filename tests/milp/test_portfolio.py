"""The racing solver portfolio: reference vs HiGHS, first proof wins.

Whichever contestant wins, the portfolio must report the same verdict
and objective as either backend alone -- exactness is what makes racing
safe. Win attribution feeds ``repro_race_wins_total``.
"""

import pytest

from repro.milp import (
    BranchBoundOptions,
    LinExpr,
    Model,
    SolveStatus,
    race_win_counts,
    solve_milp,
)
from repro.milp.portfolio import RACE_BACKENDS, race_portfolio

PORTFOLIO = BranchBoundOptions(backend="portfolio")


def _knapsack():
    model = Model("knapsack")
    values = [10, 13, 7, 8]
    weights = [3, 4, 2, 3]
    xs = [model.binary_var(f"x{i}") for i in range(4)]
    model.add(LinExpr.total(w * x for w, x in zip(weights, xs)) <= 6)
    model.minimize(LinExpr.total(-v * x for v, x in zip(values, xs)))
    return model, xs


class TestRace:
    def test_agrees_with_single_backends(self):
        model, _ = _knapsack()
        solution = solve_milp(model, PORTFOLIO)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(-20)

    def test_infeasible(self):
        model = Model()
        x = model.binary_var("x")
        model.add(x >= 2)
        solution = solve_milp(model, PORTFOLIO)
        assert solution.status is SolveStatus.INFEASIBLE

    def test_feasibility_only(self):
        model = Model()
        xs = [model.binary_var(f"x{i}") for i in range(6)]
        model.add(LinExpr.total(xs) >= 3)
        solution = solve_milp(
            model,
            BranchBoundOptions(feasibility_only=True, backend="portfolio"),
        )
        assert solution.status is SolveStatus.OPTIMAL
        assert sum(solution[x] for x in xs) >= 3

    def test_warm_start_forwarded(self):
        model, xs = _knapsack()
        warm = {xs[0]: 1.0, xs[1]: 0.0, xs[2]: 0.0, xs[3]: 0.0}
        solution = solve_milp(model, PORTFOLIO, warm_values=warm)
        assert solution.objective == pytest.approx(-20)

    def test_win_attributed_to_a_contestant(self):
        model, _ = _knapsack()
        before = race_win_counts()
        race_portfolio(model, BranchBoundOptions())
        after = race_win_counts()
        gained = {
            backend: after.get(backend, 0) - before.get(backend, 0)
            for backend in RACE_BACKENDS
        }
        assert sum(gained.values()) == 1
        assert all(delta >= 0 for delta in gained.values())

    def test_race_backends_are_the_exact_tiers(self):
        assert RACE_BACKENDS == ("reference", "highs")

    def test_fallback_in_daemon_context(self, monkeypatch):
        # A daemon process cannot fork children; the race degrades to an
        # in-process HiGHS solve and still answers correctly.
        import multiprocessing

        monkeypatch.setattr(
            multiprocessing.current_process(), "_config",
            {**multiprocessing.current_process()._config, "daemon": True},
        )
        model, _ = _knapsack()
        solution = race_portfolio(model, BranchBoundOptions())
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(-20)
