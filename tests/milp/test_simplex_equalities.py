"""Additional simplex properties: equality constraints and mixed systems.

Complements ``test_simplex.py`` (inequality-only random LPs) with random
*equality-constrained* instances, again cross-checked against scipy.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.milp import solve_lp_scipy, solve_lp_simplex
from repro.milp.simplex import LPStatus


@st.composite
def random_equality_lp(draw):
    num_vars = draw(st.integers(2, 5))
    num_eq = draw(st.integers(1, 2))
    num_ub = draw(st.integers(0, 3))
    ints = st.integers(-4, 4)
    c = [draw(ints) for _ in range(num_vars)]
    a_eq = [[draw(ints) for _ in range(num_vars)] for _ in range(num_eq)]
    # build a guaranteed-feasible rhs from a random non-negative point
    x0 = [draw(st.integers(0, 3)) for _ in range(num_vars)]
    b_eq = [sum(a * x for a, x in zip(row, x0)) for row in a_eq]
    a_ub = [[draw(ints) for _ in range(num_vars)] for _ in range(num_ub)]
    b_ub = [
        sum(a * x for a, x in zip(row, x0)) + draw(st.integers(0, 5))
        for row in a_ub
    ]
    upper = [draw(st.integers(3, 8)) for _ in range(num_vars)]
    return c, a_eq, b_eq, a_ub, b_ub, upper, x0


class TestEqualityLPs:
    @settings(max_examples=80, deadline=None)
    @given(random_equality_lp())
    def test_matches_scipy(self, lp):
        c, a_eq, b_eq, a_ub, b_ub, upper, _x0 = lp
        n = len(c)
        args = dict(
            c=np.array(c, dtype=float),
            a_ub=np.array(a_ub, dtype=float).reshape(len(b_ub), n),
            b_ub=np.array(b_ub, dtype=float),
            a_eq=np.array(a_eq, dtype=float).reshape(len(b_eq), n),
            b_eq=np.array(b_eq, dtype=float),
            lower=np.zeros(n),
            upper=np.array(upper, dtype=float),
        )
        ours = solve_lp_simplex(**args)
        reference = solve_lp_scipy(**args)
        assert ours.status == reference.status
        if ours.status is LPStatus.OPTIMAL:
            assert ours.objective == pytest.approx(
                reference.objective, abs=1e-6
            )

    @settings(max_examples=50, deadline=None)
    @given(random_equality_lp())
    def test_solution_satisfies_equalities(self, lp):
        c, a_eq, b_eq, a_ub, b_ub, upper, x0 = lp
        n = len(c)
        # the witness point is feasible iff it respects the upper bounds;
        # restrict to instances where it does, so OPTIMAL is guaranteed
        if any(x > u for x, u in zip(x0, upper)):
            return
        result = solve_lp_simplex(
            np.array(c, dtype=float),
            np.array(a_ub, dtype=float).reshape(len(b_ub), n),
            np.array(b_ub, dtype=float),
            np.array(a_eq, dtype=float).reshape(len(b_eq), n),
            np.array(b_eq, dtype=float),
            np.zeros(n),
            np.array(upper, dtype=float),
        )
        assert result.status is LPStatus.OPTIMAL
        for row, rhs in zip(a_eq, b_eq):
            assert sum(a * x for a, x in zip(row, result.x)) == pytest.approx(
                rhs, abs=1e-6
            )
