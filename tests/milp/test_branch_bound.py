"""Unit and property tests for the branch-and-bound MILP solver.

Random small MILPs are verified against brute-force enumeration of the
integer grid, with both LP engines.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.milp import (
    BranchBoundOptions,
    LinExpr,
    Model,
    Solution,
    SolveStatus,
    solve_milp,
)


class TestKnownMILPs:
    def test_knapsack(self):
        model = Model("knapsack")
        values = [10, 13, 7, 8]
        weights = [3, 4, 2, 3]
        xs = [model.binary_var(f"x{i}") for i in range(4)]
        model.add(LinExpr.total(w * x for w, x in zip(weights, xs)) <= 6)
        model.minimize(LinExpr.total(-v * x for v, x in zip(values, xs)))
        solution = solve_milp(model)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(-20)  # items 1 and 2 (13+7)

    def test_integer_rounding_matters(self):
        # LP relaxation gives x = 2.5; MILP must settle on 2.
        model = Model()
        x = model.integer_var("x", upper=10)
        model.add(2 * x <= 5)
        model.minimize(-x)
        solution = solve_milp(model)
        assert solution.objective == pytest.approx(-2)
        assert solution[x] == 2

    def test_infeasible_integrality(self):
        # 2x == 3 has a fractional-only solution.
        model = Model()
        x = model.integer_var("x", upper=5)
        model.add(2 * x.to_expr() == 3)
        solution = solve_milp(model)
        assert solution.status is SolveStatus.INFEASIBLE

    def test_plain_infeasible(self):
        model = Model()
        x = model.binary_var("x")
        model.add(x >= 2)
        solution = solve_milp(model)
        assert solution.status is SolveStatus.INFEASIBLE

    def test_feasibility_only_mode(self):
        model = Model()
        xs = [model.binary_var(f"x{i}") for i in range(6)]
        model.add(LinExpr.total(xs) >= 3)
        solution = solve_milp(
            model, BranchBoundOptions(feasibility_only=True)
        )
        assert solution.status is SolveStatus.OPTIMAL
        assert sum(solution[x] for x in xs) >= 3

    def test_assignment_problem(self):
        # 3 tasks to 3 machines; optimum is 1 + 2 + 8 = 11 (or 1 + 6 + 4).
        cost = [[1, 5, 9], [7, 2, 6], [1, 4, 8]]
        model = Model("assign")
        x = [
            [model.binary_var(f"x{i}{j}") for j in range(3)] for i in range(3)
        ]
        for i in range(3):
            model.add(LinExpr.total(x[i]) == 1)
        for j in range(3):
            model.add(LinExpr.total(x[i][j] for i in range(3)) == 1)
        model.minimize(
            LinExpr.total(
                cost[i][j] * x[i][j] for i in range(3) for j in range(3)
            )
        )
        solution = solve_milp(model)
        assert solution.objective == pytest.approx(11)
        chosen = {(i, j) for i in range(3) for j in range(3) if solution[x[i][j]] > 0.5}
        assert len(chosen) == 3
        assert sum(cost[i][j] for i, j in chosen) == pytest.approx(solution.objective)

    def test_mixed_integer_continuous(self):
        model = Model()
        x = model.integer_var("x", upper=4)
        y = model.continuous_var("y", upper=10)
        model.add(x + y <= 5.5)
        model.minimize(-2 * x - y)
        solution = solve_milp(model)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution[x] == 4
        assert solution.value(y) == pytest.approx(1.5)

    def test_node_limit_reported(self):
        model = Model()
        xs = [model.binary_var(f"x{i}") for i in range(10)]
        model.add(LinExpr.total(2 * x for x in xs) == 9)  # infeasible parity
        solution = solve_milp(model, BranchBoundOptions(node_limit=3))
        assert solution.status in (SolveStatus.NODE_LIMIT, SolveStatus.INFEASIBLE)

    def test_unknown_engine_rejected(self):
        with pytest.raises(SolverError):
            BranchBoundOptions(lp_engine="gurobi").resolve_engine()

    def test_simplex_engine_agrees_on_knapsack(self):
        model = Model()
        xs = [model.binary_var(f"x{i}") for i in range(4)]
        model.add(LinExpr.total([3 * xs[0], 4 * xs[1], 2 * xs[2], 3 * xs[3]]) <= 6)
        model.minimize(
            LinExpr.total([-10 * xs[0], -13 * xs[1], -7 * xs[2], -8 * xs[3]])
        )
        solution = solve_milp(model, BranchBoundOptions(lp_engine="simplex"))
        assert solution.objective == pytest.approx(-20)


def brute_force(c, rows, ub):
    """Enumerate the integer grid; return the best objective or None."""
    best = None
    ranges = [range(0, u + 1) for u in ub]
    for point in itertools.product(*ranges):
        if all(
            sum(a * v for a, v in zip(row, point)) <= b for row, b in rows
        ):
            value = sum(ci * v for ci, v in zip(c, point))
            if best is None or value < best:
                best = value
    return best


@st.composite
def random_milp(draw):
    num_vars = draw(st.integers(1, 4))
    num_rows = draw(st.integers(1, 4))
    ints = st.integers(-5, 5)
    c = [draw(ints) for _ in range(num_vars)]
    rows = []
    for _ in range(num_rows):
        row = [draw(ints) for _ in range(num_vars)]
        rhs = draw(st.integers(-8, 15))
        rows.append((row, rhs))
    ub = [draw(st.integers(0, 4)) for _ in range(num_vars)]
    return c, rows, ub


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(random_milp(), st.sampled_from(["scipy", "simplex"]))
    def test_matches_enumeration(self, milp, engine):
        c, rows, ub = milp
        model = Model()
        xs = [model.integer_var(f"x{i}", upper=u) for i, u in enumerate(ub)]
        for row, rhs in rows:
            model.add(LinExpr.total(a * x for a, x in zip(row, xs)) <= rhs)
        model.minimize(LinExpr.total(ci * x for ci, x in zip(c, xs)))
        solution = solve_milp(model, BranchBoundOptions(lp_engine=engine))
        expected = brute_force(c, rows, ub)
        if expected is None:
            assert solution.status is SolveStatus.INFEASIBLE
        else:
            assert solution.status is SolveStatus.OPTIMAL
            assert solution.objective == pytest.approx(expected, abs=1e-6)
            # returned point must satisfy all constraints exactly
            point = [solution[x] for x in xs]
            for row, rhs in rows:
                assert sum(a * v for a, v in zip(row, point)) <= rhs + 1e-6


class TestSolutionObject:
    def test_value_default(self):
        model = Model()
        x = model.binary_var("x")
        solution = Solution(SolveStatus.OPTIMAL, objective=0.0, values={})
        assert solution.value(x, default=7.0) == 7.0

    def test_is_feasible(self):
        assert Solution(SolveStatus.OPTIMAL).is_feasible
        assert Solution(SolveStatus.FEASIBLE).is_feasible
        assert not Solution(SolveStatus.INFEASIBLE).is_feasible
