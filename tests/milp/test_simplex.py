"""Unit and property tests for the pure-Python simplex solver.

The property tests draw random LPs and assert agreement with scipy's
HiGHS on both status and optimal objective value.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.milp import solve_lp_scipy, solve_lp_simplex
from repro.milp.simplex import LPStatus


def solve(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None, lower=None, upper=None):
    c = np.asarray(c, dtype=float)
    n = c.size
    a_ub = np.zeros((0, n)) if a_ub is None else np.asarray(a_ub, dtype=float)
    b_ub = np.zeros(0) if b_ub is None else np.asarray(b_ub, dtype=float)
    a_eq = np.zeros((0, n)) if a_eq is None else np.asarray(a_eq, dtype=float)
    b_eq = np.zeros(0) if b_eq is None else np.asarray(b_eq, dtype=float)
    lower = np.zeros(n) if lower is None else np.asarray(lower, dtype=float)
    upper = np.full(n, np.inf) if upper is None else np.asarray(upper, dtype=float)
    return solve_lp_simplex(c, a_ub, b_ub, a_eq, b_eq, lower, upper)


class TestKnownLPs:
    def test_simple_bounded_maximization(self):
        # min -x - y s.t. x + y <= 4, x <= 3, y <= 2
        result = solve([-1, -1], a_ub=[[1, 1], [1, 0], [0, 1]], b_ub=[4, 3, 2])
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(-4)

    def test_equality_constraint(self):
        result = solve([1, 2], a_eq=[[1, 1]], b_eq=[10])
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(10)
        np.testing.assert_allclose(result.x, [10, 0], atol=1e-7)

    def test_infeasible(self):
        result = solve([1], a_ub=[[1], [-1]], b_ub=[1, -3])  # x <= 1 and x >= 3
        assert result.status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        result = solve([-1])  # min -x, x >= 0 unbounded
        assert result.status is LPStatus.UNBOUNDED

    def test_variable_upper_bounds(self):
        result = solve([-1, -1], upper=[2, 3])
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(-5)

    def test_shifted_lower_bounds(self):
        result = solve([1, 1], lower=[2, 3])
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(5)

    def test_negative_lower_bounds(self):
        result = solve([1], lower=[-5], upper=[5])
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(-5)

    def test_free_variable_with_equality(self):
        # x free, y >= 0: min x s.t. x + y == 2, x >= -7 via x free
        result = solve(
            [1, 0],
            a_eq=[[1, 1]],
            b_eq=[2],
            lower=[-np.inf, 0],
            upper=[np.inf, np.inf],
        )
        assert result.status is LPStatus.UNBOUNDED

    def test_free_variable_bounded_by_rows(self):
        result = solve(
            [1],
            a_ub=[[-1]],
            b_ub=[4],  # -x <= 4  ->  x >= -4
            lower=[-np.inf],
            upper=[np.inf],
        )
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(-4)

    def test_degenerate_does_not_cycle(self):
        # Classic degenerate LP; Bland's rule must terminate.
        result = solve(
            [-0.75, 150, -0.02, 6],
            a_ub=[
                [0.25, -60, -0.04, 9],
                [0.5, -90, -0.02, 3],
                [0, 0, 1, 0],
            ],
            b_ub=[0, 0, 1],
        )
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(-0.05)

    def test_inverted_bounds_infeasible(self):
        result = solve([1], lower=[3], upper=[1])
        assert result.status is LPStatus.INFEASIBLE

    def test_redundant_rows_handled(self):
        result = solve([1, 1], a_eq=[[1, 1], [2, 2]], b_eq=[4, 8])
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(4)

    def test_no_constraints_zero_cost(self):
        result = solve([0, 0])
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(0)


@st.composite
def random_lp(draw):
    """Random LP with bounded variables (so never unbounded)."""
    num_vars = draw(st.integers(1, 5))
    num_rows = draw(st.integers(0, 5))
    ints = st.integers(-6, 6)
    c = [draw(ints) for _ in range(num_vars)]
    a = [[draw(ints) for _ in range(num_vars)] for _ in range(num_rows)]
    b = [draw(st.integers(-10, 20)) for _ in range(num_rows)]
    upper = [draw(st.integers(0, 8)) for _ in range(num_vars)]
    return c, a, b, upper


class TestAgainstScipy:
    @settings(max_examples=120, deadline=None)
    @given(random_lp())
    def test_matches_scipy_on_random_instances(self, lp):
        c, a, b, upper = lp
        n = len(c)
        args = dict(
            c=np.array(c, dtype=float),
            a_ub=np.array(a, dtype=float).reshape(len(b), n),
            b_ub=np.array(b, dtype=float),
            a_eq=np.zeros((0, n)),
            b_eq=np.zeros(0),
            lower=np.zeros(n),
            upper=np.array(upper, dtype=float),
        )
        ours = solve_lp_simplex(**args)
        reference = solve_lp_scipy(**args)
        assert ours.status == reference.status
        if ours.status is LPStatus.OPTIMAL:
            assert ours.objective == pytest.approx(reference.objective, abs=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(random_lp())
    def test_solution_is_feasible(self, lp):
        c, a, b, upper = lp
        n = len(c)
        a_ub = np.array(a, dtype=float).reshape(len(b), n)
        b_ub = np.array(b, dtype=float)
        result = solve_lp_simplex(
            np.array(c, dtype=float), a_ub, b_ub,
            np.zeros((0, n)), np.zeros(0),
            np.zeros(n), np.array(upper, dtype=float),
        )
        if result.status is LPStatus.OPTIMAL:
            x = result.x
            assert (x >= -1e-7).all()
            assert (x <= np.array(upper) + 1e-7).all()
            if len(b):
                assert (a_ub @ x <= b_ub + 1e-6).all()
