"""The native HiGHS MILP backend and the backend dispatch.

The reference branch and bound is the correctness oracle: on every
model the HiGHS tier must agree on the feasibility verdict and (when
optimal) the objective value. It need not return the same *point* on
degenerate optima -- callers canonicalize (see
``tests/core/test_backend_equivalence.py`` for the byte-identity gate).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.milp import (
    BranchBoundOptions,
    LinExpr,
    Model,
    SolveStatus,
    solve_milp,
    solve_milp_highs,
)

from tests.milp.test_branch_bound import brute_force, random_milp


def _knapsack():
    model = Model("knapsack")
    values = [10, 13, 7, 8]
    weights = [3, 4, 2, 3]
    xs = [model.binary_var(f"x{i}") for i in range(4)]
    model.add(LinExpr.total(w * x for w, x in zip(weights, xs)) <= 6)
    model.minimize(LinExpr.total(-v * x for v, x in zip(values, xs)))
    return model, xs


HIGHS = BranchBoundOptions(backend="highs")


class TestHighsBackend:
    def test_knapsack_optimal(self):
        model, _ = _knapsack()
        solution = solve_milp(model, HIGHS)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(-20)
        assert solution.nodes >= 0

    def test_infeasible(self):
        model = Model()
        x = model.binary_var("x")
        model.add(x >= 2)
        solution = solve_milp(model, HIGHS)
        assert solution.status is SolveStatus.INFEASIBLE

    def test_infeasible_integrality(self):
        model = Model()
        x = model.integer_var("x", upper=5)
        model.add(2 * x.to_expr() == 3)
        solution = solve_milp(model, HIGHS)
        assert solution.status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        model = Model()
        y = model.continuous_var("y")  # upper defaults to +inf
        model.minimize(-1 * y)
        solution = solve_milp(model, HIGHS)
        assert solution.status is SolveStatus.UNBOUNDED

    def test_degenerate_ties_agree_on_objective(self):
        # Two symmetric optima: backends may pick either point but must
        # report the same optimal value.
        model = Model()
        a = model.binary_var("a")
        b = model.binary_var("b")
        model.add(a + b == 1)
        model.minimize(a + b)
        reference = solve_milp(model, BranchBoundOptions(backend="reference"))
        highs = solve_milp(model, HIGHS)
        assert reference.status is highs.status is SolveStatus.OPTIMAL
        assert highs.objective == pytest.approx(reference.objective)

    def test_zero_objective_feasibility(self):
        # MILP1 has no objective; the HiGHS tier solves it with a zero
        # objective and any feasible point is optimal.
        model = Model()
        xs = [model.binary_var(f"x{i}") for i in range(6)]
        model.add(LinExpr.total(xs) >= 3)
        solution = solve_milp(
            model, BranchBoundOptions(feasibility_only=True, backend="highs")
        )
        assert solution.status is SolveStatus.OPTIMAL
        assert sum(solution[x] for x in xs) >= 3

    def test_mixed_integer_continuous(self):
        model = Model()
        x = model.integer_var("x", upper=4)
        y = model.continuous_var("y", upper=10)
        model.add(x + y <= 5.5)
        model.minimize(-2 * x - y)
        solution = solve_milp(model, HIGHS)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution[x] == 4
        assert solution.value(y) == pytest.approx(1.5)

    def test_time_limit_still_solves_tiny_model(self):
        # A generous deadline must not change the answer; the status
        # stays OPTIMAL because HiGHS finishes well within it.
        model, _ = _knapsack()
        solution = solve_milp(
            model, BranchBoundOptions(backend="highs", time_limit=30.0)
        )
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(-20)


class TestWarmStart:
    def test_valid_warm_start_preserves_optimum(self):
        model, xs = _knapsack()
        # Feasible but sub-optimal start: item 0 only (value 10).
        warm = {xs[0]: 1.0, xs[1]: 0.0, xs[2]: 0.0, xs[3]: 0.0}
        solution = solve_milp(model, HIGHS, warm_values=warm)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(-20)

    def test_invalid_warm_start_ignored(self):
        model, xs = _knapsack()
        # Violates the weight constraint (3+4+2+3 = 12 > 6): must be
        # rejected by check_point, not corrupt the solve.
        warm = {x: 1.0 for x in xs}
        solution = solve_milp(model, HIGHS, warm_values=warm)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(-20)

    def test_reference_warm_start_prunes_nodes(self):
        model, xs = _knapsack()
        cold = solve_milp(model, BranchBoundOptions(backend="reference"))
        # The optimum itself as a hint: nothing can beat it, so the
        # warm search prunes at least as hard as the cold one.
        warm = {x: cold[x] for x in xs}
        warm_run = solve_milp(
            model, BranchBoundOptions(backend="reference"), warm_values=warm
        )
        assert warm_run.objective == pytest.approx(cold.objective)
        assert warm_run.nodes <= cold.nodes

    def test_feasibility_mode_short_circuits_on_valid_warm(self):
        model = Model()
        xs = [model.binary_var(f"x{i}") for i in range(4)]
        model.add(LinExpr.total(xs) >= 2)
        warm = {xs[0]: 1.0, xs[1]: 1.0, xs[2]: 0.0, xs[3]: 0.0}
        for backend in ("reference", "highs"):
            solution = solve_milp(
                model,
                BranchBoundOptions(feasibility_only=True, backend=backend),
                warm_values=warm,
            )
            assert solution.status is SolveStatus.OPTIMAL
            assert solution.nodes == 0


class TestBackendDispatch:
    def test_unknown_backend_rejected(self):
        with pytest.raises(SolverError):
            BranchBoundOptions(backend="gurobi").resolve_backend()

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_MILP_BACKEND", "highs")
        assert BranchBoundOptions().resolve_backend() == "highs"
        model, _ = _knapsack()
        solution = solve_milp(model)
        assert solution.objective == pytest.approx(-20)

    def test_env_variable_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MILP_BACKEND", "cplex")
        with pytest.raises(SolverError):
            solve_milp(_knapsack()[0])

    def test_explicit_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MILP_BACKEND", "cplex")
        options = BranchBoundOptions(backend="reference")
        assert options.resolve_backend() == "reference"

    def test_direct_highs_entry_point(self):
        model, _ = _knapsack()
        solution = solve_milp_highs(model, BranchBoundOptions())
        assert solution.objective == pytest.approx(-20)


class TestHighsAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(random_milp())
    def test_matches_enumeration(self, milp):
        c, rows, ub = milp
        model = Model()
        xs = [model.integer_var(f"x{i}", upper=u) for i, u in enumerate(ub)]
        for row, rhs in rows:
            model.add(LinExpr.total(a * x for a, x in zip(row, xs)) <= rhs)
        model.minimize(LinExpr.total(ci * x for ci, x in zip(c, xs)))
        solution = solve_milp(model, HIGHS)
        expected = brute_force(c, rows, ub)
        if expected is None:
            assert solution.status is SolveStatus.INFEASIBLE
        else:
            assert solution.status is SolveStatus.OPTIMAL
            assert solution.objective == pytest.approx(expected, abs=1e-6)
            point = [solution[x] for x in xs]
            for row, rhs in rows:
                assert sum(a * v for a, v in zip(row, point)) <= rhs + 1e-6
