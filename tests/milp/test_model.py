"""Unit tests for model assembly and standard-form conversion."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.milp import Model


class TestModelAssembly:
    def test_add_requires_constraint(self):
        model = Model()
        with pytest.raises(ModelError):
            model.add("x <= 1")  # type: ignore[arg-type]

    def test_foreign_variable_rejected(self):
        owner, other = Model("a"), Model("b")
        x = other.binary_var("x")
        with pytest.raises(ModelError):
            owner.add(x <= 1)

    def test_foreign_objective_rejected(self):
        owner, other = Model("a"), Model("b")
        x = other.binary_var("x")
        with pytest.raises(ModelError):
            owner.minimize(x)

    def test_constraint_naming(self):
        model = Model()
        x = model.binary_var("x")
        constraint = model.add(x <= 1, name="cap")
        assert constraint.name == "cap"

    def test_objective_replacement(self):
        model = Model()
        x = model.binary_var("x")
        model.minimize(x)
        model.minimize(2 * x)
        assert model.objective.terms[x] == 2.0

    def test_scalar_objective_allowed(self):
        model = Model()
        model.minimize(0)
        assert model.objective.constant == 0.0


class TestStandardForm:
    def test_le_and_ge_become_ub_rows(self):
        model = Model()
        x = model.continuous_var("x", upper=10)
        y = model.continuous_var("y", upper=10)
        model.add(x + 2 * y <= 4)
        model.add(x - y >= 1)
        form = model.to_standard_form()
        assert form.a_ub.shape == (2, 2)
        np.testing.assert_allclose(form.a_ub[0], [1, 2])
        np.testing.assert_allclose(form.b_ub[0], 4)
        # GE rows are negated into <= form
        np.testing.assert_allclose(form.a_ub[1], [-1, 1])
        np.testing.assert_allclose(form.b_ub[1], -1)

    def test_eq_rows(self):
        model = Model()
        x = model.continuous_var("x")
        model.add(x.to_expr() == 5)
        form = model.to_standard_form()
        assert form.a_eq.shape == (1, 1)
        np.testing.assert_allclose(form.b_eq, [5])

    def test_objective_vector(self):
        model = Model()
        x = model.continuous_var("x")
        y = model.continuous_var("y")
        model.minimize(3 * x - y)
        form = model.to_standard_form()
        np.testing.assert_allclose(form.objective, [3, -1])

    def test_integer_mask(self):
        model = Model()
        model.continuous_var("c")
        model.binary_var("b")
        model.integer_var("i")
        form = model.to_standard_form()
        assert form.integer_mask.tolist() == [False, True, True]

    def test_bound_overrides_tighten_only(self):
        model = Model()
        x = model.integer_var("x", lower=0, upper=10)
        form = model.to_standard_form(bound_overrides={0: (2.0, 12.0)})
        assert form.lower[0] == 2.0
        assert form.upper[0] == 10.0  # cannot loosen past declared bound

    def test_check_assignment_lists_violations(self):
        model = Model()
        x = model.binary_var("x")
        y = model.binary_var("y")
        first = model.add(x + y <= 1, name="cap")
        model.add(x <= 1)
        violations = model.check_assignment({x: 1.0, y: 1.0})
        assert violations == [first]
