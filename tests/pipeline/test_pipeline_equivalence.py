"""The staged pipeline must reproduce the monolithic flow byte-for-byte.

``_monolithic_design`` below is the pre-refactor
``CrossbarSynthesizer.design_from_trace`` body, inlined verbatim against
the core solver functions: windowing, conflict pre-processing, binary
configuration search, binding optimization and the audit, with no
pipeline, no artifact store and no memoization. Every test drives both
implementations and compares the serialized outputs bytewise.
"""

import json

import pytest

from repro.apps import build_application
from repro.apps.synthetic import synthetic_trace
from repro.core import SynthesisConfig
from repro.core.binding import optimize_binding
from repro.core.preprocess import build_conflicts
from repro.core.problem import CrossbarDesignProblem
from repro.core.search import search_minimum_buses
from repro.core.spec import CrossbarDesign
from repro.core.synthesis import CrossbarSynthesizer
from repro.core.validate import audit_binding
from repro.exec import result_to_dict
from repro.exec.serialize import SynthesisResult
from repro.scenarios import ScenarioSuiteRunner, build_suite


def _monolithic_side(problem, config):
    conflicts = build_conflicts(problem, config)
    search = search_minimum_buses(problem, conflicts, config)
    binding = optimize_binding(problem, conflicts, search.num_buses, config)
    audit_binding(
        problem,
        conflicts,
        binding.binding,
        config.max_targets_per_bus,
        raise_on_violation=True,
    )
    return conflicts, search, binding


def _problem_for(trace, window, config):
    if not config.variable_windows:
        return CrossbarDesignProblem.from_trace(trace, window)
    from repro.traffic.qos import phase_aligned_boundaries

    boundaries = phase_aligned_boundaries(
        trace,
        min_window=max(1, window // config.variable_window_ratio),
        max_window=window,
    )
    return CrossbarDesignProblem.from_trace_boundaries(trace, boundaries)


def _monolithic_design(trace, window, config) -> SynthesisResult:
    """The pre-refactor flow, end to end, as a portable result."""
    it_problem = _problem_for(trace, window, config)
    ti_problem = _problem_for(trace.mirrored(), window, config)
    it_conflicts, it_search, it_binding = _monolithic_side(it_problem, config)
    ti_conflicts, ti_search, ti_binding = _monolithic_side(ti_problem, config)
    return SynthesisResult(
        design=CrossbarDesign(it=it_binding, ti=ti_binding, label="windowed"),
        window_size=it_problem.window_size,
        config=config,
        it_conflicts=it_conflicts.num_conflicts,
        ti_conflicts=ti_conflicts.num_conflicts,
        it_probes=dict(it_search.probes),
        ti_probes=dict(ti_search.probes),
    )


def _result_bytes(result: SynthesisResult) -> bytes:
    return json.dumps(result_to_dict(result), sort_keys=True).encode()


def _assert_equivalent(trace, window, config):
    staged = CrossbarSynthesizer(config).design_from_trace(trace, window)
    reference = _monolithic_design(trace, window, config)
    assert _result_bytes(staged.to_result()) == _result_bytes(reference)


class TestSynthesisEquivalence:
    @pytest.mark.parametrize("app_name", ["qsort", "mat1", "fft"])
    def test_seed_apps_byte_identical(self, app_name):
        app = build_application(app_name)
        trace = app.simulate_full_crossbar().trace
        _assert_equivalent(trace, app.default_window, SynthesisConfig())

    def test_synthetic_byte_identical_across_configs(self):
        trace = synthetic_trace(
            burst_cycles=300, total_cycles=12_000, num_initiators=5,
            num_targets=5, seed=7,
        )
        for config in (
            SynthesisConfig(max_targets_per_bus=None),
            SynthesisConfig(max_targets_per_bus=None, overlap_threshold=0.1),
            SynthesisConfig(max_targets_per_bus=3, use_criticality=False),
        ):
            _assert_equivalent(trace, 600, config)

    def test_variable_windows_byte_identical(self):
        trace = synthetic_trace(
            burst_cycles=300, total_cycles=12_000, num_initiators=5,
            num_targets=5, seed=7,
        )
        config = SynthesisConfig(
            max_targets_per_bus=None, variable_windows=True
        )
        _assert_equivalent(trace, 600, config)

    def test_repeated_staged_designs_stay_identical(self):
        """Memoized artifacts must not drift the output across calls."""
        trace = synthetic_trace(
            burst_cycles=300, total_cycles=12_000, num_initiators=5,
            num_targets=5, seed=7,
        )
        synthesizer = CrossbarSynthesizer(
            SynthesisConfig(max_targets_per_bus=None)
        )
        first = synthesizer.design_from_trace(trace, 600)
        second = synthesizer.design_from_trace(trace, 600)
        assert _result_bytes(first.to_result()) == _result_bytes(
            second.to_result()
        )


class TestSuiteEquivalence:
    def test_suite_reports_identical_across_fresh_runners(self):
        """Two cold runners (no shared store) produce byte-identical
        aggregated reports -- the staged flow is deterministic."""
        suite = build_suite("smoke")
        first = ScenarioSuiteRunner().run(suite)
        second = ScenarioSuiteRunner().run(suite)
        first_bytes = json.dumps(first.to_dict(), sort_keys=True).encode()
        second_bytes = json.dumps(second.to_dict(), sort_keys=True).encode()
        assert first_bytes == second_bytes

    def test_suite_individuals_match_monolithic_flow(self):
        """Each scenario's individual optimum equals the pre-refactor
        per-scenario synthesis."""
        suite = build_suite("smoke")
        report = ScenarioSuiteRunner().run(suite)
        for outcome in report.outcomes:
            trace = outcome.scenario.build_trace()
            reference = _monolithic_design(
                trace,
                outcome.window_size,
                outcome.individual.config,
            )
            assert _result_bytes(outcome.individual) == _result_bytes(reference)
