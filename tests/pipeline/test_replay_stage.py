"""The latency-replay stage and the windowed-tensor npz sidecars."""

import numpy as np
import pytest

from repro.core import SynthesisConfig
from repro.exec import ResultCache
from repro.pipeline import (
    ArtifactStore,
    PipelineRunner,
    ReplayArtifact,
)
from repro.pipeline import shm
from repro.platform import TraceDrivenInitiator
from repro.apps.synthetic import synthetic_trace

CONFIG = SynthesisConfig(max_targets_per_bus=None)


@pytest.fixture(scope="module")
def trace():
    return synthetic_trace(
        burst_cycles=300, total_cycles=10_000, num_initiators=4,
        num_targets=4, seed=9,
    )


@pytest.fixture(scope="module")
def design(trace):
    return PipelineRunner().design(trace, CONFIG, 500).design


class TestReplayStage:
    def test_replay_produces_latency_statistics(self, trace, design):
        runner = PipelineRunner()
        artifact = runner.replay(TraceDrivenInitiator(trace), design)
        assert artifact.num_transactions == len(trace)
        assert artifact.stats.count == len(trace)
        assert artifact.stats.mean > 0
        assert artifact.finished

    def test_replay_is_memoized(self, trace, design):
        runner = PipelineRunner()
        driver = TraceDrivenInitiator(trace)
        first = runner.replay(driver, design)
        second = runner.replay(driver, design)
        assert first is second
        assert runner.counters.computed.get("replay") == 1
        assert runner.counters.memo_hits.get("replay") == 1

    def test_replay_persists_across_runners(self, trace, design, tmp_path):
        cold = PipelineRunner(
            store=ArtifactStore(disk=ResultCache(tmp_path / "cache"))
        )
        driver = TraceDrivenInitiator(trace)
        first = cold.replay(driver, design)

        warm = PipelineRunner(
            store=ArtifactStore(disk=ResultCache(tmp_path / "cache"))
        )
        second = warm.replay(driver, design)
        assert warm.counters.disk_hits.get("replay") == 1
        assert "replay" not in warm.counters.computed
        assert second.to_payload() == first.to_payload()

    def test_different_designs_do_not_share_replays(self, trace, design):
        from repro.core import shared_bus_design

        runner = PipelineRunner()
        driver = TraceDrivenInitiator(trace)
        a = runner.replay(driver, design)
        b = runner.replay(driver, shared_bus_design(trace))
        assert a.fingerprint != b.fingerprint
        assert runner.counters.computed.get("replay") == 2

    def test_payload_round_trips(self, trace, design):
        runner = PipelineRunner()
        artifact = runner.replay(TraceDrivenInitiator(trace), design)
        rebuilt = ReplayArtifact.from_payload(
            artifact.to_payload(), artifact.fingerprint
        )
        assert rebuilt == artifact

    def test_malformed_payload_is_a_miss(self, trace, design, tmp_path):
        cold = PipelineRunner(
            store=ArtifactStore(disk=ResultCache(tmp_path / "cache"))
        )
        driver = TraceDrivenInitiator(trace)
        artifact = cold.replay(driver, design)

        warm_store = ArtifactStore(disk=ResultCache(tmp_path / "cache"))
        warm_store.put_payload(artifact.fingerprint, {"stats": "garbage"})
        warm = PipelineRunner(store=warm_store)
        recomputed = warm.replay(driver, design)
        assert warm.counters.computed.get("replay") == 1
        assert recomputed.to_payload() == artifact.to_payload()


class TestWindowSidecars:
    def test_fresh_runner_rebuilds_window_from_npz(self, trace, tmp_path):
        cache = tmp_path / "cache"
        cold = PipelineRunner(store=ArtifactStore(disk=ResultCache(cache)))
        original = cold.window(cold.collect(trace), CONFIG, 500, mirrored=False)
        assert list(cache.glob("stage-*.npz"))

        # These tests target the *disk* rebuild path; drop the shared
        # plane's offer of the cold artifact so the warm runner cannot
        # shortcut through it.
        shm.reset_plane()
        warm = PipelineRunner(store=ArtifactStore(disk=ResultCache(cache)))
        rebuilt = warm.window(
            warm.collect(trace), CONFIG, 500, mirrored=False
        )
        assert warm.counters.disk_hits.get("window") == 1
        assert "window" not in warm.counters.computed
        assert np.array_equal(rebuilt.problem.comm, original.problem.comm)
        assert np.array_equal(rebuilt.problem.wo, original.problem.wo)
        assert np.array_equal(
            rebuilt.problem.capacities, original.problem.capacities
        )
        assert rebuilt.problem.window_size == original.problem.window_size
        assert rebuilt.problem.target_names == original.problem.target_names
        assert (
            rebuilt.problem.criticality == original.problem.criticality
        )

    def test_sidecar_solve_matches_recomputed_solve(self, trace, tmp_path):
        """A binding solved on the rebuilt problem is byte-identical."""
        cache = tmp_path / "cache"
        cold = PipelineRunner(store=ArtifactStore(disk=ResultCache(cache)))
        collected = cold.collect(trace)
        windowed = cold.window(collected, CONFIG, 500, mirrored=False)
        conflicts = cold.conflicts(windowed, CONFIG)
        reference = cold.bind(windowed, conflicts, CONFIG)

        shm.reset_plane()  # force the disk rebuild path (see above)
        rebuilt = PipelineRunner(
            store=ArtifactStore(disk=ResultCache(cache)),
            memoize_bindings=False,
        )
        windowed2 = rebuilt.window(
            rebuilt.collect(trace), CONFIG, 500, mirrored=False
        )
        assert rebuilt.counters.disk_hits.get("window") == 1
        conflicts2 = rebuilt.conflicts(windowed2, CONFIG)
        solved = rebuilt.bind(windowed2, conflicts2, CONFIG)
        assert solved.binding == reference.binding
        assert solved.search == reference.search

    def test_mirrored_flag_mismatch_is_a_miss(self, trace, tmp_path):
        """A sidecar for the other crossbar side must not be served."""
        cache = tmp_path / "cache"
        cold = PipelineRunner(store=ArtifactStore(disk=ResultCache(cache)))
        it_side = cold.window(cold.collect(trace), CONFIG, 500, mirrored=False)

        # Forge a sidecar collision: copy the IT arrays under a fake
        # fingerprint, then ask for a mirrored window at that key.
        from repro.pipeline.runner import _window_arrays, _window_from_arrays

        arrays = _window_arrays(it_side)
        assert _window_from_arrays(arrays, "fp", mirrored=True) is None
        assert _window_from_arrays(arrays, "fp", mirrored=False) is not None

    def test_cache_clear_removes_sidecars(self, trace, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = PipelineRunner(store=ArtifactStore(disk=cache))
        runner.window(runner.collect(trace), CONFIG, 500, mirrored=False)
        assert list((tmp_path / "cache").glob("stage-*.npz"))
        assert cache.usage().entries > 0
        cache.clear()
        assert cache.usage().entries == 0
        assert not list((tmp_path / "cache").glob("stage-*.npz"))

    def test_corrupt_sidecar_degrades_to_recompute(self, trace, tmp_path):
        cache = tmp_path / "cache"
        cold = PipelineRunner(store=ArtifactStore(disk=ResultCache(cache)))
        original = cold.window(
            cold.collect(trace), CONFIG, 500, mirrored=False
        )
        for sidecar in cache.glob("stage-*.npz"):
            sidecar.write_bytes(b"not an npz archive")

        # Corruption must actually be *read*: drop the plane offer and
        # the mmap tier so the warm runner reaches the npz sidecar.
        shm.reset_plane()
        import shutil

        for tier in cache.glob("stage-*.mmap"):
            shutil.rmtree(tier)
        warm = PipelineRunner(store=ArtifactStore(disk=ResultCache(cache)))
        rebuilt = warm.window(
            warm.collect(trace), CONFIG, 500, mirrored=False
        )
        assert warm.counters.computed.get("window") == 1
        assert np.array_equal(rebuilt.problem.comm, original.problem.comm)
