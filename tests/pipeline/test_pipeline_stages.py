"""Stage artifact, fingerprint and store semantics."""

import pytest

from repro.core import SynthesisConfig
from repro.exec import ResultCache
from repro.pipeline import (
    ArtifactStore,
    BindingArtifact,
    PipelineRunner,
    stage_fingerprint,
)
from repro.apps.synthetic import synthetic_trace

CONFIG = SynthesisConfig(max_targets_per_bus=None)


@pytest.fixture(scope="module")
def trace():
    return synthetic_trace(
        burst_cycles=300, total_cycles=10_000, num_initiators=4,
        num_targets=4, seed=5,
    )


class TestFingerprints:
    def test_deterministic(self):
        a = stage_fingerprint("window", "abc", {"window_size": 100})
        b = stage_fingerprint("window", "abc", {"window_size": 100})
        assert a == b

    def test_sensitive_to_stage_upstream_and_spec(self):
        base = stage_fingerprint("window", "abc", {"window_size": 100})
        assert stage_fingerprint("conflicts", "abc", {"window_size": 100}) != base
        assert stage_fingerprint("window", "abd", {"window_size": 100}) != base
        assert stage_fingerprint("window", "abc", {"window_size": 200}) != base

    def test_config_slices_ignore_unrelated_fields(self, trace):
        """A threshold change must not invalidate windowing artifacts."""
        runner = PipelineRunner()
        collected = runner.collect(trace)
        low = runner.window(collected, SynthesisConfig(overlap_threshold=0.1),
                            500, mirrored=False)
        high = runner.window(collected, SynthesisConfig(overlap_threshold=0.4),
                             500, mirrored=False)
        assert low.fingerprint == high.fingerprint
        assert runner.counters.memo_hits.get("window") == 1

    def test_equal_traces_share_collection_artifact(self):
        kwargs = dict(
            burst_cycles=300, total_cycles=10_000, num_initiators=4,
            num_targets=4, seed=5,
        )
        runner = PipelineRunner()
        first = runner.collect(synthetic_trace(**kwargs))
        second = runner.collect(synthetic_trace(**kwargs))
        assert first.fingerprint == second.fingerprint
        assert runner.counters.memo_hits.get("collect") == 1


class TestRunnerMemoization:
    def test_repeat_design_is_fully_memoized(self, trace):
        runner = PipelineRunner()
        first = runner.design(trace, CONFIG, 500)
        computed = dict(runner.counters.computed)
        second = runner.design(trace, CONFIG, 500)
        assert second.design == first.design
        assert runner.counters.computed == computed  # nothing re-ran
        assert runner.counters.memo_hits.get("bind") == 2

    def test_threshold_change_reuses_windows_not_conflicts(self, trace):
        runner = PipelineRunner()
        runner.design(trace, SynthesisConfig(max_targets_per_bus=None), 500)
        runner.design(
            trace,
            SynthesisConfig(max_targets_per_bus=None, overlap_threshold=0.1),
            500,
        )
        assert runner.counters.computed.get("window") == 2  # it + ti, once
        assert runner.counters.memo_hits.get("window") == 2
        assert runner.counters.computed.get("conflicts") == 4  # re-ran

    def test_shared_runner_never_memoizes_bindings(self, trace):
        from repro.pipeline import shared_runner

        runner = shared_runner()
        assert runner.memoize_bindings is False
        before = runner.counters.computed.get("bind", 0)
        runner.design(trace, CONFIG, 500)
        runner.design(trace, CONFIG, 500)
        assert runner.counters.computed.get("bind", 0) == before + 4

    def test_shared_runner_never_retains_traces(self, trace):
        """The global store must not pin callers' traces in memory;
        downstream sharing keys off the content fingerprint instead."""
        from repro.pipeline import CollectedTraffic, shared_runner

        runner = shared_runner()
        assert runner.retain_traces is False
        runner.design(trace, CONFIG, 500)
        held = [
            artifact
            for artifact in runner.store._memory.values()
            if isinstance(artifact, CollectedTraffic)
        ]
        assert held == []
        # ... while windowing artifacts still share across designs:
        before = runner.counters.memo_hits.get("window", 0)
        runner.design(trace, CONFIG, 500)
        assert runner.counters.memo_hits.get("window", 0) == before + 2


class TestArtifactStore:
    def test_lru_eviction(self):
        store = ArtifactStore(max_memory_entries=2)
        store.put("a", 1)
        store.put("b", 2)
        assert store.get("a") == 1  # refreshes 'a'
        store.put("c", 3)
        assert store.get("b") is None  # 'b' was the least recently used
        assert store.get("a") == 1
        assert store.get("c") == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ArtifactStore(max_memory_entries=0)

    def test_reserve_grows_but_never_shrinks(self):
        store = ArtifactStore(max_memory_entries=2)
        store.reserve(10)
        assert store.max_memory_entries == 10
        store.reserve(4)
        assert store.max_memory_entries == 10

    def test_payload_round_trip_via_disk(self, tmp_path):
        store = ArtifactStore(disk=ResultCache(tmp_path / "cache"))
        store.put_payload("f" * 8, {"x": 1})
        assert store.get_payload("f" * 8) == {"x": 1}
        assert ArtifactStore(
            disk=ResultCache(tmp_path / "cache")
        ).get_payload("f" * 8) == {"x": 1}

    def test_payload_without_disk_is_noop(self):
        store = ArtifactStore()
        store.put_payload("abc", {"x": 1})
        assert store.get_payload("abc") is None


class TestBindingPersistence:
    def test_binding_artifact_round_trips(self, trace):
        runner = PipelineRunner()
        collected = runner.collect(trace)
        side = runner.design_side(collected, CONFIG, 500, mirrored=False)
        artifact = side.binding
        rebuilt = BindingArtifact.from_payload(
            artifact.to_payload(), artifact.fingerprint
        )
        assert rebuilt == artifact

    def test_disk_layer_skips_solves_across_runners(self, trace, tmp_path):
        from repro.core import SOLVE_COUNTER

        cache = tmp_path / "cache"
        cold = PipelineRunner(store=ArtifactStore(disk=ResultCache(cache)))
        first = cold.design(trace, CONFIG, 500)

        warm = PipelineRunner(store=ArtifactStore(disk=ResultCache(cache)))
        SOLVE_COUNTER.reset()
        second = warm.design(trace, CONFIG, 500)
        assert SOLVE_COUNTER.total == 0
        assert warm.counters.disk_hits.get("bind") == 2
        assert second.design == first.design
        assert second.it.binding == first.it.binding
        assert second.ti.binding == first.ti.binding

    def test_corrupt_stage_entry_recomputed(self, trace, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = PipelineRunner(store=ArtifactStore(disk=ResultCache(cache_dir)))
        first = cold.design(trace, CONFIG, 500)
        for entry in cache_dir.glob("*.json"):
            entry.write_text('{"format": "repro-stage-artifact-v1", '
                             '"payload": {"search": {}}}', encoding="utf-8")
        warm = PipelineRunner(store=ArtifactStore(disk=ResultCache(cache_dir)))
        second = warm.design(trace, CONFIG, 500)
        assert warm.counters.computed.get("bind") == 2  # recomputed cleanly
        assert second.design == first.design
