"""Warm-start re-solves through the pipeline's hint slot.

Editing a suite's traffic (correctly) misses the content-addressed
binding artifact, but the warm-hint slot -- keyed by problem shape and
binding configuration only -- still holds the previous solve's binding.
The re-solve seeds from it, explores fewer branch-and-bound nodes than
a cold solve of the same edited traffic, and still produces
byte-identical artifacts (hints are advisory; canonicalization makes
outcomes hint-independent).
"""

import json

import pytest

from repro.core import SynthesisConfig
from repro.obs import metrics as _metrics
from repro.pipeline import PipelineRunner
from repro.pipeline.artifacts import warm_hint_key
from repro.traffic import TrafficTrace

from tests.traffic.conftest import make_record

WINDOW = 100


def _trace(shift):
    """Six targets, two activity phases; ``shift`` perturbs durations so
    edited variants change traffic content without changing shape."""
    activity = [
        [(0, 60 + shift), (200, 60)],
        [(100, 60), (300, 60 + shift)],
        [(0, 30), (210, 30 + shift)],
        [(110, 30 + shift), (310, 30)],
        [(40, 20), (260, 20 + shift)],
        [(140, 20 + shift), (360, 20)],
    ]
    records = []
    for target, spans in enumerate(activity):
        for start, duration in spans:
            records.append(
                make_record(
                    initiator=0, target=target, start=start, duration=duration
                )
            )
    horizon = max([400] + [record.complete for record in records])
    return TrafficTrace(records, 1, len(activity), total_cycles=horizon)


def _nodes_total():
    counter = _metrics.REGISTRY.get("repro_solver_nodes_total")
    return counter.value() if counter is not None else 0.0


def _bind(runner, trace, config):
    collected = runner.collect(trace)
    windowed = runner.window(collected, config, WINDOW, mirrored=False)
    conflicts = runner.conflicts(windowed, config)
    return runner.bind(windowed, conflicts, config), windowed


@pytest.fixture
def config():
    return SynthesisConfig(backend="milp", milp_backend="reference")


class TestWarmHintSlot:
    def test_bind_populates_the_hint_slot(self, config):
        runner = PipelineRunner()
        artifact, windowed = _bind(runner, _trace(0), config)
        key = warm_hint_key("bind", windowed.problem, config)
        assert tuple(runner.store.get_warm(key)) == artifact.binding.binding

    def test_hint_slot_disabled_without_memoization(self, config):
        runner = PipelineRunner(memoize_bindings=False)
        _, windowed = _bind(runner, _trace(0), config)
        key = warm_hint_key("bind", windowed.problem, config)
        assert runner.store.get_warm(key) is None

    def test_hint_key_ignores_traffic_content(self, config):
        a = PipelineRunner()
        b = PipelineRunner()
        _, windowed_a = _bind(a, _trace(0), config)
        _, windowed_b = _bind(b, _trace(5), config)
        assert windowed_a.fingerprint != windowed_b.fingerprint
        assert warm_hint_key(
            "bind", windowed_a.problem, config
        ) == warm_hint_key("bind", windowed_b.problem, config)


class TestEditedSuiteResolve:
    def test_warm_resolve_explores_fewer_nodes(self, config):
        # Cold baseline: the edited traffic solved with no prior state.
        cold_runner = PipelineRunner()
        begin = _nodes_total()
        cold_artifact, _ = _bind(cold_runner, _trace(5), config)
        cold_nodes = _nodes_total() - begin
        assert cold_nodes > 0

        # Warm: solve the original, then the edit on the same runner.
        warm_runner = PipelineRunner()
        _bind(warm_runner, _trace(0), config)
        begin = _nodes_total()
        warm_artifact, _ = _bind(warm_runner, _trace(5), config)
        warm_nodes = _nodes_total() - begin

        # The edit missed the artifact cache (it re-solved) ...
        assert warm_runner.counters.computed.get("bind") == 2
        # ... with strictly fewer branch-and-bound nodes than cold ...
        assert warm_nodes < cold_nodes
        # ... and byte-identical artifacts.
        warm_bytes = json.dumps(
            warm_artifact.to_payload(), sort_keys=True
        ).encode()
        cold_bytes = json.dumps(
            cold_artifact.to_payload(), sort_keys=True
        ).encode()
        assert warm_bytes == cold_bytes

    def test_disk_hits_refresh_the_hint_slot(self, config, tmp_path):
        from repro.exec import ResultCache
        from repro.pipeline.store import ArtifactStore

        cache_dir = tmp_path / "cache"
        cold = PipelineRunner(store=ArtifactStore(ResultCache(cache_dir)))
        artifact, windowed = _bind(cold, _trace(0), config)

        # A fresh process over the same cache dir: the binding is served
        # from disk, and the hint slot is primed for future edits.
        fresh = PipelineRunner(store=ArtifactStore(ResultCache(cache_dir)))
        served, _ = _bind(fresh, _trace(0), config)
        assert fresh.counters.disk_hits.get("bind") == 1
        key = warm_hint_key("bind", windowed.problem, config)
        assert tuple(fresh.store.get_warm(key)) == artifact.binding.binding
        assert served.to_payload() == artifact.to_payload()
