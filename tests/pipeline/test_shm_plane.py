"""Chaos and concurrency suite for the shared stage plane.

The plane (:mod:`repro.pipeline.shm`) is an accelerator, never a
correctness layer. These tests hammer its concurrency (many processes
mapping one segment, fork *and* spawn), its failure modes (torn
manifests, vanished segments, manifests that lie about sizes, truncated
mmap members) and its one hard invariant: synthesis results are
byte-identical with the plane enabled, disabled, or falling back
mid-flight.
"""

import json
import multiprocessing as mp
import os
import shutil
import time

import numpy as np
import pytest

from repro.apps.synthetic import synthetic_trace
from repro.core import SynthesisConfig
from repro.exec import ResultCache
from repro.pipeline import ArtifactStore, PipelineRunner
from repro.pipeline import shm
from repro.pipeline.runner import _window_arrays

CONFIG = SynthesisConfig(max_targets_per_bus=None)


@pytest.fixture(scope="module")
def trace():
    return synthetic_trace(
        burst_cycles=200, total_cycles=6_000, num_initiators=4,
        num_targets=4, seed=17,
    )


def _arrays():
    return {
        "comm": np.arange(24.0).reshape(2, 3, 4),
        "wo": np.ones((3, 4), dtype=np.int64),
        "caps": np.array([7.5, 2.25]),
    }


def _digest(arrays):
    """An order-stable, process-portable content digest of ``arrays``."""
    return {
        name: (arr.dtype.str, tuple(arr.shape), float(np.asarray(arr).sum()))
        for name, arr in sorted(arrays.items())
    }


# -- pool worker entry points (module level: spawn must pickle them) ---


def _worker_lookup(fingerprint):
    arrays = shm.lookup_arrays(fingerprint)
    return None if arrays is None else _digest(arrays)


def _worker_attach_count(_):
    return shm.attach_from_env()


def _worker_write_probe(fingerprint):
    arrays = shm.lookup_arrays(fingerprint)
    if arrays is None:
        return "miss"
    try:
        arrays["comm"][0] = 0.0
    except ValueError:
        return "read-only"
    return "writable"


def _worker_solve_from_segment(fingerprint):
    arrays = shm.lookup_arrays(fingerprint)
    if arrays is None:
        return None
    from repro.pipeline.runner import _window_from_arrays

    rebuilt = _window_from_arrays(arrays, fingerprint, mirrored=False)
    runner = PipelineRunner(memoize_bindings=False)
    solved = runner.bind(
        rebuilt, runner.conflicts(rebuilt, CONFIG), CONFIG
    )
    return solved.binding


class TestOffersRegistry:
    def test_offer_and_local_hit(self):
        sentinel = object()
        shm.offer("fp-a", sentinel, _arrays)
        assert shm.lookup_artifact("fp-a") is sentinel
        assert shm.lookup_artifact("fp-missing") is None
        events = shm.plane_summary()["events"]
        assert events.get("offer") == 1
        assert events.get("local_hit") == 1

    def test_registry_is_lru_bounded(self):
        for i in range(50):
            shm.offer(f"fp-{i}", i, _arrays)
        summary = shm.plane_summary()
        assert summary["offers"] <= 32
        assert shm.lookup_artifact("fp-0") is None     # evicted
        assert shm.lookup_artifact("fp-49") == 49      # retained

    def test_disabled_plane_is_inert(self):
        try:
            shm.set_enabled(False)
            shm.offer("fp-b", object(), _arrays)
            assert shm.lookup_artifact("fp-b") is None
            assert shm.lookup_arrays("fp-b") is None
            assert shm.plane_summary()["offers"] == 0
        finally:
            shm.set_enabled(True)


class TestSegmentPlane:
    def test_fork_workers_read_one_segment(self):
        """N fork processes map the same published segment and all see
        byte-identical tensors."""
        source = _arrays()
        shm.offer("fp-seg", object(), lambda: source)
        with shm.propagate_plane():
            assert os.environ.get(shm.SHM_ENV_VAR)
            with mp.get_context("fork").Pool(4) as pool:
                digests = pool.map(_worker_lookup, ["fp-seg"] * 8)
        assert all(d == _digest(source) for d in digests)
        assert shm.plane_summary()["events"].get("publish") == 1

    def test_spawn_workers_inherit_via_env(self):
        """Spawn workers share nothing but the environment -- the
        ``REPRO_SHM`` handshake alone must carry the plane across."""
        source = _arrays()
        shm.offer("fp-spawn", object(), lambda: source)
        with shm.propagate_plane():
            with mp.get_context("spawn").Pool(2) as pool:
                digests = pool.map(_worker_lookup, ["fp-spawn"] * 2)
        assert digests == [_digest(source)] * 2

    def test_worker_attach_probe_counts_segments(self):
        shm.offer("fp-probe", object(), _arrays)
        with shm.propagate_plane():
            with mp.get_context("fork").Pool(2) as pool:
                counts = pool.map(_worker_attach_count, range(2))
        assert counts == [1, 1]

    def test_owner_does_not_self_attach(self):
        """The publishing process answers segment lookups with ``None``
        (it serves in-process hits from the offers registry instead)."""
        shm.offer("fp-own", object(), _arrays)
        with shm.propagate_plane():
            assert shm.lookup_arrays("fp-own") is None

    def test_torn_manifest_degrades_to_miss(self, monkeypatch):
        shm.offer("fp-torn", object(), _arrays)
        with shm.propagate_plane():
            monkeypatch.setenv(shm.SHM_ENV_VAR, "{not json at all")
            with mp.get_context("fork").Pool(2) as pool:
                digests = pool.map(_worker_lookup, ["fp-torn"] * 2)
        assert digests == [None, None]

    def test_vanished_segment_is_a_miss(self, monkeypatch):
        manifest = {
            "version": 1,
            "segments": {
                "fp-gone": {
                    "name": "repro-chaos-does-not-exist",
                    "arrays": [
                        {"name": "x", "dtype": "<f8", "shape": [2],
                         "offset": 0},
                    ],
                },
            },
        }
        monkeypatch.setenv(shm.SHM_ENV_VAR, json.dumps(manifest))
        assert shm.lookup_arrays("fp-gone") is None
        assert shm.plane_summary()["events"].get("fallback", 0) >= 1

    def test_manifest_lying_about_shape_is_a_miss(self, monkeypatch):
        """A manifest claiming more bytes than the segment holds must
        fail the bounds check, not SIGBUS."""
        shm.offer("fp-lie", object(), _arrays)
        with shm.propagate_plane():
            raw = json.loads(os.environ[shm.SHM_ENV_VAR])
            entry = json.loads(json.dumps(raw["segments"]["fp-lie"]))
            entry["arrays"][0]["shape"] = [10_000, 10_000]
            # Re-key the tampered entry so the owner-guard (which only
            # covers the process's own fingerprints) does not mask it.
            raw["segments"]["fp-tampered"] = entry
            monkeypatch.setenv(
                shm.SHM_ENV_VAR, json.dumps(raw, sort_keys=True)
            )
            assert shm.lookup_arrays("fp-tampered") is None
            assert shm.plane_summary()["events"].get("fallback", 0) >= 1

    def test_segment_views_are_read_only(self):
        source = _arrays()
        shm.offer("fp-ro", object(), lambda: source)
        with shm.propagate_plane():
            with mp.get_context("fork").Pool(1) as pool:
                result = pool.apply(_worker_write_probe, ("fp-ro",))
        assert result == "read-only"

    def test_plane_disable_env_propagates(self):
        """``--no-shm`` must hold across every start method: the
        exported disable flag beats an inherited manifest."""
        shm.offer("fp-off", object(), _arrays)
        try:
            with shm.propagate_plane():
                shm.set_enabled(False)
                with mp.get_context("fork").Pool(1) as pool:
                    digest = pool.apply(_worker_lookup, ("fp-off",))
            assert digest is None
        finally:
            shm.set_enabled(True)


class TestByteIdentity:
    """Reports must not depend on which tier served the tensors."""

    def _design(self, trace):
        runner = PipelineRunner()
        art = runner.design(trace, CONFIG, 500)
        return art.design, runner.counters.snapshot()

    def test_shm_hit_yields_identical_tensors(self, trace):
        cold = PipelineRunner()
        original = cold.window(cold.collect(trace), CONFIG, 500,
                               mirrored=False)
        warm = PipelineRunner()
        shared = warm.window(warm.collect(trace), CONFIG, 500,
                             mirrored=False)
        assert warm.counters.shm_hits.get("window") == 1
        assert "window" not in warm.counters.computed
        for name, arr in _window_arrays(original).items():
            np.testing.assert_array_equal(
                arr, _window_arrays(shared)[name]
            )

    def test_design_identical_enabled_disabled_midfallback(
        self, trace, monkeypatch
    ):
        enabled_design, _ = self._design(trace)

        shm.reset_plane()
        try:
            shm.set_enabled(False)
            disabled_design, counters = self._design(trace)
            assert not counters["shm_hits"]  # plane truly bypassed
        finally:
            shm.set_enabled(True)

        # Mid-fallback: the plane is on, but every segment lookup hits
        # a torn manifest and every offer has vanished.
        shm.reset_plane()
        monkeypatch.setenv(shm.SHM_ENV_VAR, "][ torn mid-handshake")
        fallback_design, _ = self._design(trace)

        assert enabled_design == disabled_design == fallback_design

    def test_rehydrated_segment_solves_identically(self, trace):
        """A binding solved from segment-rehydrated tensors matches the
        directly-computed one bit for bit."""
        cold = PipelineRunner()
        collected = cold.collect(trace)
        windowed = cold.window(collected, CONFIG, 500, mirrored=False)
        conflicts = cold.conflicts(windowed, CONFIG)
        reference = cold.bind(windowed, conflicts, CONFIG)

        source = _window_arrays(windowed)
        shm.reset_plane()
        shm.offer(windowed.fingerprint, object(), lambda: source)
        with shm.propagate_plane():
            with mp.get_context("fork").Pool(1) as pool:
                remote = pool.apply(
                    _worker_solve_from_segment, (windowed.fingerprint,)
                )
        assert remote == reference.binding


class TestMmapTier:
    def test_put_creates_tier_and_get_maps_it(self, tmp_path):
        store = ArtifactStore(disk=ResultCache(tmp_path))
        source = _arrays()
        store.put_arrays("fp", source)
        tier = tmp_path / "stage-fp.mmap"
        assert tier.is_dir()
        loaded = store.get_arrays("fp")
        assert loaded is not None
        for name, arr in source.items():
            np.testing.assert_array_equal(loaded[name], arr)
            assert isinstance(loaded[name], np.memmap)

    def test_put_skips_reserialize_when_sidecar_exists(
        self, tmp_path, monkeypatch
    ):
        store = ArtifactStore(disk=ResultCache(tmp_path))
        store.put_arrays("fp", _arrays())

        def _boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("re-serialized an existing sidecar")

        monkeypatch.setattr(np, "savez_compressed", _boom)
        store.put_arrays("fp", _arrays())  # must not re-serialize
        assert store.get_arrays("fp") is not None

    def test_truncated_member_heals_from_npz(self, tmp_path):
        store = ArtifactStore(disk=ResultCache(tmp_path))
        source = _arrays()
        store.put_arrays("fp", source)
        member = next((tmp_path / "stage-fp.mmap").glob("*.npy"))
        member.write_bytes(member.read_bytes()[:8])

        loaded = store.get_arrays("fp")      # npz tier heals the tear
        assert loaded is not None
        for name, arr in source.items():
            np.testing.assert_array_equal(loaded[name], arr)
        # ... and the tier was rebuilt from the compressed copy.
        assert (tmp_path / "stage-fp.mmap").is_dir()

    def test_corrupt_npz_is_unlinked_for_rewrite(self, tmp_path):
        store = ArtifactStore(disk=ResultCache(tmp_path))
        store.put_arrays("fp", _arrays())
        shutil.rmtree(tmp_path / "stage-fp.mmap")
        (tmp_path / "stage-fp.npz").write_bytes(b"rotten")
        assert store.get_arrays("fp") is None
        # The rotten file must not shadow the next write-through.
        assert not (tmp_path / "stage-fp.npz").exists()
        store.put_arrays("fp", _arrays())
        assert store.get_arrays("fp") is not None


class TestCacheAccounting:
    def test_usage_counts_mmap_tier_dirs(self, tmp_path):
        cache = ResultCache(tmp_path)
        store = ArtifactStore(disk=cache)
        store.put_arrays("fp", _arrays())
        usage = cache.usage()
        assert usage.entries == 2            # npz file + mmap dir
        member_bytes = sum(
            f.stat().st_size
            for f in (tmp_path / "stage-fp.mmap").glob("*.npy")
        )
        assert usage.total_bytes >= member_bytes

    def test_prune_evicts_mmap_tier_dirs(self, tmp_path):
        cache = ResultCache(tmp_path)
        store = ArtifactStore(disk=cache)
        store.put_arrays("fp", _arrays())
        cache.prune(max_bytes=0)
        assert cache.usage().entries == 0
        assert not (tmp_path / "stage-fp.mmap").exists()

    def test_orphan_sweep_reaps_torn_tier_writes(self, tmp_path):
        cache = ResultCache(tmp_path)
        torn = tmp_path / ".tmp-abc123.mmap"
        torn.mkdir()
        (torn / "comm.npy").write_bytes(b"partial")
        old = time.time() - 2 * 3600
        os.utime(torn, (old, old))
        assert cache.sweep_orphans() >= 1
        assert not torn.exists()
