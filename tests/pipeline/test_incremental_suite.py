"""Incremental suite re-synthesis (the PR's acceptance criterion).

Editing one scenario of a >= 4-scenario suite and re-running
``ScenarioSuiteRunner.run`` on the *same* runner must re-execute only
that scenario's per-scenario stages -- trace build, windowing, conflict
pre-processing, individual solve -- plus the suite-level merge solve,
and still produce a report byte-identical to a cold run of the edited
suite.
"""

import json

import pytest

from repro.core import SOLVE_COUNTER
from repro.scenarios import (
    Scenario,
    ScenarioSuite,
    ScenarioSuiteRunner,
    build_suite,
)


def _edit_scenario(suite: ScenarioSuite, index: int, **param_overrides):
    """A copy of ``suite`` with one scenario's params changed."""
    scenarios = list(suite.scenarios)
    payload = scenarios[index].to_dict()
    payload["params"] = {**payload["params"], **param_overrides}
    scenarios[index] = Scenario.from_dict(payload)
    return ScenarioSuite(
        name=suite.name,
        scenarios=tuple(scenarios),
        description=suite.description,
    )


@pytest.fixture(scope="module")
def suite():
    built = build_suite("smoke")
    assert len(built) >= 4  # the acceptance criterion's floor
    return built


class TestIncrementalResynthesis:
    def test_identical_rerun_recomputes_nothing(self, suite):
        runner = ScenarioSuiteRunner()
        cold = runner.run(suite)
        SOLVE_COUNTER.reset()
        warm = runner.run(suite)
        assert SOLVE_COUNTER.total == 0
        assert runner.last_run_breakdown["computed"] == {}
        assert warm.to_dict() == cold.to_dict()

    def test_one_edit_reexecutes_only_that_scenario(self, suite):
        runner = ScenarioSuiteRunner()
        SOLVE_COUNTER.reset()
        runner.run(suite)
        cold_solves = SOLVE_COUNTER.total

        edited = _edit_scenario(suite, 1, seed=97)
        SOLVE_COUNTER.reset()
        warm_report = runner.run(edited)
        warm_solves = SOLVE_COUNTER.total

        # Strictly fewer solves than cold: only the edited scenario's
        # individual solve plus the merged robust solve re-ran.
        assert 0 < warm_solves < cold_solves

        computed = runner.last_run_breakdown["computed"]
        memo = runner.last_run_breakdown["memo_hits"]
        others = len(suite) - 1
        # Per-scenario stages: exactly one scenario re-executed ...
        assert computed.get("scenario-trace") == 1
        assert computed.get("window") == 2  # its IT + TI sides
        assert computed.get("conflicts") == 2
        assert computed.get("individual-solve") == 1
        # ... every other scenario was served from the store ...
        assert memo.get("scenario-trace") == others
        assert memo.get("window") == 2 * others
        assert memo.get("conflicts") == 2 * others
        assert memo.get("individual-solve") == others
        # ... and the suite-level merge re-solved both crossbar sides.
        assert computed.get("bind-merged") == 2

        # The incremental report is identical to a cold run of the
        # edited suite.
        cold_report = ScenarioSuiteRunner().run(edited)
        warm_bytes = json.dumps(warm_report.to_dict(), sort_keys=True).encode()
        cold_bytes = json.dumps(cold_report.to_dict(), sort_keys=True).encode()
        assert warm_bytes == cold_bytes

    def test_weight_edit_reuses_all_analyses(self, suite):
        """Weight changes rebuild no traces and re-solve no individuals
        (the weight feeds only the merge policy)."""
        runner = ScenarioSuiteRunner()
        runner.run(suite)
        scenarios = list(suite.scenarios)
        payload = scenarios[0].to_dict()
        payload["weight"] = payload["weight"] + 1.0
        scenarios[0] = Scenario.from_dict(payload)
        reweighted = ScenarioSuite(
            name=suite.name, scenarios=tuple(scenarios),
            description=suite.description,
        )
        SOLVE_COUNTER.reset()
        report = runner.run(reweighted)
        computed = runner.last_run_breakdown["computed"]
        assert "scenario-trace" not in computed
        assert "window" not in computed
        assert "individual-solve" not in computed
        assert SOLVE_COUNTER.total == 0  # union policy ignores weights
        assert report.to_dict() == ScenarioSuiteRunner().run(reweighted).to_dict()

    def test_incremental_path_shares_disk_cache_across_processes_shape(
        self, suite, tmp_path
    ):
        """A fresh runner over the same cache directory serves the
        merged solves from persisted stage entries (zero solves)."""
        from repro.exec import ExecutionEngine, ResultCache

        cache_dir = tmp_path / "cache"
        cold = ScenarioSuiteRunner(
            engine=ExecutionEngine(jobs=1, cache=ResultCache(cache_dir))
        )
        cold_report = cold.run(suite)

        warm = ScenarioSuiteRunner(
            engine=ExecutionEngine(jobs=1, cache=ResultCache(cache_dir))
        )
        SOLVE_COUNTER.reset()
        warm_report = warm.run(suite)
        assert SOLVE_COUNTER.total == 0
        assert warm.last_run_breakdown["disk_hits"].get("bind-merged") == 2
        assert warm_report.to_dict() == cold_report.to_dict()
