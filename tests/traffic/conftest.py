"""Shared fixtures and helpers for traffic-layer tests."""

import pytest

from repro.traffic import TraceRecord, TrafficTrace, TransactionKind


def make_record(
    initiator=0,
    target=0,
    start=0,
    duration=4,
    kind=TransactionKind.WRITE,
    burst=2,
    critical=False,
    stream="",
    response=1,
):
    """A well-formed record whose IT activity spans [start, start+duration)."""
    it_release = start + duration
    return TraceRecord(
        initiator=initiator,
        target=target,
        kind=kind,
        burst=burst,
        issue=start,
        it_grant=start,
        it_release=it_release,
        service_start=it_release,
        service_end=it_release,
        ti_grant=it_release,
        ti_release=it_release + response,
        complete=it_release + response,
        critical=critical,
        stream=stream,
    )


@pytest.fixture
def simple_trace():
    """Three targets with known, partially overlapping activity.

    target 0: [0, 10) and [20, 30)
    target 1: [5, 15)
    target 2: [40, 50), critical
    """
    records = [
        make_record(initiator=0, target=0, start=0, duration=10),
        make_record(initiator=0, target=0, start=20, duration=10),
        make_record(initiator=1, target=1, start=5, duration=10),
        make_record(initiator=1, target=2, start=40, duration=10, critical=True),
    ]
    return TrafficTrace(
        records, num_initiators=2, num_targets=3, total_cycles=60
    )
