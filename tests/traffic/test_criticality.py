"""Unit tests for real-time stream analysis."""

from repro.traffic import TrafficTrace, WindowedTraffic, analyze_criticality

from tests.traffic.conftest import make_record


def windowed(records, num_targets, total=100, ws=25, num_initiators=2):
    trace = TrafficTrace(records, num_initiators, num_targets, total_cycles=total)
    return WindowedTraffic(trace, window_size=ws)


class TestCriticalityAnalysis:
    def test_no_critical_traffic(self):
        report = analyze_criticality(
            windowed([make_record(target=0, start=0, duration=10)], 2)
        )
        assert report.critical_targets == ()
        assert not report.has_conflicts

    def test_single_critical_target_has_no_conflicts(self):
        report = analyze_criticality(
            windowed(
                [make_record(target=0, start=0, duration=10, critical=True)], 2
            )
        )
        assert report.critical_targets == (0,)
        assert not report.has_conflicts

    def test_overlapping_critical_streams_conflict(self):
        records = [
            make_record(initiator=0, target=0, start=0, duration=20, critical=True),
            make_record(initiator=1, target=1, start=10, duration=20, critical=True),
        ]
        report = analyze_criticality(windowed(records, 2))
        assert report.critical_targets == (0, 1)
        assert report.conflicting_pairs == ((0, 1),)
        assert report.has_conflicts

    def test_disjoint_critical_streams_do_not_conflict(self):
        records = [
            make_record(initiator=0, target=0, start=0, duration=10, critical=True),
            make_record(initiator=1, target=1, start=50, duration=10, critical=True),
        ]
        report = analyze_criticality(windowed(records, 2))
        assert report.critical_targets == (0, 1)
        assert not report.has_conflicts

    def test_non_critical_overlap_is_ignored(self):
        records = [
            make_record(initiator=0, target=0, start=0, duration=20, critical=True),
            # heavy non-critical overlap with target 1's critical window
            make_record(initiator=0, target=1, start=0, duration=20),
            make_record(initiator=1, target=1, start=60, duration=10, critical=True),
        ]
        report = analyze_criticality(windowed(records, 2))
        # critical portions ([0,20) on t0 vs [60,70) on t1) never overlap
        assert not report.has_conflicts

    def test_three_way_conflicts_enumerated_pairwise(self):
        records = [
            make_record(initiator=0, target=t, start=0, duration=30, critical=True)
            for t in range(3)
        ]
        report = analyze_criticality(windowed(records, 3))
        assert set(report.conflicting_pairs) == {(0, 1), (0, 2), (1, 2)}
