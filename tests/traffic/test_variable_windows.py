"""Tests for variable-size windows and phase-aligned boundaries."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError, WindowError
from repro.traffic import (
    PairwiseOverlap,
    TrafficTrace,
    WindowedTraffic,
    phase_aligned_boundaries,
)
from repro.traffic.intervals import coverage_in_bins, normalize, total_length

from tests.traffic.conftest import make_record
from tests.traffic.test_intervals import raw_intervals
from tests.traffic.test_windows import random_trace


class TestCoverageInBins:
    def test_known_values(self):
        cover = coverage_in_bins([(2, 12)], [0, 5, 8, 20])
        assert cover.tolist() == [3, 3, 4]

    def test_interval_on_edge(self):
        cover = coverage_in_bins([(5, 8)], [0, 5, 8, 20])
        assert cover.tolist() == [0, 3, 0]

    def test_out_of_range_rejected(self):
        with pytest.raises(TraceError):
            coverage_in_bins([(0, 25)], [0, 5, 20])

    def test_non_increasing_edges_rejected(self):
        with pytest.raises(TraceError):
            coverage_in_bins([], [0, 5, 5])

    def test_too_few_edges_rejected(self):
        with pytest.raises(TraceError):
            coverage_in_bins([], [0])

    @given(raw_intervals(max_coord=199), st.lists(
        st.integers(1, 199), min_size=1, max_size=8, unique=True
    ))
    def test_sum_preserved_and_bounded(self, intervals, inner_edges):
        norm = normalize(intervals)
        edges = [0] + sorted(inner_edges) + [200]
        cover = coverage_in_bins(norm, edges)
        assert int(cover.sum()) == total_length(norm)
        widths = np.diff(edges)
        assert (cover <= widths).all()
        assert (cover >= 0).all()


class TestWindowedTrafficBoundaries:
    def trace(self):
        records = [
            make_record(target=0, start=0, duration=30),
            make_record(target=1, start=50, duration=40),
        ]
        return TrafficTrace(records, 1, 2, total_cycles=100)

    def test_variable_capacities(self):
        windowed = WindowedTraffic(self.trace(), boundaries=[0, 40, 100])
        assert windowed.num_windows == 2
        assert windowed.capacities.tolist() == [40, 60]
        assert windowed.window_size == 60  # the largest capacity
        assert not windowed.is_uniform
        assert windowed.comm[0].tolist() == [30, 0]
        assert windowed.comm[1].tolist() == [0, 40]

    def test_bandwidth_bound_uses_per_window_capacity(self):
        # two concurrent 30-cycle streams: 60 cycles of demand fit a
        # single 100-cycle window, but not a 40-cycle one.
        records = [
            make_record(initiator=0, target=0, start=0, duration=30),
            make_record(initiator=0, target=1, start=10, duration=30),
        ]
        trace = TrafficTrace(records, 1, 2, total_cycles=100)
        loose = WindowedTraffic(trace, boundaries=[0, 100])
        assert loose.min_buses_bandwidth_bound() == 1
        tight = WindowedTraffic(trace, boundaries=[0, 40, 100])
        assert tight.min_buses_bandwidth_bound() == 2

    def test_uniform_equivalence(self):
        uniform = WindowedTraffic(self.trace(), window_size=50)
        explicit = WindowedTraffic(self.trace(), boundaries=[0, 50, 100])
        assert np.array_equal(uniform.comm, explicit.comm)
        assert uniform.min_buses_bandwidth_bound() == (
            explicit.min_buses_bandwidth_bound()
        )

    def test_overlap_respects_boundaries(self):
        records = [
            make_record(initiator=0, target=0, start=0, duration=60),
            make_record(initiator=0, target=1, start=30, duration=60),
        ]
        trace = TrafficTrace(records, 1, 2, total_cycles=100)
        windowed = WindowedTraffic(trace, boundaries=[0, 30, 60, 100])
        overlap = PairwiseOverlap(windowed)
        assert overlap.wo[0, 1].tolist() == [0, 30, 0]

    def test_bad_boundaries_rejected(self):
        trace = self.trace()
        with pytest.raises(WindowError):
            WindowedTraffic(trace, boundaries=[10, 50, 100])  # not from 0
        with pytest.raises(WindowError):
            WindowedTraffic(trace, boundaries=[0, 50, 50, 100])  # flat step
        with pytest.raises(WindowError):
            WindowedTraffic(trace, boundaries=[0, 50])  # does not cover
        with pytest.raises(WindowError):
            WindowedTraffic(trace, window_size=10, boundaries=[0, 100])

    def test_window_size_still_required_without_boundaries(self):
        with pytest.raises(WindowError):
            WindowedTraffic(self.trace())

    @settings(max_examples=25)
    @given(random_trace())
    def test_comm_invariants_with_variable_windows(self, trace):
        third = max(1, trace.total_cycles // 3)
        boundaries = [0, third, 2 * third, trace.total_cycles]
        windowed = WindowedTraffic(trace, boundaries=boundaries)
        comm = windowed.comm
        assert (comm >= 0).all()
        assert (comm <= windowed.capacities).all()
        for target in range(trace.num_targets):
            assert comm[target].sum() == trace.target_busy_cycles(target)


class TestPhaseAlignedBoundaries:
    def bursty_trace(self):
        records = []
        for phase in range(4):
            start = phase * 1_000
            records.append(make_record(target=0, start=start, duration=300))
        return TrafficTrace(records, 1, 1, total_cycles=4_000)

    def test_covers_whole_trace(self):
        trace = self.bursty_trace()
        edges = phase_aligned_boundaries(trace, min_window=50, max_window=800)
        assert edges[0] == 0
        assert edges[-1] == trace.total_cycles
        assert all(a < b for a, b in zip(edges, edges[1:]))

    def test_boundaries_land_on_phase_edges(self):
        trace = self.bursty_trace()
        edges = phase_aligned_boundaries(trace, min_window=50, max_window=800)
        # burst edges [1000, 2000, 3000] separate idle gaps; the record
        # activity ends at start + 300 so those points must be edges
        for burst_start in (1_000, 2_000, 3_000):
            assert burst_start in edges

    def test_window_size_bounds_respected(self):
        trace = self.bursty_trace()
        min_window, max_window = 100, 600
        edges = phase_aligned_boundaries(
            trace, min_window=min_window, max_window=max_window
        )
        widths = [b - a for a, b in zip(edges, edges[1:])]
        assert all(width >= min_window for width in widths[:-1])
        assert all(width <= max_window + min_window for width in widths)

    def test_feeds_windowed_traffic(self):
        trace = self.bursty_trace()
        edges = phase_aligned_boundaries(trace, min_window=50, max_window=800)
        windowed = WindowedTraffic(trace, boundaries=edges)
        assert windowed.comm.sum() == trace.target_busy_cycles(0)

    def test_bad_bounds_rejected(self):
        with pytest.raises(WindowError):
            phase_aligned_boundaries(self.bursty_trace(), min_window=0)
        with pytest.raises(WindowError):
            phase_aligned_boundaries(
                self.bursty_trace(), min_window=100, max_window=50
            )

    @settings(max_examples=20)
    @given(random_trace())
    def test_properties_on_random_traces(self, trace):
        edges = phase_aligned_boundaries(
            trace, min_window=10, max_window=80, min_gap=8
        )
        assert edges[0] == 0
        assert edges[-1] == trace.total_cycles
        widths = np.diff(edges)
        assert (widths > 0).all()
        windowed = WindowedTraffic(trace, boundaries=edges)
        for target in range(trace.num_targets):
            assert windowed.comm[target].sum() == trace.target_busy_cycles(
                target
            )
