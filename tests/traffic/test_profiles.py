"""Extended workload profiles: shapes, determinism, load scaling."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.traffic import (
    HotspotTrafficConfig,
    PipelineTrafficConfig,
    PoissonTrafficConfig,
    WindowedTraffic,
    generate_hotspot_trace,
    generate_pipeline_trace,
    generate_poisson_trace,
    scaled_config,
    thin_trace,
)

SMALL = {"num_initiators": 4, "num_targets": 4, "total_cycles": 10_000}

GENERATORS = [
    (HotspotTrafficConfig, generate_hotspot_trace),
    (PoissonTrafficConfig, generate_poisson_trace),
    (PipelineTrafficConfig, generate_pipeline_trace),
]


@pytest.mark.parametrize("config_cls,generate", GENERATORS)
class TestCommonProperties:
    def test_records_fit_the_simulation_period(self, config_cls, generate):
        trace = generate(config_cls(**SMALL))
        assert len(trace) > 0
        assert all(rec.complete <= trace.total_cycles for rec in trace.records)

    def test_deterministic_given_seed(self, config_cls, generate):
        first = generate(config_cls(**SMALL, seed=5))
        second = generate(config_cls(**SMALL, seed=5))
        assert first.records == second.records

    def test_different_seeds_differ(self, config_cls, generate):
        a = generate(config_cls(**SMALL, seed=1))
        b = generate(config_cls(**SMALL, seed=2))
        assert a.records != b.records

    def test_immune_to_global_rng_state(self, config_cls, generate):
        first = generate(config_cls(**SMALL, seed=5))
        random.seed(0xBEEF)
        second = generate(config_cls(**SMALL, seed=5))
        assert first.records == second.records

    def test_flows_through_windowing(self, config_cls, generate):
        trace = generate(config_cls(**SMALL))
        windowed = WindowedTraffic(trace, window_size=500)
        assert windowed.comm.sum() > 0

    def test_critical_targets_flagged(self, config_cls, generate):
        trace = generate(config_cls(**SMALL, critical_targets=(1,)))
        assert trace.critical_targets() == [1]


class TestHotspot:
    def test_hotspot_targets_receive_extra_traffic(self):
        config = HotspotTrafficConfig(
            **SMALL, hotspot_targets=(0,), hotspot_fraction=0.8, seed=3
        )
        trace = generate_hotspot_trace(config)
        per_target = [len(trace.records_to_target(t)) for t in range(4)]
        assert per_target[0] > max(per_target[1:])

    def test_fraction_zero_is_private_traffic_only(self):
        config = HotspotTrafficConfig(
            **SMALL, hotspot_targets=(0,), hotspot_fraction=0.0, seed=3
        )
        trace = generate_hotspot_trace(config)
        assert all(rec.target == rec.initiator % 4 for rec in trace.records)

    def test_out_of_range_hotspot_rejected(self):
        with pytest.raises(ConfigurationError):
            HotspotTrafficConfig(**SMALL, hotspot_targets=(9,)).validate()

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            HotspotTrafficConfig(**SMALL, hotspot_fraction=1.5).validate()


class TestPoisson:
    def test_rate_scales_traffic_volume(self):
        low = generate_poisson_trace(PoissonTrafficConfig(**SMALL, rate=0.001))
        high = generate_poisson_trace(PoissonTrafficConfig(**SMALL, rate=0.01))
        assert len(high) > len(low)

    def test_packets_never_overlap_per_initiator(self):
        trace = generate_poisson_trace(
            PoissonTrafficConfig(**SMALL, rate=0.05, seed=2)
        )
        for initiator in range(4):
            records = trace.records_from_initiator(initiator)
            for before, after in zip(records, records[1:]):
                assert after.issue >= before.it_release

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonTrafficConfig(**SMALL, rate=0.0).validate()


class TestPipeline:
    def test_stages_write_to_successor_memory(self):
        trace = generate_pipeline_trace(PipelineTrafficConfig(**SMALL))
        assert all(
            rec.target == (rec.initiator + 1) % 4 for rec in trace.records
        )

    def test_later_stages_start_later_in_the_frame(self):
        config = PipelineTrafficConfig(**SMALL, slot_jitter=0, stage_lag=500)
        trace = generate_pipeline_trace(config)
        starts = {
            initiator: trace.records_from_initiator(initiator)[0].issue
            for initiator in range(config.num_initiators)
            if trace.records_from_initiator(initiator)
        }
        assert starts[1] - starts[0] == 500

    def test_frame_shorter_than_period_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineTrafficConfig(
                num_initiators=2, num_targets=2, total_cycles=100,
                frame_cycles=5_000,
            ).validate()

    def test_slot_overflowing_its_frame_rejected(self):
        """A slot longer than the frame would make one initiator emit
        time-overlapping packets (impossible traffic)."""
        with pytest.raises(ConfigurationError):
            PipelineTrafficConfig(
                **SMALL, frame_cycles=1_000, slot_cycles=1_500
            ).validate()
        with pytest.raises(ConfigurationError):
            PipelineTrafficConfig(
                **SMALL, frame_cycles=1_000, slot_cycles=950, slot_jitter=100
            ).validate()

    def test_no_initiator_overlaps_itself(self):
        trace = generate_pipeline_trace(PipelineTrafficConfig(**SMALL))
        for initiator in range(4):
            records = trace.records_from_initiator(initiator)
            for before, after in zip(records, records[1:]):
                assert after.issue >= before.it_release


class TestLoadScaling:
    def test_scale_one_is_identity(self):
        config = PoissonTrafficConfig(**SMALL)
        assert scaled_config(config, 1.0) is config

    @pytest.mark.parametrize("config_cls,generate", GENERATORS)
    def test_higher_scale_means_more_packets(self, config_cls, generate):
        config = config_cls(**SMALL)
        light = generate(scaled_config(config, 0.5))
        heavy = generate(scaled_config(config, 2.0))
        assert len(heavy) > len(light)

    def test_pipeline_scaling_saturates_at_the_frame(self):
        """Slots grow until they (plus jitter) fill the frame; the
        scaled config must always remain valid."""
        config = PipelineTrafficConfig(**SMALL, frame_cycles=4_000,
                                       slot_cycles=1_500, slot_jitter=64)
        saturated = scaled_config(config, 100.0)
        saturated.validate()
        assert saturated.slot_cycles == 4_000 - 64

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            scaled_config(PoissonTrafficConfig(**SMALL), 0.0)

    def test_unknown_config_type_rejected(self):
        with pytest.raises(ConfigurationError):
            scaled_config(object(), 2.0)


class TestThinTrace:
    def test_keeps_roughly_the_requested_fraction(self):
        trace = generate_poisson_trace(PoissonTrafficConfig(**SMALL, rate=0.02))
        thinned = thin_trace(trace, 0.5, seed=1)
        assert 0.3 * len(trace) < len(thinned) < 0.7 * len(trace)

    def test_deterministic(self):
        trace = generate_poisson_trace(PoissonTrafficConfig(**SMALL))
        assert thin_trace(trace, 0.5, seed=3).records == (
            thin_trace(trace, 0.5, seed=3).records
        )

    def test_full_fraction_returns_same_trace(self):
        trace = generate_poisson_trace(PoissonTrafficConfig(**SMALL))
        assert thin_trace(trace, 1.0) is trace

    def test_bad_fraction_rejected(self):
        trace = generate_poisson_trace(PoissonTrafficConfig(**SMALL))
        with pytest.raises(ConfigurationError):
            thin_trace(trace, 0.0)
