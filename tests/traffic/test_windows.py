"""Unit and property tests for window segmentation (comm[i][m])."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WindowError
from repro.traffic import TrafficTrace, WindowedTraffic

from tests.traffic.conftest import make_record


class TestWindowGeometry:
    def test_window_count_ceils(self, simple_trace):
        windowed = WindowedTraffic(simple_trace, window_size=25)
        assert windowed.num_windows == 3  # 60 cycles / 25 -> 3 windows

    def test_window_larger_than_trace_is_clamped(self, simple_trace):
        windowed = WindowedTraffic(simple_trace, window_size=10_000)
        assert windowed.window_size == simple_trace.total_cycles
        assert windowed.num_windows == 1

    def test_zero_window_rejected(self, simple_trace):
        with pytest.raises(WindowError):
            WindowedTraffic(simple_trace, window_size=0)

    def test_explicit_num_windows_must_cover(self, simple_trace):
        with pytest.raises(WindowError):
            WindowedTraffic(simple_trace, window_size=25, num_windows=2)


class TestCommMatrix:
    def test_known_values(self, simple_trace):
        windowed = WindowedTraffic(simple_trace, window_size=20)
        # target 0 active [0,10) and [20,30): windows of 20 cycles
        assert windowed.comm[0].tolist() == [10, 10, 0]
        # target 1 active [5,15)
        assert windowed.comm[1].tolist() == [10, 0, 0]
        # target 2 active [40,50)
        assert windowed.comm[2].tolist() == [0, 0, 10]

    def test_row_sums_equal_busy_cycles(self, simple_trace):
        windowed = WindowedTraffic(simple_trace, window_size=7)
        for target in range(simple_trace.num_targets):
            assert windowed.comm[target].sum() == simple_trace.target_busy_cycles(
                target
            )

    def test_entries_bounded_by_window_size(self, simple_trace):
        windowed = WindowedTraffic(simple_trace, window_size=7)
        assert (windowed.comm <= 7).all()
        assert (windowed.comm >= 0).all()

    def test_single_window_degenerates_to_average(self, simple_trace):
        windowed = WindowedTraffic(simple_trace, window_size=60)
        assert windowed.comm[:, 0].tolist() == [20, 10, 10]

    def test_critical_comm_counts_only_critical(self, simple_trace):
        windowed = WindowedTraffic(simple_trace, window_size=20)
        assert windowed.critical_comm[0].sum() == 0
        assert windowed.critical_comm[2].sum() == 10

    def test_utilization_in_unit_range(self, simple_trace):
        windowed = WindowedTraffic(simple_trace, window_size=20)
        util = windowed.utilization()
        assert (util >= 0).all() and (util <= 1).all()
        assert util[0, 0] == pytest.approx(0.5)


class TestBandwidthBound:
    def test_bound_counts_concurrent_demand(self, simple_trace):
        # Window 20: targets 0 and 1 together need 20 cycles in window 0 ->
        # fits one bus; bound stays 1.
        windowed = WindowedTraffic(simple_trace, window_size=20)
        assert windowed.min_buses_bandwidth_bound() == 1

    def test_bound_exceeds_one_when_demand_does(self):
        records = [
            make_record(initiator=0, target=0, start=0, duration=10),
            make_record(initiator=1, target=1, start=0, duration=10),
        ]
        trace = TrafficTrace(records, 2, 2, total_cycles=12)
        windowed = WindowedTraffic(trace, window_size=12)
        # 20 cycles of demand in a 12-cycle window -> at least 2 buses.
        assert windowed.min_buses_bandwidth_bound() == 2

    def test_windows_exceeding(self, simple_trace):
        windowed = WindowedTraffic(simple_trace, window_size=20)
        assert windowed.windows_exceeding(0, 0.25).tolist() == [0, 1]
        assert windowed.windows_exceeding(0, 0.5).tolist() == []
        with pytest.raises(WindowError):
            windowed.windows_exceeding(9, 0.5)


@st.composite
def random_trace(draw):
    """A trace with random disjoint-per-target record placement."""
    num_targets = draw(st.integers(1, 4))
    total_cycles = draw(st.integers(50, 300))
    records = []
    for target in range(num_targets):
        cursor = draw(st.integers(0, 10))
        for _ in range(draw(st.integers(0, 6))):
            duration = draw(st.integers(1, 20))
            if cursor + duration + 2 > total_cycles:
                break
            records.append(
                make_record(target=target, start=cursor, duration=duration, response=1)
            )
            cursor += duration + draw(st.integers(1, 15))
    return TrafficTrace(records, 1, num_targets, total_cycles=total_cycles)


class TestCommProperties:
    @settings(max_examples=40)
    @given(random_trace(), st.integers(1, 100))
    def test_comm_invariants_hold_for_any_window_size(self, trace, window_size):
        windowed = WindowedTraffic(trace, window_size=window_size)
        comm = windowed.comm
        assert comm.shape == (trace.num_targets, windowed.num_windows)
        assert (comm >= 0).all()
        assert (comm <= windowed.window_size).all()
        for target in range(trace.num_targets):
            assert comm[target].sum() == trace.target_busy_cycles(target)

    @settings(max_examples=25)
    @given(random_trace(), st.integers(1, 50), st.integers(1, 6))
    def test_bandwidth_bound_monotone_under_nested_refinement(
        self, trace, fine_ws, factor
    ):
        # When fine windows tile coarse windows exactly, refining the
        # analysis can only reveal more peaks, never fewer buses: the
        # coarse demand is the sum of at most `factor` fine demands.
        fine = WindowedTraffic(trace, window_size=fine_ws)
        coarse = WindowedTraffic(
            trace, window_size=min(fine.window_size * factor, trace.total_cycles)
        )
        if coarse.window_size % fine.window_size == 0:
            assert (
                fine.min_buses_bandwidth_bound()
                >= coarse.min_buses_bandwidth_bound()
            )
