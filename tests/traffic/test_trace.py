"""Unit tests for the TrafficTrace container."""

import pytest

from repro.errors import TraceError
from repro.traffic import TrafficTrace

from tests.traffic.conftest import make_record


class TestTrafficTraceConstruction:
    def test_rejects_out_of_range_target(self):
        with pytest.raises(TraceError):
            TrafficTrace([make_record(target=3)], 1, 3, total_cycles=100)

    def test_rejects_out_of_range_initiator(self):
        with pytest.raises(TraceError):
            TrafficTrace([make_record(initiator=2)], 2, 1, total_cycles=100)

    def test_rejects_record_beyond_period(self):
        with pytest.raises(TraceError):
            TrafficTrace([make_record(start=95, duration=10)], 1, 1, total_cycles=100)

    def test_rejects_empty_platform(self):
        with pytest.raises(TraceError):
            TrafficTrace([], 0, 1, total_cycles=10)

    def test_rejects_bad_name_lengths(self):
        with pytest.raises(TraceError):
            TrafficTrace([], 1, 2, total_cycles=10, target_names=["only-one"])

    def test_default_names(self):
        trace = TrafficTrace([], 2, 3, total_cycles=10)
        assert trace.target_names == ["t0", "t1", "t2"]
        assert trace.initiator_names == ["i0", "i1"]

    def test_records_sorted_by_issue(self):
        records = [
            make_record(start=50, duration=2),
            make_record(start=10, duration=2),
        ]
        trace = TrafficTrace(records, 1, 1, total_cycles=100)
        issues = [rec.issue for rec in trace.records]
        assert issues == sorted(issues)


class TestTrafficTraceQueries:
    def test_activity_merges_contiguous_packets(self, simple_trace):
        assert simple_trace.target_activity(0) == [(0, 10), (20, 30)]

    def test_busy_cycles(self, simple_trace):
        assert simple_trace.target_busy_cycles(0) == 20
        assert simple_trace.target_busy_cycles(1) == 10

    def test_records_filtering(self, simple_trace):
        assert len(simple_trace.records_to_target(0)) == 2
        assert len(simple_trace.records_from_initiator(1)) == 2

    def test_critical_targets(self, simple_trace):
        assert simple_trace.critical_targets() == [2]

    def test_critical_only_activity(self, simple_trace):
        assert simple_trace.target_activity(2, critical_only=True) == [(40, 50)]
        assert simple_trace.target_activity(0, critical_only=True) == []

    def test_latencies(self, simple_trace):
        assert len(simple_trace.latencies()) == len(simple_trace)
        assert all(lat > 0 for lat in simple_trace.latencies())

    def test_out_of_range_queries_rejected(self, simple_trace):
        with pytest.raises(TraceError):
            simple_trace.target_activity(7)
        with pytest.raises(TraceError):
            simple_trace.initiator_activity(5)


class TestMirroredTrace:
    def test_roles_swap(self, simple_trace):
        mirror = simple_trace.mirrored()
        assert mirror.num_targets == simple_trace.num_initiators
        assert mirror.num_initiators == simple_trace.num_targets
        assert mirror.target_names == simple_trace.initiator_names

    def test_mirror_activity_is_response_traffic(self, simple_trace):
        mirror = simple_trace.mirrored()
        # Initiator 0's responses: records at [10, 11) and [30, 31).
        assert mirror.target_activity(0) == [(10, 11), (30, 31)]

    def test_mirror_preserves_record_count_and_criticality(self, simple_trace):
        mirror = simple_trace.mirrored()
        assert len(mirror) == len(simple_trace)
        assert mirror.critical_targets() == [1]  # initiator 1 carried critical
