"""Equivalence tests: columnar kernels vs the interval-list reference.

The vectorized kernels in :mod:`repro.traffic.kernels` promise
byte-identical results to the legacy pure-Python path (per-target
:func:`normalize`, per-pair :func:`intersect`, per-interval binning).
These property tests drive both implementations over randomized traces --
varied platform sizes, record counts, critical mixes, overlapping and
zero-length records, uniform and variable window geometries -- and
assert exact equality for ``comm``, ``critical_comm``, ``wo`` and the
conflict matrix.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CrossbarDesignProblem, SynthesisConfig, build_conflicts
from repro.traffic import (
    PairwiseOverlap,
    TraceAnalytics,
    TrafficTrace,
    WindowedTraffic,
    analyze_criticality,
)
from repro.traffic.overlap import legacy_overlap_tensor
from repro.traffic.windows import legacy_comm_matrix

from tests.traffic.conftest import make_record


# -- randomized traces -------------------------------------------------


@st.composite
def kernel_trace(draw):
    """A trace with overlapping, critical-mixed, possibly empty records."""
    num_targets = draw(st.integers(1, 6))
    num_initiators = draw(st.integers(1, 3))
    total_cycles = draw(st.integers(20, 400))
    records = []
    for _ in range(draw(st.integers(0, 40))):
        start = draw(st.integers(0, total_cycles - 2))
        duration = draw(
            st.integers(0, min(30, total_cycles - 1 - start))
        )  # zero-length records exercise the empty-occupancy path
        records.append(
            make_record(
                initiator=draw(st.integers(0, num_initiators - 1)),
                target=draw(st.integers(0, num_targets - 1)),
                start=start,
                duration=duration,
                critical=draw(st.booleans()),
                response=1,
            )
        )
    return TrafficTrace(
        records, num_initiators, num_targets, total_cycles=total_cycles
    )


@st.composite
def trace_with_boundaries(draw):
    """A random trace plus valid variable-window edges covering it."""
    trace = draw(kernel_trace())
    interior = draw(
        st.lists(
            st.integers(1, trace.total_cycles - 1),
            max_size=6,
            unique=True,
        )
        if trace.total_cycles > 1
        else st.just([])
    )
    overshoot = draw(st.integers(0, 25))
    edges = [0, *sorted(interior), trace.total_cycles + overshoot]
    return trace, edges


# -- comm / critical_comm ----------------------------------------------


class TestCommEquivalence:
    @settings(max_examples=60)
    @given(kernel_trace(), st.integers(1, 120))
    def test_uniform_windows(self, trace, window_size):
        windowed = WindowedTraffic(trace, window_size=window_size)
        assert np.array_equal(windowed.comm, legacy_comm_matrix(windowed))
        assert np.array_equal(
            windowed.critical_comm,
            legacy_comm_matrix(windowed, critical_only=True),
        )

    @settings(max_examples=20)
    @given(kernel_trace(), st.integers(1, 40), st.integers(1, 4))
    def test_extra_empty_windows(self, trace, window_size, extra):
        """``num_windows`` beyond the covering count adds zero columns."""
        import math

        derived = math.ceil(trace.total_cycles / min(window_size, trace.total_cycles))
        windowed = WindowedTraffic(
            trace, window_size=window_size, num_windows=derived + extra
        )
        assert windowed.comm.shape[1] == derived + extra
        assert np.array_equal(windowed.comm, legacy_comm_matrix(windowed))
        assert windowed.comm[:, derived:].sum() == 0

    @settings(max_examples=40)
    @given(trace_with_boundaries())
    def test_variable_windows(self, trace_and_edges):
        trace, edges = trace_and_edges
        windowed = WindowedTraffic(trace, boundaries=edges)
        assert np.array_equal(windowed.comm, legacy_comm_matrix(windowed))
        assert np.array_equal(
            windowed.critical_comm,
            legacy_comm_matrix(windowed, critical_only=True),
        )


# -- wo ----------------------------------------------------------------


class TestOverlapEquivalence:
    @settings(max_examples=60)
    @given(kernel_trace(), st.integers(1, 120))
    def test_uniform_windows(self, trace, window_size):
        windowed = WindowedTraffic(trace, window_size=window_size)
        for critical_only in (False, True):
            overlap = PairwiseOverlap(windowed, critical_only=critical_only)
            assert np.array_equal(
                overlap.wo,
                legacy_overlap_tensor(windowed, critical_only=critical_only),
            )

    @settings(max_examples=40)
    @given(trace_with_boundaries())
    def test_variable_windows(self, trace_and_edges):
        trace, edges = trace_and_edges
        windowed = WindowedTraffic(trace, boundaries=edges)
        for critical_only in (False, True):
            overlap = PairwiseOverlap(windowed, critical_only=critical_only)
            assert np.array_equal(
                overlap.wo,
                legacy_overlap_tensor(windowed, critical_only=critical_only),
            )


# -- conflict matrix and criticality -----------------------------------


def reference_conflicts(problem, config):
    """The original pair-loop pre-processing, kept as test ground truth."""
    num_targets = problem.num_targets
    capacities = problem.capacities
    matrix = np.zeros((num_targets, num_targets), dtype=bool)
    reasons = {}

    def mark(i, j, rule):
        pair = (min(i, j), max(i, j))
        matrix[i, j] = matrix[j, i] = True
        reasons.setdefault(pair, set()).add(rule)

    threshold_cycles = config.overlap_threshold * capacities
    for i in range(num_targets):
        for j in range(i + 1, num_targets):
            if (problem.wo[i, j] > threshold_cycles).any():
                mark(i, j, "threshold")
            if (problem.comm[i] + problem.comm[j] > capacities).any():
                mark(i, j, "bandwidth")
    if config.use_criticality:
        for i, j in problem.criticality.conflicting_pairs:
            mark(i, j, "real-time")
    return matrix, {
        pair: frozenset(rules) for pair, rules in reasons.items()
    }


class TestConflictEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        kernel_trace(),
        st.integers(1, 80),
        st.floats(0.0, 0.5),
        st.booleans(),
    )
    def test_matrix_and_reasons(self, trace, window_size, threshold, crit):
        problem = CrossbarDesignProblem.from_trace(trace, window_size)
        config = SynthesisConfig(
            overlap_threshold=threshold, use_criticality=crit
        )
        analysis = build_conflicts(problem, config)
        matrix, reasons = reference_conflicts(problem, config)
        assert np.array_equal(analysis.matrix, matrix)
        assert analysis.reasons == reasons

    @settings(max_examples=40)
    @given(kernel_trace(), st.integers(1, 80))
    def test_criticality_pairs(self, trace, window_size):
        windowed = WindowedTraffic(trace, window_size=window_size)
        report = analyze_criticality(windowed)
        critical = trace.critical_targets()
        expected = []
        overlap = legacy_overlap_tensor(windowed, critical_only=True)
        if len(critical) >= 2:
            for a, i in enumerate(critical):
                for j in critical[a + 1:]:
                    if overlap[i, j].max(initial=0) > 0:
                        expected.append((i, j))
        assert list(report.conflicting_pairs) == expected
        assert list(report.critical_targets) == critical


# -- analytics memo behaviour ------------------------------------------


class TestAnalyticsMemo:
    def _trace(self):
        records = [
            make_record(initiator=0, target=0, start=0, duration=10),
            make_record(initiator=0, target=0, start=5, duration=12),
            make_record(initiator=1, target=1, start=8, duration=6, critical=True),
            make_record(initiator=1, target=2, start=2, duration=3),
        ]
        return TrafficTrace(records, 2, 3, total_cycles=40)

    def test_memo_rides_on_the_trace(self):
        trace = self._trace()
        assert TraceAnalytics.of(trace) is TraceAnalytics.of(trace)

    def test_results_shared_across_window_sizes(self):
        trace = self._trace()
        analytics = TraceAnalytics.of(trace)
        for window_size in (4, 7, 40):
            windowed = WindowedTraffic(trace, window_size=window_size)
            assert np.array_equal(
                windowed.comm, legacy_comm_matrix(windowed)
            )
        # one compiled form serves all geometries
        assert TraceAnalytics.of(trace) is analytics

    def test_memoized_arrays_resist_corruption(self):
        trace = self._trace()
        edges = np.arange(0, 48, 8)
        analytics = TraceAnalytics.of(trace)
        first = analytics.comm(edges)
        # results are shared across consumers of a geometry, so they are
        # handed out write-protected: a would-be writer fails loudly
        with pytest.raises(ValueError):
            first += 1_000
        assert analytics.comm(edges) is first  # memo hit, no copy
        tensor = analytics.wo(edges)
        with pytest.raises(ValueError):
            tensor[0, 1, 0] = 7
        assert np.array_equal(analytics.wo(edges), tensor)

    def test_intervals_match_target_activity(self):
        trace = self._trace()
        analytics = TraceAnalytics.of(trace)
        for target in range(trace.num_targets):
            for critical_only in (False, True):
                assert analytics.intervals(
                    target, critical_only
                ) == trace.target_activity(target, critical_only)

    def test_mirrored_trace_is_memoized(self):
        trace = self._trace()
        assert trace.mirrored() is trace.mirrored()

    def test_empty_trace(self):
        trace = TrafficTrace([], 2, 3, total_cycles=25)
        windowed = WindowedTraffic(trace, window_size=10)
        assert windowed.comm.sum() == 0
        assert PairwiseOverlap(windowed).wo.sum() == 0
        assert TraceAnalytics.of(trace).critical_targets() == []

    def test_bad_edges_rejected(self):
        from repro.errors import TraceError

        analytics = TraceAnalytics.of(self._trace())
        with pytest.raises(TraceError):
            analytics.comm([5, 10])  # must start at 0
        with pytest.raises(TraceError):
            analytics.comm([0, 10, 10])  # not strictly increasing
        with pytest.raises(TraceError):
            analytics.wo([0])  # need at least two edges
