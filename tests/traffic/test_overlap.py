"""Unit and property tests for pairwise overlap (wo[i][j][m], OM)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WindowError
from repro.traffic import PairwiseOverlap, TrafficTrace, WindowedTraffic

from tests.traffic.conftest import make_record
from tests.traffic.test_windows import random_trace


class TestOverlapKnownValues:
    def test_overlapping_pair(self, simple_trace):
        windowed = WindowedTraffic(simple_trace, window_size=20)
        overlap = PairwiseOverlap(windowed)
        # targets 0 [0,10)+[20,30) and 1 [5,15): overlap [5,10) in window 0
        assert overlap.wo[0, 1].tolist() == [5, 0, 0]
        assert overlap.max_window_overlap(0, 1) == 5
        assert overlap.max_window_fraction(0, 1) == pytest.approx(0.25)

    def test_disjoint_pair_has_zero_overlap(self, simple_trace):
        windowed = WindowedTraffic(simple_trace, window_size=20)
        overlap = PairwiseOverlap(windowed)
        assert overlap.wo[0, 2].sum() == 0
        assert overlap.wo[1, 2].sum() == 0

    def test_overlap_matrix_is_window_sum(self, simple_trace):
        windowed = WindowedTraffic(simple_trace, window_size=20)
        overlap = PairwiseOverlap(windowed)
        assert np.array_equal(overlap.overlap_matrix, overlap.wo.sum(axis=2))
        assert overlap.overlap_matrix[0, 1] == 5

    def test_pairs_exceeding_threshold(self, simple_trace):
        windowed = WindowedTraffic(simple_trace, window_size=20)
        overlap = PairwiseOverlap(windowed)
        assert overlap.pairs_exceeding(0.0) == [(0, 1)]
        assert overlap.pairs_exceeding(0.20) == [(0, 1)]
        assert overlap.pairs_exceeding(0.25) == []  # strict inequality

    def test_negative_threshold_rejected(self, simple_trace):
        windowed = WindowedTraffic(simple_trace, window_size=20)
        with pytest.raises(WindowError):
            PairwiseOverlap(windowed).pairs_exceeding(-0.1)

    def test_out_of_range_index_rejected(self, simple_trace):
        windowed = WindowedTraffic(simple_trace, window_size=20)
        with pytest.raises(WindowError):
            PairwiseOverlap(windowed).max_window_overlap(0, 99)

    def test_critical_only_overlap(self, simple_trace):
        windowed = WindowedTraffic(simple_trace, window_size=20)
        overlap = PairwiseOverlap(windowed, critical_only=True)
        # only target 2 has critical traffic; no critical pair overlaps
        assert overlap.wo.sum() == 0


def concurrent_trace():
    """Three targets all active in [0, 30) -> full mutual overlap."""
    records = [
        make_record(initiator=0, target=t, start=0, duration=30) for t in range(3)
    ]
    return TrafficTrace(records, 1, 3, total_cycles=40)


class TestOverlapStructure:
    def test_full_overlap(self):
        windowed = WindowedTraffic(concurrent_trace(), window_size=10)
        overlap = PairwiseOverlap(windowed)
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert overlap.wo[i, j].tolist() == [10, 10, 10, 0]

    def test_diagonal_is_zero(self):
        windowed = WindowedTraffic(concurrent_trace(), window_size=10)
        overlap = PairwiseOverlap(windowed)
        assert np.array_equal(np.diagonal(overlap.overlap_matrix), np.zeros(3))


class TestOverlapProperties:
    @settings(max_examples=30)
    @given(random_trace(), st.integers(1, 60))
    def test_symmetry_and_bounds(self, trace, window_size):
        windowed = WindowedTraffic(trace, window_size=window_size)
        overlap = PairwiseOverlap(windowed)
        wo = overlap.wo
        assert np.array_equal(wo, wo.transpose(1, 0, 2))
        assert (wo >= 0).all()
        # overlap of (i, j) in window m cannot exceed either stream's comm
        comm = windowed.comm
        for i in range(trace.num_targets):
            for j in range(trace.num_targets):
                if i == j:
                    continue
                assert (wo[i, j] <= comm[i]).all()
                assert (wo[i, j] <= comm[j]).all()

    @settings(max_examples=30)
    @given(random_trace(), st.integers(1, 60))
    def test_om_equals_whole_trace_intersection(self, trace, window_size):
        from repro.traffic.intervals import intersect, total_length

        windowed = WindowedTraffic(trace, window_size=window_size)
        overlap = PairwiseOverlap(windowed)
        om = overlap.overlap_matrix
        for i in range(trace.num_targets):
            for j in range(trace.num_targets):
                if i == j:
                    continue
                expected = total_length(
                    intersect(trace.target_activity(i), trace.target_activity(j))
                )
                assert om[i, j] == expected
