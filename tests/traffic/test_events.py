"""Unit tests for trace records."""

import pytest

from repro.errors import TraceError
from repro.traffic import TraceRecord, TransactionKind

from tests.traffic.conftest import make_record


class TestTraceRecord:
    def test_latency_and_occupancy_properties(self):
        record = make_record(start=10, duration=5, response=3)
        assert record.latency == 8
        assert record.it_occupancy == 5
        assert record.ti_occupancy == 3
        assert record.queueing_delay == 0

    def test_queueing_delay(self):
        record = TraceRecord(
            initiator=0,
            target=0,
            kind=TransactionKind.READ,
            burst=1,
            issue=0,
            it_grant=4,
            it_release=5,
            service_start=5,
            service_end=7,
            ti_grant=7,
            ti_release=9,
            complete=9,
        )
        assert record.queueing_delay == 4
        assert record.latency == 9

    def test_non_monotonic_timestamps_rejected(self):
        with pytest.raises(TraceError):
            TraceRecord(
                initiator=0,
                target=0,
                kind=TransactionKind.READ,
                burst=1,
                issue=5,
                it_grant=4,  # earlier than issue
                it_release=6,
                service_start=6,
                service_end=7,
                ti_grant=7,
                ti_release=8,
                complete=8,
            )

    def test_zero_burst_rejected(self):
        with pytest.raises(TraceError):
            make_record(burst=0)

    def test_negative_indices_rejected(self):
        with pytest.raises(TraceError):
            make_record(initiator=-1)

    def test_kind_str(self):
        assert str(TransactionKind.READ) == "read"
        assert str(TransactionKind.WRITE) == "write"

    def test_records_are_frozen(self):
        record = make_record()
        with pytest.raises(AttributeError):
            record.issue = 99  # type: ignore[misc]
