"""Unit and property tests for the interval algebra."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import TraceError
from repro.traffic.intervals import (
    clip,
    coverage_in_windows,
    intersect,
    normalize,
    total_length,
    union,
)


def raw_intervals(max_coord=200, max_count=20):
    """Strategy producing arbitrary (possibly overlapping) interval lists."""
    pair = st.tuples(
        st.integers(min_value=0, max_value=max_coord),
        st.integers(min_value=0, max_value=max_coord),
    ).map(lambda p: (min(p), max(p)))
    return st.lists(pair, max_size=max_count)


def covered_cycles(intervals, max_coord=200):
    """Reference coverage computed cycle by cycle."""
    cells = np.zeros(max_coord + 1, dtype=bool)
    for start, end in intervals:
        cells[start:end] = True
    return cells


class TestNormalize:
    def test_merges_overlapping(self):
        assert normalize([(0, 5), (3, 8)]) == [(0, 8)]

    def test_merges_touching(self):
        assert normalize([(0, 5), (5, 8)]) == [(0, 8)]

    def test_drops_empty(self):
        assert normalize([(3, 3), (1, 2)]) == [(1, 2)]

    def test_sorts(self):
        assert normalize([(10, 12), (0, 2)]) == [(0, 2), (10, 12)]

    def test_rejects_inverted(self):
        with pytest.raises(TraceError):
            normalize([(5, 2)])

    @given(raw_intervals())
    def test_normalized_is_disjoint_sorted_and_preserves_coverage(self, intervals):
        result = normalize(intervals)
        for (s1, e1), (s2, e2) in zip(result, result[1:]):
            assert e1 < s2  # strictly disjoint and non-adjacent
        assert np.array_equal(covered_cycles(result), covered_cycles(intervals))
        assert total_length(result) == int(covered_cycles(intervals).sum())


class TestIntersect:
    def test_basic(self):
        a = normalize([(0, 10), (20, 30)])
        b = normalize([(5, 25)])
        assert intersect(a, b) == [(5, 10), (20, 25)]

    def test_disjoint_gives_empty(self):
        assert intersect([(0, 5)], [(5, 10)]) == []

    @given(raw_intervals(), raw_intervals())
    def test_matches_cellwise_and(self, a, b):
        na, nb = normalize(a), normalize(b)
        result = intersect(na, nb)
        expected = covered_cycles(na) & covered_cycles(nb)
        assert np.array_equal(covered_cycles(result), expected)

    @given(raw_intervals(), raw_intervals())
    def test_symmetric(self, a, b):
        na, nb = normalize(a), normalize(b)
        assert intersect(na, nb) == intersect(nb, na)

    @given(raw_intervals(), raw_intervals())
    def test_bounded_by_operands(self, a, b):
        na, nb = normalize(a), normalize(b)
        common = total_length(intersect(na, nb))
        assert common <= min(total_length(na), total_length(nb))


class TestUnionClip:
    @given(raw_intervals(), raw_intervals())
    def test_union_matches_cellwise_or(self, a, b):
        na, nb = normalize(a), normalize(b)
        expected = covered_cycles(na) | covered_cycles(nb)
        assert np.array_equal(covered_cycles(union(na, nb)), expected)

    def test_clip(self):
        assert clip([(0, 10), (20, 30)], 5, 25) == [(5, 10), (20, 25)]

    def test_clip_inverted_window_rejected(self):
        with pytest.raises(TraceError):
            clip([(0, 5)], 10, 2)

    @given(raw_intervals(), st.integers(0, 200), st.integers(0, 200))
    def test_clip_length_bounded_by_window(self, a, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        clipped = clip(normalize(a), lo, hi)
        assert total_length(clipped) <= hi - lo


class TestCoverageInWindows:
    def test_single_window(self):
        cover = coverage_in_windows([(2, 7)], window_size=10, num_windows=1)
        assert cover.tolist() == [5]

    def test_interval_spanning_windows(self):
        cover = coverage_in_windows([(8, 23)], window_size=10, num_windows=3)
        assert cover.tolist() == [2, 10, 3]

    def test_interval_on_window_boundary(self):
        cover = coverage_in_windows([(10, 20)], window_size=10, num_windows=3)
        assert cover.tolist() == [0, 10, 0]

    def test_beyond_horizon_rejected(self):
        with pytest.raises(TraceError):
            coverage_in_windows([(0, 31)], window_size=10, num_windows=3)

    def test_bad_geometry_rejected(self):
        with pytest.raises(TraceError):
            coverage_in_windows([], window_size=0, num_windows=1)
        with pytest.raises(TraceError):
            coverage_in_windows([], window_size=5, num_windows=0)

    @given(raw_intervals(max_coord=199), st.integers(1, 50))
    def test_sum_equals_total_length_and_entries_bounded(self, intervals, ws):
        norm = normalize(intervals)
        num_windows = -(-200 // ws)  # ceil
        cover = coverage_in_windows(norm, ws, num_windows)
        assert int(cover.sum()) == total_length(norm)
        assert (cover >= 0).all()
        assert (cover <= ws).all()
