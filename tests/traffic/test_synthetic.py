"""Unit tests for the synthetic burst-traffic generator."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.traffic import (
    PairwiseOverlap,
    SyntheticTrafficConfig,
    WindowedTraffic,
    generate_synthetic_trace,
)


class TestConfigValidation:
    def test_default_config_is_valid(self):
        SyntheticTrafficConfig().validate()

    def test_default_groups_are_pairs(self):
        groups = SyntheticTrafficConfig(num_initiators=6).resolved_groups()
        assert groups == ((0, 1), (2, 3), (4, 5))

    def test_odd_initiators_get_singleton_tail(self):
        groups = SyntheticTrafficConfig(num_initiators=5).resolved_groups()
        assert groups == ((0, 1), (2, 3), (4,))

    def test_duplicate_group_member_rejected(self):
        config = SyntheticTrafficConfig(sync_groups=((0, 1), (1, 2)))
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_out_of_range_group_member_rejected(self):
        config = SyntheticTrafficConfig(num_initiators=2, sync_groups=((0, 5),))
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_out_of_range_critical_target_rejected(self):
        config = SyntheticTrafficConfig(num_targets=4, critical_targets=(9,))
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_bad_jitter_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticTrafficConfig(burst_jitter=1.5).validate()

    def test_too_short_period_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticTrafficConfig(total_cycles=10, burst_cycles=100).validate()


class TestGeneration:
    def test_deterministic_given_seed(self):
        config = SyntheticTrafficConfig(total_cycles=20_000, seed=7)
        first = generate_synthetic_trace(config)
        second = generate_synthetic_trace(config)
        assert first.records == second.records

    def test_different_seeds_differ(self):
        base = SyntheticTrafficConfig(total_cycles=20_000, seed=1)
        other = SyntheticTrafficConfig(total_cycles=20_000, seed=2)
        assert generate_synthetic_trace(base).records != generate_synthetic_trace(
            other
        ).records

    def test_immune_to_global_rng_state(self):
        """Generation draws only from the config-seeded RNG instance;
        reseeding (or consuming) the interpreter-global random module
        between runs must not change the trace -- scenario fingerprints
        and the exec cache depend on this."""
        config = SyntheticTrafficConfig(total_cycles=20_000, seed=7)
        first = generate_synthetic_trace(config)
        random.seed(0xC0FFEE)
        random.random()
        second = generate_synthetic_trace(config)
        assert first.records == second.records

    def test_injected_rng_overrides_config_seed(self):
        config = SyntheticTrafficConfig(total_cycles=20_000, seed=7)
        default = generate_synthetic_trace(config)
        same = generate_synthetic_trace(config, rng=random.Random(7))
        other = generate_synthetic_trace(config, rng=random.Random(8))
        assert default.records == same.records
        assert default.records != other.records

    def test_platform_shape(self):
        trace = generate_synthetic_trace(
            SyntheticTrafficConfig(total_cycles=20_000)
        )
        assert trace.num_initiators == 10
        assert trace.num_targets == 10
        assert trace.total_cycles == 20_000
        assert len(trace) > 0

    def test_private_memory_pattern(self):
        trace = generate_synthetic_trace(
            SyntheticTrafficConfig(total_cycles=20_000)
        )
        for record in trace.records:
            assert record.target == record.initiator % 10

    def test_burst_durations_near_configured_value(self):
        config = SyntheticTrafficConfig(total_cycles=50_000, burst_cycles=1_000)
        trace = generate_synthetic_trace(config)
        # Activity intervals per target should approximate burst length:
        # within jitter and packet-gap fragmentation, bursts stay between
        # 0.3x and 2.5x of the nominal duration.
        for target in range(trace.num_targets):
            for start, end in trace.target_activity(target):
                assert end - start <= 2.5 * config.burst_cycles

    def test_sync_group_members_overlap_heavily(self):
        config = SyntheticTrafficConfig(
            total_cycles=50_000, sync_groups=((0, 1),) + tuple((i,) for i in range(2, 10))
        )
        trace = generate_synthetic_trace(config)
        windowed = WindowedTraffic(trace, window_size=2_000)
        overlap = PairwiseOverlap(windowed)
        om = overlap.overlap_matrix
        # grouped initiators 0,1 -> targets 0,1 overlap far more than an
        # ungrouped pair such as (2, 3)
        assert om[0, 1] > 3 * max(1, om[2, 3])

    def test_critical_marking(self):
        config = SyntheticTrafficConfig(total_cycles=20_000, critical_targets=(3,))
        trace = generate_synthetic_trace(config)
        assert trace.critical_targets() == [3]

    def test_records_fit_within_period(self):
        trace = generate_synthetic_trace(
            SyntheticTrafficConfig(total_cycles=20_000)
        )
        assert all(rec.complete <= trace.total_cycles for rec in trace.records)
