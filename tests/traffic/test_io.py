"""Unit tests for trace persistence."""

import json

import pytest

from repro.errors import TraceError
from repro.traffic import (
    SyntheticTrafficConfig,
    generate_synthetic_trace,
    load_trace_jsonl,
    save_trace_jsonl,
)
from repro.traffic.trace import TrafficTrace

from tests.traffic.conftest import make_record


class TestRoundTrip:
    def test_simple_roundtrip(self, tmp_path, simple_trace):
        path = tmp_path / "trace.jsonl"
        save_trace_jsonl(simple_trace, path)
        loaded = load_trace_jsonl(path)
        assert loaded.records == simple_trace.records
        assert loaded.num_initiators == simple_trace.num_initiators
        assert loaded.num_targets == simple_trace.num_targets
        assert loaded.total_cycles == simple_trace.total_cycles
        assert loaded.target_names == simple_trace.target_names

    def test_synthetic_roundtrip(self, tmp_path):
        trace = generate_synthetic_trace(
            SyntheticTrafficConfig(total_cycles=10_000)
        )
        path = tmp_path / "synthetic.jsonl"
        save_trace_jsonl(trace, path)
        loaded = load_trace_jsonl(path)
        assert loaded.records == trace.records

    def test_criticality_and_stream_survive(self, tmp_path):
        records = [make_record(critical=True, stream="arm0->pm0")]
        trace = TrafficTrace(records, 1, 1, total_cycles=100)
        path = tmp_path / "crit.jsonl"
        save_trace_jsonl(trace, path)
        loaded = load_trace_jsonl(path)
        assert loaded.records[0].critical
        assert loaded.records[0].stream == "arm0->pm0"


class TestMalformedFiles:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceError):
            load_trace_jsonl(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceError):
            load_trace_jsonl(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "wrong.jsonl"
        path.write_text(json.dumps({"format": "other"}) + "\n")
        with pytest.raises(TraceError):
            load_trace_jsonl(path)

    def test_malformed_record_rejected(self, tmp_path, simple_trace):
        path = tmp_path / "trunc.jsonl"
        save_trace_jsonl(simple_trace, path)
        lines = path.read_text().splitlines()
        lines[1] = "{broken"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError):
            load_trace_jsonl(path)

    def test_missing_field_rejected(self, tmp_path, simple_trace):
        path = tmp_path / "missing.jsonl"
        save_trace_jsonl(simple_trace, path)
        lines = path.read_text().splitlines()
        row = json.loads(lines[1])
        del row["issue"]
        lines[1] = json.dumps(row)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError):
            load_trace_jsonl(path)

    def test_record_count_mismatch_rejected(self, tmp_path, simple_trace):
        path = tmp_path / "count.jsonl"
        save_trace_jsonl(simple_trace, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop one record
        with pytest.raises(TraceError):
            load_trace_jsonl(path)
