"""Span export formats: JSONL round trip, Chrome trace events, tree."""

import json

import pytest

from repro.obs.export import (
    format_span_tree,
    load_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.jsonlog import JsonLogger
from repro.obs.tracing import Span


def make_span(name, span_id, parent_id=None, t_start=1.0, **attrs):
    return Span(
        name=name,
        trace_id="trace01",
        span_id=span_id,
        parent_id=parent_id,
        t_start=t_start,
        wall_s=0.5,
        cpu_s=0.25,
        pid=1234,
        tid=1,
        attrs=attrs,
    )


class TestJsonl:
    def test_round_trip(self, tmp_path):
        spans = [
            make_span("root", "a"),
            make_span("child", "b", parent_id="a", t_start=1.1, k="v"),
        ]
        path = str(tmp_path / "spans.jsonl")
        assert write_jsonl(spans, path) == 2
        loaded = load_jsonl(path)
        assert [s.name for s in loaded] == ["root", "child"]
        assert loaded[1].parent_id == "a"
        assert loaded[1].attrs == {"k": "v"}

    def test_corrupt_export_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"not": "a span"}\n')
        with pytest.raises((KeyError, TypeError)):
            load_jsonl(str(path))


class TestChromeTrace:
    def test_event_shape(self):
        document = to_chrome_trace(
            [make_span("root", "a"), make_span("child", "b", parent_id="a")]
        )
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["pid"] == 1234
            assert event["dur"] == pytest.approx(0.5e6)
            assert event["args"]["trace_id"] == "trace01"
        child = next(e for e in events if e["name"] == "child")
        assert child["args"]["parent_id"] == "a"

    def test_write_is_valid_json(self, tmp_path):
        path = str(tmp_path / "chrome.json")
        count = write_chrome_trace([make_span("root", "a")], path)
        assert count == 1
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["traceEvents"][0]["name"] == "root"


class TestSpanTree:
    def test_children_indent_under_parents(self):
        text = format_span_tree(
            [
                make_span("root", "a"),
                make_span("child", "b", parent_id="a", t_start=1.1),
                make_span("grandchild", "c", parent_id="b", t_start=1.2),
            ]
        )
        lines = text.splitlines()
        root_line = next(line for line in lines if "root" in line)
        child_line = next(line for line in lines if "child" in line)
        grand_line = next(line for line in lines if "grandchild" in line)
        assert root_line.index("root") < child_line.index("child")
        assert child_line.index("child") < grand_line.index("grandchild")

    def test_missing_parent_renders_as_root(self):
        text = format_span_tree(
            [make_span("orphan", "z", parent_id="gone")]
        )
        assert "orphan" in text

    def test_empty_input(self):
        assert format_span_tree([]) == "(no spans)"

    def test_trace_id_filter(self):
        other = make_span("other", "q")
        other = Span(**{**other.to_dict(), "trace_id": "different"})
        text = format_span_tree(
            [make_span("mine", "a"), other], trace_id="trace01"
        )
        assert "mine" in text
        assert "other" not in text


class TestJsonLogger:
    def test_emits_one_sorted_json_object_per_line(self):
        import io

        stream = io.StringIO()
        log = JsonLogger(stream=stream)
        log.emit("job.started", job="job-1", kind="design")
        log.emit("job.finished", job="job-1", state="done")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "job.started"
        assert first["job"] == "job-1"
        assert "ts" in first

    def test_unserializable_fields_fall_back(self):
        import io

        stream = io.StringIO()
        JsonLogger(stream=stream).emit("weird", payload=object())
        assert json.loads(stream.getvalue())["event"] == "weird"
