"""Registry semantics plus a golden test of the Prometheus exposition.

The exposition test parses the rendered text with a minimal Prometheus
text-format parser written here (no client library in the image): every
sample line must parse, every family must carry a ``# TYPE``, histogram
buckets must be cumulative and consistent with ``_count``/``_sum``.
"""

import re
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
)

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text):
    """Parse exposition text into ``{family: (kind, {sample: value})}``.

    Intentionally strict: unknown line shapes are assertion failures,
    and a sample whose family has no ``# TYPE`` declaration fails too.
    That is the contract a real Prometheus scraper enforces.
    """
    families = {}
    kinds = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram", "untyped")
            kinds[name] = kind
            families.setdefault(name, {})
            continue
        assert not line.startswith("#"), f"unknown comment line: {line!r}"
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name = match.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in kinds:
                family = name[: -len(suffix)]
        assert family in kinds, f"sample {name!r} has no # TYPE"
        labels = tuple(
            sorted(_LABEL_RE.findall(match.group("labels") or ""))
        )
        raw = match.group("value")
        value = float("inf") if raw == "+Inf" else float(raw)
        key = (name, labels)
        assert key not in families[family], f"duplicate sample {key}"
        families[family][key] = value
    return {name: (kinds[name], families[name]) for name in kinds}


class TestCounter:
    def test_inc_value_total(self):
        registry = MetricsRegistry()
        c = registry.counter("t_hits", "hits", ("kind",))
        c.inc(kind="a")
        c.inc(2, kind="b")
        assert c.value(kind="a") == 1
        assert c.value(kind="b") == 2
        assert c.total() == 3

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        c = registry.counter("t_hits")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        c = registry.counter("t_hits", "", ("kind",))
        with pytest.raises(ValueError):
            c.inc(other="x")
        with pytest.raises(ValueError):
            c.inc()

    def test_redeclare_same_shape_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("t_hits", "", ("kind",))
        again = registry.counter("t_hits", "", ("kind",))
        assert first is again

    def test_redeclare_different_type_or_labels_rejected(self):
        registry = MetricsRegistry()
        registry.counter("t_hits", "", ("kind",))
        with pytest.raises(ValueError):
            registry.gauge("t_hits", "", ("kind",))
        with pytest.raises(ValueError):
            registry.counter("t_hits", "", ("other",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok", "", ("bad-label",))


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        g = registry.gauge("t_depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4

    def test_callback_child_sampled_at_read(self):
        registry = MetricsRegistry()
        g = registry.gauge("t_depth")
        backing = [7]
        g.set_function(lambda: backing[0])
        assert g.value() == 7
        backing[0] = 9
        assert g.value() == 9

    def test_callback_unregistered_with_none(self):
        registry = MetricsRegistry()
        g = registry.gauge("t_depth")
        g.set_function(lambda: 7)
        g.set_function(None)
        assert g.value() == 0
        assert "t_depth 0" in registry.render_prometheus()

    def test_failing_callback_skipped_in_render(self):
        registry = MetricsRegistry()
        g = registry.gauge("t_depth", "", ("q",))

        def boom():
            raise RuntimeError("sampling failed")

        g.set_function(boom, q="a")
        g.set(3, q="b")
        text = registry.render_prometheus()
        assert 't_depth{q="b"} 3' in text
        assert 'q="a"' not in text

    def test_inc_on_callback_child_rejected(self):
        registry = MetricsRegistry()
        g = registry.gauge("t_depth")
        g.set_function(lambda: 1)
        with pytest.raises(ValueError):
            g.inc()


class TestHistogram:
    def test_observe_and_child_stats(self):
        registry = MetricsRegistry()
        h = registry.histogram("t_seconds", "", ("op",))
        for value in (0.0004, 0.004, 0.04, 99.0):
            h.observe(value, op="x")
        count, total = h.child_stats(op="x")
        assert count == 4
        assert total == pytest.approx(0.0004 + 0.004 + 0.04 + 99.0)

    def test_bucket_counts_cumulative_and_consistent(self):
        registry = MetricsRegistry()
        h = registry.histogram("t_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            h.observe(value)
        families = parse_prometheus(registry.render_prometheus())
        kind, samples = families["t_seconds"]
        assert kind == "histogram"
        assert samples[("t_seconds_bucket", (("le", "0.1"),))] == 1
        assert samples[("t_seconds_bucket", (("le", "1"),))] == 2
        assert samples[("t_seconds_bucket", (("le", "+Inf"),))] == 3
        assert samples[("t_seconds_count", ())] == 3
        assert samples[("t_seconds_sum", ())] == pytest.approx(5.55)

    def test_unsorted_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("t_seconds", buckets=(1.0, 0.1))

    def test_default_buckets_are_latency_shaped(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 10.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestSnapshot:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("t_hits", "", ("kind",)).inc(3, kind="a")
        registry.gauge("t_depth").set(2)
        registry.histogram("t_seconds").observe(0.5)
        snap = registry.snapshot()
        assert snap["t_hits"]["samples"][("a",)] == 3
        assert snap["t_depth"]["samples"][()] == 2
        assert snap["t_seconds"]["samples"][()] == {"count": 1, "sum": 0.5}

    def test_reset_zeroes_children(self):
        registry = MetricsRegistry()
        c = registry.counter("t_hits")
        c.inc(5)
        registry.reset()
        assert c.total() == 0

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()
        c = registry.counter("t_hits")
        h = registry.histogram("t_seconds")

        def hammer():
            for _ in range(500):
                c.inc()
                h.observe(0.01)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.total() == 8 * 500
        count, total = h.child_stats()
        assert count == 8 * 500
        assert total == pytest.approx(8 * 500 * 0.01)


class TestExpositionGolden:
    def test_golden_document(self):
        """Byte-exact exposition for a small fixed registry."""
        registry = MetricsRegistry()
        requests = registry.counter(
            "t_requests_total", "Requests by verb.", ("verb",)
        )
        requests.inc(3, verb="get")
        requests.inc(verb='po"st\\')
        registry.gauge("t_depth", "Queue depth.").set(2)
        hist = registry.histogram(
            "t_latency_seconds", "Latency.", buckets=(0.5, 2.5)
        )
        hist.observe(0.25)
        hist.observe(2.0)
        expected = (
            '# HELP t_depth Queue depth.\n'
            '# TYPE t_depth gauge\n'
            't_depth 2\n'
            '# HELP t_latency_seconds Latency.\n'
            '# TYPE t_latency_seconds histogram\n'
            't_latency_seconds_bucket{le="0.5"} 1\n'
            't_latency_seconds_bucket{le="2.5"} 2\n'
            't_latency_seconds_bucket{le="+Inf"} 2\n'
            't_latency_seconds_sum 2.25\n'
            't_latency_seconds_count 2\n'
            '# HELP t_requests_total Requests by verb.\n'
            '# TYPE t_requests_total counter\n'
            't_requests_total{verb="get"} 3\n'
            't_requests_total{verb="po\\"st\\\\"} 1\n'
        )
        assert registry.render_prometheus() == expected

    def test_global_registry_renders_parseable_exposition(self):
        """Everything the instrumented platform registered so far must
        survive the strict parser -- this is the scrape contract."""
        from repro.obs import metrics

        # Touch the instrumented layers so their families exist.
        import repro.exec.cache  # noqa: F401
        import repro.milp.branch_bound  # noqa: F401
        import repro.pipeline.runner  # noqa: F401
        import repro.resilience.retry  # noqa: F401
        import repro.server.app  # noqa: F401

        families = parse_prometheus(metrics.render_prometheus())
        for expected in (
            "repro_solves_total",
            "repro_solver_nodes_total",
            "repro_stage_events_total",
            "repro_stage_seconds",
            "repro_cache_events_total",
            "repro_engine_events_total",
            "repro_faults_fired_total",
            "repro_requests_total",
            "repro_http_requests_total",
            "repro_http_request_seconds",
            "repro_queue_depth",
            "repro_jobs_active",
            "repro_phase_seconds",
        ):
            assert expected in families, f"{expected} not registered"
