"""Span tracer semantics and cross-process trace propagation.

The acceptance property of the observability PR lives here: a traced
pool sweep yields ONE span tree -- every worker-process span reaches
the in-process root through parent links, even when the pool is killed
and rebuilt mid-job -- and arming tracing never perturbs the
byte-identical chaos guarantees the resilience suite established.
"""

import json
import os

import pytest

from repro.apps.synthetic import synthetic_trace
from repro.core import SynthesisConfig
from repro.exec import ExecutionEngine, SynthesisTask, result_to_dict
from repro.obs import tracing
from repro.resilience import FaultPlan, FaultRule, install_plan

CONFIG = SynthesisConfig(max_targets_per_bus=None)
WINDOWS = [150, 2_400]


@pytest.fixture(scope="module")
def small_trace():
    return synthetic_trace(
        burst_cycles=300, total_cycles=12_000, num_initiators=5,
        num_targets=5, seed=7,
    )


@pytest.fixture(scope="module")
def tasks():
    return [SynthesisTask(config=CONFIG, window_size=w) for w in WINDOWS]


def sweep_bytes(results):
    return json.dumps(
        [result_to_dict(r) for r in results], sort_keys=True
    ).encode()


def assert_single_tree(spans):
    """Every span reaches exactly one root via parent links."""
    by_id = {s.span_id: s for s in spans}
    roots = [s for s in spans if s.parent_id is None]
    assert len(roots) == 1
    root = roots[0]
    for span in spans:
        current = span
        hops = 0
        while current.parent_id is not None:
            assert current.parent_id in by_id, (
                f"span {current.name} has a dangling parent"
            )
            current = by_id[current.parent_id]
            hops += 1
            assert hops < 100
        assert current is root
        assert span.trace_id == root.trace_id
    return root


class TestDisabled:
    def test_span_is_shared_null_object(self):
        first = tracing.span("anything", attr=1)
        second = tracing.span("other")
        assert first is second  # zero allocation on the disabled path
        with first as active:
            assert active.trace_id == ""
            active.set_attr(extra=2)  # no-op, must not raise
        assert tracing.collect_spans() == []
        assert not tracing.tracing_enabled()

    def test_current_span_is_none(self):
        assert tracing.current_span() is None
        with tracing.span("x"):
            assert tracing.current_span() is None


class TestArmed:
    def test_parent_child_links_and_attrs(self):
        tracing.arm_tracing()
        with tracing.root_span("outer", job="j1") as outer:
            with tracing.span("inner") as inner:
                inner.set_attr(detail="yes")
                assert tracing.current_span() is inner
        spans = {s.name: s for s in tracing.collect_spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].trace_id == spans["outer"].trace_id
        assert spans["outer"].parent_id is None
        assert spans["outer"].attrs["job"] == "j1"
        assert spans["inner"].attrs["detail"] == "yes"
        assert spans["inner"].wall_s >= 0
        assert outer.trace_id == spans["outer"].trace_id

    def test_exception_recorded_and_propagated(self):
        tracing.arm_tracing()
        with pytest.raises(RuntimeError):
            with tracing.span("failing"):
                raise RuntimeError("boom")
        (span,) = tracing.collect_spans()
        assert span.attrs["error"] == "RuntimeError"

    def test_collect_filters_by_trace_id(self):
        tracing.arm_tracing()
        with tracing.root_span("first") as a:
            pass
        with tracing.root_span("second"):
            pass
        only = tracing.collect_spans(trace_id=a.trace_id)
        assert [s.name for s in only] == ["first"]

    def test_clear_spans(self):
        tracing.arm_tracing()
        with tracing.span("x"):
            pass
        tracing.clear_spans()
        assert tracing.collect_spans() == []

    def test_disarm_removes_spool_and_env(self):
        tracing.arm_tracing()
        spool = tracing.spool_directory()
        assert spool is not None and os.path.isdir(spool)
        # The env var is exported only around pool fan-out; after a
        # fan-out block it is restored, and disarm must drop any leak.
        with tracing.propagate_context():
            assert tracing.TRACE_ENV_VAR in os.environ
        tracing.disarm_tracing()
        assert tracing.TRACE_ENV_VAR not in os.environ
        assert not os.path.isdir(spool)
        assert not tracing.tracing_enabled()


class TestCrossProcess:
    def test_pool_sweep_produces_one_tree_spanning_processes(
        self, small_trace, tasks
    ):
        tracing.arm_tracing()
        engine = ExecutionEngine(jobs=2)
        with tracing.root_span("job.test"):
            engine.run_sweep(small_trace, tasks)
        spans = tracing.collect_spans()
        root = assert_single_tree(spans)
        assert root.name == "job.test"
        worker_spans = [s for s in spans if s.name == "worker.solve"]
        assert len(worker_spans) == len(tasks)
        assert {s.pid for s in worker_spans} - {os.getpid()}, (
            "worker spans must come from pool child processes"
        )
        # The in-process stages are in the same tree.
        names = {s.name for s in spans}
        assert "engine.sweep" in names
        assert "engine.pool_map" in names

    def test_trace_survives_pool_rebuild_mid_job(self, small_trace, tasks):
        """Workers crash on every first attempt -> the engine rebuilds
        the pool mid-job; retried attempts still join the same trace."""
        install_plan(
            FaultPlan(
                seed=1,
                rules={"worker.crash": FaultRule(rate=1.0, match=("*:a0",))},
            )
        )
        tracing.arm_tracing()
        engine = ExecutionEngine(jobs=2)
        with tracing.root_span("job.chaos"):
            engine.run_sweep(small_trace, tasks)
        assert engine.stats.snapshot()["pool_rebuilds"] == 1
        spans = tracing.collect_spans()
        root = assert_single_tree(spans)
        assert root.name == "job.chaos"
        retried = [
            s for s in spans
            if s.name == "worker.solve" and s.attrs.get("attempt", 0) >= 1
        ]
        assert retried, "post-rebuild worker spans must appear in the tree"


class TestChaosByteIdenticalWithTracing:
    def test_faulty_sweep_bytes_unchanged_by_tracing(
        self, small_trace, tasks
    ):
        """The determinism-safety contract: arming tracing on top of a
        fault-injected run changes NOTHING about the results."""
        from repro.resilience import clear_plan

        clear_plan()
        baseline = sweep_bytes(
            ExecutionEngine(jobs=1).run_sweep(small_trace, tasks)
        )

        def chaos_sweep():
            install_plan(
                FaultPlan(
                    seed=1,
                    rules={
                        "worker.crash": FaultRule(rate=1.0, match=("*:a0",))
                    },
                )
            )
            engine = ExecutionEngine(jobs=2)
            return sweep_bytes(engine.run_sweep(small_trace, tasks))

        untraced = chaos_sweep()
        clear_plan()
        tracing.arm_tracing()
        with tracing.root_span("job.chaos"):
            traced = chaos_sweep()
        assert untraced == baseline
        assert traced == baseline
        assert tracing.collect_spans(), "tracing was armed and recording"
