"""Shared hygiene for the observability suite.

Tracing state is process-global (module state plus the ``REPRO_TRACE``
environment variable, mirroring ``REPRO_FAULTS``), so every test ends
with tracing fully disarmed -- a leaked armed collector would make
unrelated tests record spans and, worse, leave a spool directory
behind. Fault plans are cleared for the same reason: the chaos+tracing
regression installs them.
"""

import pytest

from repro.obs import tracing
from repro.resilience import clear_plan


@pytest.fixture(autouse=True)
def _clean_obs_state():
    clear_plan()
    yield
    if tracing.tracing_enabled():
        tracing.clear_spans()
        tracing.disarm_tracing()
    clear_plan()
