"""Unit tests for binding optimization, random binding and the audit."""

import pytest
from hypothesis import given, settings

from repro.core import (
    CrossbarDesignProblem,
    SynthesisConfig,
    audit_binding,
    build_conflicts,
    optimize_binding,
    random_feasible_binding,
)
from repro.core.binding import binding_overlap_objective
from repro.errors import SynthesisError, ValidationError

from tests.core.conftest import problem_from_activity
from tests.traffic.test_windows import random_trace


class TestOptimizeBinding:
    def test_two_phase_zero_overlap(self, two_phase_problem, default_config):
        conflicts = build_conflicts(two_phase_problem, default_config)
        binding = optimize_binding(
            two_phase_problem, conflicts, 2, default_config
        )
        assert binding.max_bus_overlap == 0
        assert binding.optimal
        assert binding.num_buses == 2

    def test_infeasible_raises(self, two_phase_problem, default_config):
        conflicts = build_conflicts(two_phase_problem, default_config)
        with pytest.raises(SynthesisError):
            optimize_binding(two_phase_problem, conflicts, 1, default_config)

    def test_milp_backend_matches(self, two_phase_problem):
        config_milp = SynthesisConfig(backend="milp")
        config_fast = SynthesisConfig()
        conflicts = build_conflicts(two_phase_problem, config_fast)
        fast = optimize_binding(two_phase_problem, conflicts, 2, config_fast)
        slow = optimize_binding(two_phase_problem, conflicts, 2, config_milp)
        assert fast.max_bus_overlap == slow.max_bus_overlap

    @settings(max_examples=15, deadline=None)
    @given(random_trace())
    def test_optimal_never_worse_than_random(self, trace):
        problem = CrossbarDesignProblem.from_trace(
            trace, window_size=max(1, trace.total_cycles // 3)
        )
        config = SynthesisConfig(max_targets_per_bus=None)
        conflicts = build_conflicts(problem, config)
        num_buses = min(2, problem.num_targets)
        try:
            optimal = optimize_binding(problem, conflicts, num_buses, config)
        except SynthesisError:
            return  # infeasible instance: nothing to compare
        for seed in range(3):
            random_bind = random_feasible_binding(
                problem, conflicts, num_buses, config, seed=seed
            )
            assert optimal.max_bus_overlap <= random_bind.max_bus_overlap


class TestRandomBinding:
    def test_random_binding_feasible_and_not_optimal_flagged(
        self, two_phase_problem, default_config
    ):
        conflicts = build_conflicts(two_phase_problem, default_config)
        binding = random_feasible_binding(
            two_phase_problem, conflicts, 2, default_config, seed=1
        )
        assert not binding.optimal
        assert not audit_binding(
            two_phase_problem, conflicts, binding.binding,
            default_config.max_targets_per_bus,
        )

    def test_infeasible_raises(self, two_phase_problem, default_config):
        conflicts = build_conflicts(two_phase_problem, default_config)
        with pytest.raises(SynthesisError):
            random_feasible_binding(
                two_phase_problem, conflicts, 1, default_config
            )


class TestObjectiveEvaluator:
    def test_counts_unordered_pairs_once(self):
        problem = problem_from_activity(
            [[(0, 30)], [(0, 30)], [(0, 30)]],
            total_cycles=100,
            window_size=100,
        )
        om = problem.overlap_matrix
        assert om[0, 1] == 30
        # all three on one bus: 3 pairs of 30 each
        assert binding_overlap_objective(problem, (0, 0, 0)) == 90
        # split 2+1: one pair remains
        assert binding_overlap_objective(problem, (0, 0, 1)) == 30


class TestAudit:
    def test_detects_bandwidth_violation(self, two_phase_problem, default_config):
        conflicts = build_conflicts(two_phase_problem, default_config)
        violations = audit_binding(
            two_phase_problem, conflicts, (0, 0, 1, 1), None
        )
        assert any("window" in violation for violation in violations)

    def test_detects_conflict_violation(self):
        problem = problem_from_activity(
            [[(0, 40)], [(0, 40)]], total_cycles=100, window_size=100
        )
        config = SynthesisConfig(overlap_threshold=0.3)
        conflicts = build_conflicts(problem, config)
        violations = audit_binding(problem, conflicts, (0, 0), None)
        assert any("conflict" in violation for violation in violations)

    def test_detects_maxtb_violation(self):
        problem = problem_from_activity(
            [[(0, 5)], [(10, 5)], [(20, 5)]],
            total_cycles=100,
            window_size=100,
        )
        config = SynthesisConfig()
        conflicts = build_conflicts(problem, config)
        violations = audit_binding(problem, conflicts, (0, 0, 0), 2)
        assert any("maxtb" in violation for violation in violations)

    def test_detects_sparse_numbering(self, two_phase_problem, default_config):
        conflicts = build_conflicts(two_phase_problem, default_config)
        violations = audit_binding(
            two_phase_problem, conflicts, (0, 2, 0, 2), None
        )
        assert any("dense" in violation for violation in violations)

    def test_detects_length_mismatch(self, two_phase_problem, default_config):
        conflicts = build_conflicts(two_phase_problem, default_config)
        violations = audit_binding(two_phase_problem, conflicts, (0, 1), None)
        assert violations

    def test_raise_on_violation(self, two_phase_problem, default_config):
        conflicts = build_conflicts(two_phase_problem, default_config)
        with pytest.raises(ValidationError):
            audit_binding(
                two_phase_problem, conflicts, (0, 0, 1, 1), None,
                raise_on_violation=True,
            )

    def test_clean_binding_passes(self, two_phase_problem, default_config):
        conflicts = build_conflicts(two_phase_problem, default_config)
        assert audit_binding(
            two_phase_problem, conflicts, (0, 1, 0, 1), None
        ) == []
