"""Unit and property tests for the specialized assignment solver."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CrossbarDesignProblem,
    SynthesisConfig,
    audit_binding,
    build_conflicts,
)
from repro.core.assignment import solve_assignment
from repro.core.binding import binding_overlap_objective
from repro.errors import SolverError

from tests.core.conftest import problem_from_activity
from tests.traffic.test_windows import random_trace


def conflicts_for(problem, threshold=0.3, use_criticality=True):
    return build_conflicts(
        problem,
        SynthesisConfig(
            overlap_threshold=threshold, use_criticality=use_criticality
        ),
    )


class TestFeasibility:
    def test_two_phase_fits_two_buses(self, two_phase_problem):
        conflicts = conflicts_for(two_phase_problem, threshold=0.5)
        result = solve_assignment(two_phase_problem, conflicts, 2)
        assert result.status == "optimal"
        binding = result.binding
        # same-phase targets (0,1) and (2,3) must be split across buses
        assert binding[0] != binding[1]
        assert binding[2] != binding[3]

    def test_one_bus_infeasible_for_two_phase(self, two_phase_problem):
        conflicts = conflicts_for(two_phase_problem, threshold=0.5)
        result = solve_assignment(two_phase_problem, conflicts, 1)
        assert result.status == "infeasible"
        assert not result.is_feasible

    def test_binding_respects_audit(self, two_phase_problem):
        conflicts = conflicts_for(two_phase_problem, threshold=0.5)
        result = solve_assignment(two_phase_problem, conflicts, 3, 2)
        assert not audit_binding(
            two_phase_problem, conflicts, result.binding, 2
        )

    def test_maxtb_forces_spread(self):
        problem = problem_from_activity(
            [[(0, 10)], [(20, 10)], [(40, 10)], [(60, 10)]],
            total_cycles=100,
            window_size=100,
        )
        conflicts = conflicts_for(problem)
        packed = solve_assignment(problem, conflicts, 4, max_targets_per_bus=None)
        assert packed.buses_used == 1  # all fit one bus without maxtb
        spread = solve_assignment(problem, conflicts, 4, max_targets_per_bus=2)
        assert spread.buses_used == 2

    def test_conflicts_respected(self):
        problem = problem_from_activity(
            [[(0, 40)], [(0, 40)], [(50, 20)]],
            total_cycles=100,
            window_size=100,
        )
        conflicts = conflicts_for(problem, threshold=0.1)
        result = solve_assignment(problem, conflicts, 2)
        assert result.binding[0] != result.binding[1]

    def test_budget_exhaustion_raises(self, two_phase_problem):
        # 2 buses is feasible, but a 2-node budget dies mid-search.
        conflicts = conflicts_for(two_phase_problem, threshold=0.5)
        with pytest.raises(SolverError):
            solve_assignment(
                two_phase_problem, conflicts, 2, node_limit=2
            )

    def test_bad_bus_count_rejected(self, two_phase_problem):
        conflicts = conflicts_for(two_phase_problem)
        with pytest.raises(SolverError):
            solve_assignment(two_phase_problem, conflicts, 0)


class TestOptimization:
    def test_optimal_separates_overlapping_pairs(self, two_phase_problem):
        conflicts = conflicts_for(two_phase_problem, threshold=0.5)
        result = solve_assignment(
            two_phase_problem, conflicts, 2, optimize=True
        )
        # the overlap-minimal 2-bus binding pairs cross-phase targets,
        # giving zero overlap on both buses
        assert result.objective == 0
        assert result.binding[0] != result.binding[1]
        assert result.binding[2] != result.binding[3]

    def test_objective_matches_evaluator(self, two_phase_problem):
        conflicts = conflicts_for(two_phase_problem, threshold=0.5)
        result = solve_assignment(
            two_phase_problem, conflicts, 2, optimize=True
        )
        assert result.objective == binding_overlap_objective(
            two_phase_problem, result.binding
        )


def brute_force_best(problem, conflicts, num_buses, maxtb):
    """Enumerate all bindings; return (feasible?, best objective)."""
    best = None
    for assignment in itertools.product(
        range(num_buses), repeat=problem.num_targets
    ):
        # renumber densely for audit
        seen = {}
        dense = []
        for bus in assignment:
            seen.setdefault(bus, len(seen))
            dense.append(seen[bus])
        if audit_binding(problem, conflicts, dense, maxtb):
            continue
        objective = binding_overlap_objective(problem, dense)
        if best is None or objective < best:
            best = objective
    return best


class TestAgainstBruteForce:
    @settings(max_examples=25, deadline=None)
    @given(random_trace(), st.integers(1, 3), st.sampled_from([None, 2, 3]))
    def test_matches_enumeration(self, trace, num_buses, maxtb):
        problem = CrossbarDesignProblem.from_trace(
            trace, window_size=max(1, trace.total_cycles // 3)
        )
        conflicts = conflicts_for(problem, threshold=0.25)
        expected = brute_force_best(problem, conflicts, num_buses, maxtb)
        result = solve_assignment(
            problem, conflicts, num_buses, max_targets_per_bus=maxtb,
            optimize=True,
        )
        if expected is None:
            assert result.status == "infeasible"
        else:
            assert result.status == "optimal"
            assert result.objective == expected
            assert not audit_binding(
                problem, conflicts, result.binding, maxtb
            )


class TestRandomBinding:
    def test_random_bindings_are_feasible(self, two_phase_problem):
        conflicts = conflicts_for(two_phase_problem, threshold=0.5)
        for seed in range(5):
            result = solve_assignment(
                two_phase_problem, conflicts, 2,
                rng=random.Random(seed),
            )
            assert result.is_feasible
            assert not audit_binding(
                two_phase_problem, conflicts, result.binding, None
            )

    def test_random_bindings_vary_with_seed(self):
        problem = problem_from_activity(
            [[(0, 10)], [(20, 10)], [(40, 10)], [(60, 10)], [(80, 10)]],
            total_cycles=100,
            window_size=100,
        )
        conflicts = conflicts_for(problem)
        bindings = {
            solve_assignment(
                problem, conflicts, 3, rng=random.Random(seed)
            ).binding
            for seed in range(10)
        }
        assert len(bindings) > 1
