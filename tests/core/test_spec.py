"""Unit tests for synthesis configuration and result objects."""

import pytest

from repro.core import BusBinding, CrossbarDesign, SynthesisConfig
from repro.errors import ConfigurationError


class TestSynthesisConfig:
    def test_defaults_valid(self):
        config = SynthesisConfig()
        assert config.overlap_threshold == pytest.approx(0.3)
        assert config.backend == "assignment"

    def test_threshold_beyond_half_rejected(self):
        # Sec. 7.4: beyond 50% the bandwidth constraint fails anyway.
        with pytest.raises(ConfigurationError):
            SynthesisConfig(overlap_threshold=0.6)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            SynthesisConfig(overlap_threshold=-0.1)

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            SynthesisConfig(window_size=0)

    def test_bad_maxtb_rejected(self):
        with pytest.raises(ConfigurationError):
            SynthesisConfig(max_targets_per_bus=0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            SynthesisConfig(backend="cplex")


class TestBusBinding:
    def test_valid_binding(self):
        binding = BusBinding(binding=(0, 1, 0, 2), num_buses=3)
        assert binding.targets_on_bus(0) == (0, 2)
        assert binding.as_list() == [0, 1, 0, 2]

    def test_sparse_numbering_rejected(self):
        with pytest.raises(ConfigurationError):
            BusBinding(binding=(0, 2), num_buses=3)

    def test_bus_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            BusBinding(binding=(0, 0), num_buses=2)

    def test_more_buses_than_targets_rejected(self):
        with pytest.raises(ConfigurationError):
            BusBinding(binding=(0,), num_buses=2)


class TestCrossbarDesign:
    def test_bus_count_sums_both_sides(self):
        design = CrossbarDesign(
            it=BusBinding(binding=(0, 1, 0), num_buses=2),
            ti=BusBinding(binding=(0, 0), num_buses=1),
        )
        assert design.bus_count == 3

    def test_size_ratio(self):
        small = CrossbarDesign(
            it=BusBinding(binding=(0, 0, 0), num_buses=1),
            ti=BusBinding(binding=(0, 0), num_buses=1),
        )
        full = CrossbarDesign(
            it=BusBinding(binding=(0, 1, 2), num_buses=3),
            ti=BusBinding(binding=(0, 1), num_buses=2),
        )
        assert small.size_ratio_vs(full) == pytest.approx(2.5)
