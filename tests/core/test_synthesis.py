"""Integration tests: the full four-phase synthesis flow on real apps."""

import pytest

from repro.apps import build_application
from repro.core import (
    CrossbarSynthesizer,
    SynthesisConfig,
    audit_binding,
    average_traffic_design,
    full_crossbar_design,
    peak_bandwidth_design,
    shared_bus_design,
)


@pytest.fixture(scope="module")
def mat2_app():
    return build_application("mat2")


@pytest.fixture(scope="module")
def mat2_trace(mat2_app):
    return mat2_app.simulate_full_crossbar().trace


@pytest.fixture(scope="module")
def mat2_report(mat2_app, mat2_trace):
    synthesizer = CrossbarSynthesizer(SynthesisConfig())
    return synthesizer.design(mat2_app, trace=mat2_trace)


class TestMat2Synthesis:
    def test_three_buses_per_crossbar(self, mat2_report):
        # Paper Sec. 7.1: Mat2's IT crossbar uses 3 buses; the total of
        # 6 gives the 3.5x saving of Table 2.
        assert mat2_report.design.it.num_buses == 3
        assert mat2_report.design.ti.num_buses == 3
        assert mat2_report.design.bus_count == 6

    def test_each_bus_carries_three_private_memories(self, mat2_report):
        # Paper Sec. 7.1: "Each of the bus has 3 private memories and one
        # of the common memories connected to it."
        binding = mat2_report.design.it
        for bus in range(binding.num_buses):
            members = binding.targets_on_bus(bus)
            private = [t for t in members if t < 9]
            assert len(private) == 3

    def test_buses_mix_pipeline_stages(self, mat2_report):
        # Optimal binding groups cores of *different* stages (stage =
        # arm % 3), minimizing temporal overlap per bus.
        binding = mat2_report.design.it
        for bus in range(binding.num_buses):
            stages = sorted(
                t % 3 for t in binding.targets_on_bus(bus) if t < 9
            )
            assert stages == [0, 1, 2]

    def test_bindings_pass_audit(self, mat2_report):
        config = mat2_report.config
        for report in (mat2_report.it_report, mat2_report.ti_report):
            assert not audit_binding(
                report.problem,
                report.conflicts,
                report.binding.binding,
                config.max_targets_per_bus,
            )

    def test_designed_latency_close_to_full_crossbar(
        self, mat2_app, mat2_report
    ):
        synthesizer = CrossbarSynthesizer()
        validation = synthesizer.validate(
            mat2_app, mat2_report.design, max_cycles=mat2_app.sim_cycles * 3
        )
        assert validation.finished
        full = mat2_app.simulate_full_crossbar()
        ratio = validation.latency_stats().mean / full.latency_stats().mean
        assert ratio < 1.6  # paper: acceptable bounds from the minimum

    def test_summary_mentions_key_facts(self, mat2_report):
        text = mat2_report.summary()
        assert "3 IT buses + 3 TI buses = 6" in text
        assert "window size" in text

    def test_search_probed_binary_trajectory(self, mat2_report):
        probes = mat2_report.it_report.search.probes
        assert probes[3] is True
        assert all(not ok for count, ok in probes.items() if count < 3)


class TestBaselineDesigns:
    def test_average_design_is_smaller_but_valid(self, mat2_trace):
        design = average_traffic_design(mat2_trace)
        assert design.label == "average-traffic"
        assert design.bus_count < 6  # averages hide the peaks

    def test_peak_design_oversizes(self, mat2_trace):
        windowed = CrossbarSynthesizer().design_from_trace(mat2_trace, 1_000)
        peak = peak_bandwidth_design(mat2_trace, window_size=1_000)
        assert peak.bus_count > windowed.design.bus_count

    def test_reference_designs(self, mat2_trace):
        shared = shared_bus_design(mat2_trace)
        full = full_crossbar_design(mat2_trace)
        assert shared.bus_count == 2
        assert full.bus_count == 21
        # Table 1's size ratio: full / shared = 10.5
        assert shared.size_ratio_vs(full) == pytest.approx(10.5)


class TestWindowExtremes:
    def test_whole_run_window_degenerates_to_average(self, mat2_app, mat2_trace):
        config = SynthesisConfig(
            window_size=mat2_trace.total_cycles,
            overlap_threshold=0.5,
            max_targets_per_bus=None,
            use_criticality=False,
        )
        report = CrossbarSynthesizer(config).design(mat2_app, trace=mat2_trace)
        average = average_traffic_design(mat2_trace)
        assert report.design.bus_count == average.bus_count

    def test_smaller_windows_never_shrink_the_crossbar(
        self, mat2_app, mat2_trace
    ):
        sizes = {}
        for window in (500, 2_000, mat2_trace.total_cycles):
            config = SynthesisConfig(
                window_size=window, max_targets_per_bus=None
            )
            report = CrossbarSynthesizer(config).design(
                mat2_app, trace=mat2_trace
            )
            sizes[window] = report.design.bus_count
        assert sizes[500] >= sizes[2_000] >= sizes[mat2_trace.total_cycles]
