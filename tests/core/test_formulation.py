"""Tests for the literal MILP formulation and solver cross-validation.

The specialized assignment solver and the Eq. 3-11 MILP must agree on
feasibility verdicts and binding objectives -- the paper's results cannot
depend on which solver answered.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CrossbarDesignProblem, SynthesisConfig, build_conflicts
from repro.core.assignment import solve_assignment
from repro.core.binding import binding_overlap_objective
from repro.core.formulation import (
    build_binding_model,
    build_feasibility_model,
)
from repro.milp import BranchBoundOptions, SolveStatus, solve_milp

from tests.traffic.test_windows import random_trace


def conflicts_for(problem, threshold=0.3):
    return build_conflicts(problem, SynthesisConfig(overlap_threshold=threshold))


class TestModelStructure:
    def test_feasibility_model_variable_count(self, two_phase_problem):
        conflicts = conflicts_for(two_phase_problem, 0.5)
        crossbar = build_feasibility_model(two_phase_problem, conflicts, 2)
        # x variables only: 4 targets x 2 buses
        assert len(crossbar.model.variables) == 8
        assert crossbar.maxov is None

    def test_binding_model_has_objective(self, two_phase_problem):
        conflicts = conflicts_for(two_phase_problem, 0.5)
        crossbar = build_binding_model(two_phase_problem, conflicts, 2)
        assert crossbar.maxov is not None
        assert crossbar.model.objective.terms

    def test_extract_binding_renumbers_densely(self, two_phase_problem):
        conflicts = conflicts_for(two_phase_problem, 0.5)
        crossbar = build_feasibility_model(two_phase_problem, conflicts, 3)
        solution = solve_milp(
            crossbar.model, BranchBoundOptions(feasibility_only=True)
        )
        binding = crossbar.extract_binding(solution)
        used = max(binding) + 1
        assert set(binding) == set(range(used))


class TestSolverAgreement:
    def test_two_phase_feasibility_agrees(self, two_phase_problem):
        conflicts = conflicts_for(two_phase_problem, 0.5)
        for num_buses in (1, 2, 3):
            milp_model = build_feasibility_model(
                two_phase_problem, conflicts, num_buses
            )
            milp = solve_milp(
                milp_model.model, BranchBoundOptions(feasibility_only=True)
            )
            assignment = solve_assignment(
                two_phase_problem, conflicts, num_buses
            )
            assert milp.is_feasible == assignment.is_feasible

    def test_two_phase_binding_objective_agrees(self, two_phase_problem):
        conflicts = conflicts_for(two_phase_problem, 0.5)
        milp_model = build_binding_model(two_phase_problem, conflicts, 2)
        milp = solve_milp(milp_model.model)
        assignment = solve_assignment(
            two_phase_problem, conflicts, 2, optimize=True
        )
        assert milp.status is SolveStatus.OPTIMAL
        assert milp.objective == pytest.approx(assignment.objective)

    @settings(max_examples=15, deadline=None)
    @given(random_trace(), st.integers(1, 3))
    def test_feasibility_agreement_on_random_problems(self, trace, num_buses):
        problem = CrossbarDesignProblem.from_trace(
            trace, window_size=max(1, trace.total_cycles // 2)
        )
        conflicts = conflicts_for(problem, 0.25)
        milp_model = build_feasibility_model(problem, conflicts, num_buses)
        milp = solve_milp(
            milp_model.model, BranchBoundOptions(feasibility_only=True)
        )
        assignment = solve_assignment(problem, conflicts, num_buses)
        assert milp.is_feasible == assignment.is_feasible

    @settings(max_examples=10, deadline=None)
    @given(random_trace())
    def test_binding_objective_agreement_on_random_problems(self, trace):
        problem = CrossbarDesignProblem.from_trace(
            trace, window_size=max(1, trace.total_cycles // 2)
        )
        conflicts = conflicts_for(problem, 0.25)
        num_buses = 2
        assignment = solve_assignment(
            problem, conflicts, num_buses, optimize=True
        )
        milp_model = build_binding_model(problem, conflicts, num_buses)
        milp = solve_milp(milp_model.model)
        if assignment.is_feasible:
            assert milp.status is SolveStatus.OPTIMAL
            assert milp.objective == pytest.approx(float(assignment.objective))
            # MILP's binding must evaluate to its own objective value
            binding = milp_model.extract_binding(milp)
            assert binding_overlap_objective(problem, binding) == pytest.approx(
                milp.objective
            )
        else:
            assert milp.status is SolveStatus.INFEASIBLE
