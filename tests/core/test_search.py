"""Unit tests for the binary configuration search."""

from hypothesis import given, settings

from repro.core import CrossbarDesignProblem, SynthesisConfig, build_conflicts
from repro.core.assignment import solve_assignment
from repro.core.search import search_minimum_buses

from tests.core.conftest import problem_from_activity
from tests.traffic.test_windows import random_trace


def run_search(problem, config=None):
    config = config or SynthesisConfig(max_targets_per_bus=None)
    conflicts = build_conflicts(problem, config)
    return search_minimum_buses(problem, conflicts, config), conflicts, config


class TestKnownInstances:
    def test_two_phase_needs_two_buses(self, two_phase_problem):
        outcome, _, _ = run_search(two_phase_problem)
        assert outcome.num_buses == 2

    def test_light_traffic_needs_one_bus(self):
        problem = problem_from_activity(
            [[(0, 10)], [(30, 10)], [(60, 10)]],
            total_cycles=100,
            window_size=100,
        )
        outcome, _, _ = run_search(problem)
        assert outcome.num_buses == 1

    def test_conflict_clique_drives_count(self):
        # three mutually overlapping targets force three buses even
        # though bandwidth alone would need two
        problem = problem_from_activity(
            [[(0, 40)], [(0, 40)], [(0, 40)]],
            total_cycles=100,
            window_size=100,
        )
        config = SynthesisConfig(
            overlap_threshold=0.3, max_targets_per_bus=None
        )
        outcome, _, _ = run_search(problem, config)
        assert outcome.num_buses == 3
        assert outcome.lower_bound == 3  # clique bound found it analytically

    def test_maxtb_bound_enters_search(self):
        problem = problem_from_activity(
            [[(i * 10, 5)] for i in range(6)],
            total_cycles=100,
            window_size=100,
        )
        config = SynthesisConfig(max_targets_per_bus=2)
        outcome, _, _ = run_search(problem, config)
        assert outcome.num_buses == 3  # ceil(6 / 2)

    def test_witness_binding_is_feasible(self, two_phase_problem):
        from repro.core import audit_binding

        outcome, conflicts, config = run_search(two_phase_problem)
        assert not audit_binding(
            two_phase_problem,
            conflicts,
            outcome.feasible_binding,
            config.max_targets_per_bus,
        )

    def test_probes_record_trajectory(self, two_phase_problem):
        outcome, _, _ = run_search(two_phase_problem)
        assert outcome.probes[outcome.num_buses] is True
        # every probed count below the answer must have been infeasible
        for count, feasible in outcome.probes.items():
            assert feasible == (count >= outcome.num_buses)


class TestMinimality:
    @settings(max_examples=20, deadline=None)
    @given(random_trace())
    def test_result_is_minimal(self, trace):
        problem = CrossbarDesignProblem.from_trace(
            trace, window_size=max(1, trace.total_cycles // 3)
        )
        config = SynthesisConfig(max_targets_per_bus=None)
        conflicts = build_conflicts(problem, config)
        outcome = search_minimum_buses(problem, conflicts, config)
        # feasible at the answer
        assert solve_assignment(
            problem, conflicts, outcome.num_buses
        ).is_feasible
        # infeasible just below it
        if outcome.num_buses > 1:
            assert not solve_assignment(
                problem, conflicts, outcome.num_buses - 1
            ).is_feasible

    @settings(max_examples=15, deadline=None)
    @given(random_trace())
    def test_lower_bound_is_sound(self, trace):
        problem = CrossbarDesignProblem.from_trace(
            trace, window_size=max(1, trace.total_cycles // 3)
        )
        config = SynthesisConfig(max_targets_per_bus=None)
        conflicts = build_conflicts(problem, config)
        outcome = search_minimum_buses(problem, conflicts, config)
        assert outcome.lower_bound <= outcome.num_buses

    def test_milp_backend_agrees_with_assignment(self, two_phase_problem):
        assignment_outcome, _, _ = run_search(
            two_phase_problem, SynthesisConfig(max_targets_per_bus=None)
        )
        milp_outcome, _, _ = run_search(
            two_phase_problem,
            SynthesisConfig(max_targets_per_bus=None, backend="milp"),
        )
        assert milp_outcome.num_buses == assignment_outcome.num_buses
