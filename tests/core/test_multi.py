"""Multi-scenario merge policies and robust synthesis."""

import numpy as np
import pytest

from repro.core import (
    RobustSynthesizer,
    SynthesisConfig,
    build_conflicts,
    merge_conflict_analyses,
    merge_criticality,
    merge_problems,
)
from repro.core.preprocess import ConflictAnalysis
from repro.errors import ConfigurationError
from repro.traffic.criticality import CriticalityReport
from repro.traffic.synthetic import SyntheticTrafficConfig, generate_synthetic_trace

from tests.core.conftest import problem_from_activity


def small_problem(spans, total_cycles=400, window=100):
    return problem_from_activity(spans, total_cycles, window)


def conflict_analysis(num_targets, pairs, rule="threshold"):
    matrix = np.zeros((num_targets, num_targets), dtype=bool)
    reasons = {}
    for i, j in pairs:
        matrix[i, j] = matrix[j, i] = True
        reasons[(min(i, j), max(i, j))] = frozenset({rule})
    return ConflictAnalysis(matrix=matrix, reasons=reasons)


class TestMergeProblems:
    def test_union_concatenates_windows(self):
        a = small_problem([[(0, 50)], [(100, 50)]])
        b = small_problem([[(0, 80)], [(200, 30)]], total_cycles=800, window=200)
        merged = merge_problems([a, b], policy="union")
        assert merged.num_windows == a.num_windows + b.num_windows
        assert merged.num_targets == a.num_targets
        np.testing.assert_array_equal(
            merged.comm, np.concatenate([a.comm, b.comm], axis=1)
        )
        np.testing.assert_array_equal(
            merged.capacities, np.concatenate([a.capacities, b.capacities])
        )

    def test_worst_case_takes_elementwise_envelope(self):
        a = small_problem([[(0, 50)], [(100, 80)]])
        b = small_problem([[(0, 70)], [(100, 20)]])
        merged = merge_problems([a, b], policy="worst-case")
        assert merged.num_windows == a.num_windows
        np.testing.assert_array_equal(merged.comm, np.maximum(a.comm, b.comm))

    def test_criticality_reports_are_unioned(self):
        merged = merge_criticality(
            [
                CriticalityReport(critical_targets=(0,), conflicting_pairs=((0, 1),)),
                CriticalityReport(critical_targets=(2,), conflicting_pairs=((1, 2),)),
            ]
        )
        assert merged.critical_targets == (0, 2)
        assert merged.conflicting_pairs == ((0, 1), (1, 2))

    def test_mismatched_target_counts_rejected(self):
        a = small_problem([[(0, 50)], [(100, 50)]])
        b = small_problem([[(0, 50)], [(100, 50)], [(200, 50)]])
        with pytest.raises(ConfigurationError):
            merge_problems([a, b])

    def test_empty_input_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_problems([])


class TestMergeConflicts:
    def test_union_keeps_every_pair(self):
        merged = merge_conflict_analyses(
            [
                conflict_analysis(4, [(0, 1)]),
                conflict_analysis(4, [(2, 3)], rule="bandwidth"),
            ],
            policy="union",
        )
        assert set(merged.reasons) == {(0, 1), (2, 3)}
        assert merged.reasons[(0, 1)] == frozenset({"threshold"})
        assert merged.reasons[(2, 3)] == frozenset({"bandwidth"})

    def test_union_merges_rules_for_shared_pairs(self):
        merged = merge_conflict_analyses(
            [
                conflict_analysis(4, [(0, 1)], rule="threshold"),
                conflict_analysis(4, [(0, 1)], rule="real-time"),
            ]
        )
        assert merged.reasons[(0, 1)] == frozenset({"threshold", "real-time"})

    def test_weighted_drops_rare_pairs(self):
        merged = merge_conflict_analyses(
            [
                conflict_analysis(4, [(0, 1)]),
                conflict_analysis(4, [(0, 1)]),
                conflict_analysis(4, [(2, 3)]),
            ],
            policy="weighted",
            weights=[1.0, 1.0, 1.0],
            min_weight=0.5,
        )
        assert set(merged.reasons) == {(0, 1)}

    def test_weighted_respects_scenario_weights(self):
        merged = merge_conflict_analyses(
            [
                conflict_analysis(4, [(0, 1)]),
                conflict_analysis(4, [(2, 3)]),
            ],
            policy="weighted",
            weights=[9.0, 1.0],
            min_weight=0.5,
        )
        assert set(merged.reasons) == {(0, 1)}

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_conflict_analyses(
                [conflict_analysis(4, [(0, 1)])],
                policy="weighted",
                weights=[1.0, 2.0],
            )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_conflict_analyses(
                [conflict_analysis(4, [(0, 1)])], policy="psychic"
            )


class TestRobustSynthesizer:
    @pytest.fixture(scope="class")
    def traces(self):
        configs = [
            SyntheticTrafficConfig(
                num_initiators=4, num_targets=4, total_cycles=8_000,
                burst_cycles=300, gap_cycles=900, seed=seed,
            )
            for seed in (1, 2, 3)
        ]
        return [generate_synthetic_trace(config) for config in configs]

    def test_union_binding_feasible_for_every_scenario(self, traces):
        config = SynthesisConfig(max_targets_per_bus=None)
        report = RobustSynthesizer(config, policy="union").design(
            traces, [600] * len(traces)
        )
        assert report.total_violations == 0
        for check in report.it_report.scenario_checks:
            assert check.clean

    def test_union_buses_dominate_individual_designs(self, traces):
        config = SynthesisConfig(max_targets_per_bus=None)
        robust = RobustSynthesizer(config, policy="union").design(
            traces, [600] * len(traces)
        )
        from repro.core import CrossbarSynthesizer

        for trace in traces:
            individual = CrossbarSynthesizer(config).design_from_trace(trace, 600)
            assert (
                robust.design.it.num_buses
                >= individual.design.it.num_buses
            )

    def test_window_sizes_can_differ_per_scenario(self, traces):
        config = SynthesisConfig(max_targets_per_bus=None)
        report = RobustSynthesizer(config).design(traces, [400, 600, 800])
        assert report.total_violations == 0

    def test_scenario_names_flow_into_checks(self, traces):
        report = RobustSynthesizer().design(
            traces, [600] * len(traces), names=["a", "b", "c"]
        )
        assert [c.name for c in report.it_report.scenario_checks] == ["a", "b", "c"]

    def test_mismatched_lengths_rejected(self, traces):
        with pytest.raises(ConfigurationError):
            RobustSynthesizer().design(traces, [600])


class TestUnionConflictsMatchConcatenatedProblem:
    def test_union_equals_conflicts_of_concatenated_problem(self):
        """The union of per-scenario conflict matrices must agree with
        building conflicts directly on the window-concatenated problem
        (both rules quantify over 'any window')."""
        config = SynthesisConfig(max_targets_per_bus=None, use_criticality=False)
        problems = [
            small_problem([[(0, 90)], [(10, 85)], [(200, 20)]]),
            small_problem([[(300, 15)], [(100, 90)], [(110, 88)]]),
        ]
        per_scenario = [build_conflicts(p, config) for p in problems]
        union = merge_conflict_analyses(per_scenario, policy="union")
        concatenated = build_conflicts(merge_problems(problems), config)
        np.testing.assert_array_equal(union.matrix, concatenated.matrix)
