"""Shared fixtures for synthesis-layer tests."""

import pytest

from repro.core import CrossbarDesignProblem, SynthesisConfig
from repro.traffic import TrafficTrace

from tests.traffic.conftest import make_record


def problem_from_activity(activity, total_cycles, window_size, criticals=()):
    """Build a design problem from per-target (start, duration) lists.

    ``activity[t]`` is a list of busy intervals of target ``t``; each
    becomes one record of a synthetic trace.
    """
    records = []
    for target, spans in enumerate(activity):
        for start, duration in spans:
            records.append(
                make_record(
                    initiator=0,
                    target=target,
                    start=start,
                    duration=duration,
                    critical=target in criticals,
                )
            )
    # responses complete one cycle after the activity interval ends
    horizon = max(
        [total_cycles] + [record.complete for record in records]
    )
    trace = TrafficTrace(records, 1, len(activity), total_cycles=horizon)
    problem = CrossbarDesignProblem.from_trace(trace, window_size)
    return problem


@pytest.fixture
def two_phase_problem():
    """Four targets: 0,1 busy in even windows; 2,3 in odd windows.

    Each is busy 60 of 100 cycles in its window, so any same-phase pair
    exceeds the bandwidth of one bus while cross-phase pairs fit
    perfectly.
    """
    activity = [
        [(0, 60), (200, 60)],
        [(20, 60), (220, 60)],
        [(100, 60), (300, 60)],
        [(120, 60), (320, 60)],
    ]
    return problem_from_activity(activity, total_cycles=400, window_size=100)


@pytest.fixture
def default_config():
    return SynthesisConfig()
