"""End-to-end tests for variable-window (QoS) synthesis."""

import numpy as np
import pytest

from repro.apps.synthetic import build_synthetic, synthetic_trace
from repro.core import (
    CrossbarDesignProblem,
    CrossbarSynthesizer,
    SynthesisConfig,
    audit_binding,
)
from repro.errors import ConfigurationError
from repro.traffic import phase_aligned_boundaries


@pytest.fixture(scope="module")
def small_trace():
    return synthetic_trace(
        burst_cycles=400, total_cycles=24_000, num_initiators=6,
        num_targets=6, seed=5,
    )


class TestConfig:
    def test_flag_defaults_off(self):
        assert not SynthesisConfig().variable_windows

    def test_bad_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            SynthesisConfig(variable_windows=True, variable_window_ratio=0)


class TestProblemConstruction:
    def test_from_trace_boundaries(self, small_trace):
        edges = phase_aligned_boundaries(
            small_trace, min_window=100, max_window=1_000
        )
        problem = CrossbarDesignProblem.from_trace_boundaries(
            small_trace, edges
        )
        assert problem.num_windows == len(edges) - 1
        assert problem.capacities.tolist() == list(np.diff(edges))
        assert (problem.comm <= problem.capacities).all()

    def test_capacity_validation(self, small_trace):
        problem = CrossbarDesignProblem.from_trace(small_trace, 800)
        from repro.errors import SynthesisError

        with pytest.raises(SynthesisError):
            CrossbarDesignProblem(
                comm=problem.comm,
                wo=problem.wo,
                window_size=problem.window_size,
                criticality=problem.criticality,
                target_names=problem.target_names,
                capacities=np.ones(3, dtype=np.int64),  # wrong length
            )


class TestSynthesisFlow:
    def test_variable_window_design_is_auditable(self, small_trace):
        config = SynthesisConfig(
            window_size=1_000,
            variable_windows=True,
            max_targets_per_bus=None,
        )
        report = CrossbarSynthesizer(config).design_from_trace(small_trace)
        for side in (report.it_report, report.ti_report):
            assert not side.problem.capacities.min() < 1
            assert audit_binding(
                side.problem,
                side.conflicts,
                side.binding.binding,
                config.max_targets_per_bus,
            ) == []

    def test_variable_windows_track_phases_with_fewer_windows(
        self, small_trace
    ):
        uniform = CrossbarDesignProblem.from_trace(small_trace, 200)
        edges = phase_aligned_boundaries(
            small_trace, min_window=200, max_window=1_000
        )
        variable = CrossbarDesignProblem.from_trace_boundaries(
            small_trace, edges
        )
        # phase alignment needs far fewer windows than the uniform grid
        # at the same resolution floor
        assert variable.num_windows < uniform.num_windows

    def test_variable_design_no_larger_than_fine_uniform(self, small_trace):
        base = dict(max_targets_per_bus=None, overlap_threshold=0.4)
        fine = CrossbarSynthesizer(
            SynthesisConfig(window_size=250, **base)
        ).design_from_trace(small_trace)
        variable = CrossbarSynthesizer(
            SynthesisConfig(
                window_size=1_000, variable_windows=True,
                variable_window_ratio=4, **base,
            )
        ).design_from_trace(small_trace)
        assert (
            variable.design.bus_count <= fine.design.bus_count
        )

    def test_replayable_validation(self):
        app = build_synthetic(burst_cycles=400, total_cycles=24_000, seed=5)
        trace = app.simulate_full_crossbar().trace
        config = SynthesisConfig(
            window_size=800, variable_windows=True, max_targets_per_bus=None
        )
        report = CrossbarSynthesizer(config).design(app, trace=trace)
        validation = app.simulate(
            report.design.it.as_list(),
            report.design.ti.as_list(),
            app.sim_cycles,
        )
        assert validation.finished
        full = app.simulate_full_crossbar()
        ratio = validation.latency_stats().mean / full.latency_stats().mean
        assert ratio < 2.0
