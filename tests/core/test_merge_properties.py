"""Property tests for multi-scenario merging (hypothesis).

The robustness guarantees the scenario subsystem leans on:

* the union-merged conflict matrix *dominates* every per-scenario
  matrix (element-wise implication),
* the robust (union-merged) design problem never admits fewer buses
  than any individual scenario's optimum,
* the robust witness binding replays on every scenario without
  violations.

Problems are drawn directly as randomized ``comm``/``wo`` tensors (not
traces) so the search spaces stay small enough for exhaustive solving
inside hypothesis's example budget.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    SynthesisConfig,
    audit_binding,
    build_conflicts,
    merge_conflict_analyses,
    merge_problems,
    search_minimum_buses,
)
from repro.core.problem import CrossbarDesignProblem
from repro.traffic.criticality import CriticalityReport

CAPACITY = 100
CONFIG = SynthesisConfig(
    max_targets_per_bus=None, use_criticality=False, overlap_threshold=0.3
)


@st.composite
def design_problem(draw, num_targets):
    """A consistent random problem: wo[i][j][m] <= min of the comms."""
    num_windows = draw(st.integers(1, 3))
    comm = np.array(
        [
            [draw(st.integers(0, CAPACITY)) for _ in range(num_windows)]
            for _ in range(num_targets)
        ],
        dtype=np.int64,
    )
    wo = np.zeros((num_targets, num_targets, num_windows), dtype=np.int64)
    for i in range(num_targets):
        for j in range(i + 1, num_targets):
            for m in range(num_windows):
                bound = int(min(comm[i, m], comm[j, m]))
                wo[i, j, m] = wo[j, i, m] = draw(st.integers(0, bound))
    return CrossbarDesignProblem(
        comm=comm,
        wo=wo,
        window_size=CAPACITY,
        criticality=CriticalityReport(),
        target_names=tuple(f"t{k}" for k in range(num_targets)),
    )


@st.composite
def scenario_problems(draw):
    """2-3 scenarios over one shared platform of 2-4 targets."""
    num_targets = draw(st.integers(2, 4))
    count = draw(st.integers(2, 3))
    return [draw(design_problem(num_targets)) for _ in range(count)]


@settings(max_examples=40, deadline=None)
@given(problems=scenario_problems())
def test_union_matrix_dominates_every_scenario_matrix(problems):
    per_scenario = [build_conflicts(p, CONFIG) for p in problems]
    union = merge_conflict_analyses(per_scenario, policy="union")
    for analysis in per_scenario:
        # wherever a scenario sees a conflict, the union must too
        assert bool(np.all(union.matrix >= analysis.matrix))
    # and the union invents nothing: every union pair exists somewhere
    claimed = set(union.reasons)
    observed = set().union(*(set(a.reasons) for a in per_scenario))
    assert claimed == observed


@settings(max_examples=40, deadline=None)
@given(problems=scenario_problems())
def test_weighted_matrix_is_a_subset_of_union(problems):
    per_scenario = [build_conflicts(p, CONFIG) for p in problems]
    union = merge_conflict_analyses(per_scenario, policy="union")
    weighted = merge_conflict_analyses(
        per_scenario, policy="weighted", min_weight=0.6
    )
    assert bool(np.all(union.matrix >= weighted.matrix))
    assert set(weighted.reasons) <= set(union.reasons)


@settings(max_examples=25, deadline=None)
@given(problems=scenario_problems())
def test_robust_bus_count_dominates_every_scenario_optimum(problems):
    per_scenario = [build_conflicts(p, CONFIG) for p in problems]
    individual = [
        search_minimum_buses(problem, conflicts, CONFIG).num_buses
        for problem, conflicts in zip(problems, per_scenario)
    ]
    merged = merge_problems(problems, policy="union")
    union = merge_conflict_analyses(per_scenario, policy="union")
    robust = search_minimum_buses(merged, union, CONFIG)
    assert robust.num_buses >= max(individual)


@settings(max_examples=25, deadline=None)
@given(problems=scenario_problems())
def test_robust_witness_replays_clean_on_every_scenario(problems):
    per_scenario = [build_conflicts(p, CONFIG) for p in problems]
    merged = merge_problems(problems, policy="union")
    union = merge_conflict_analyses(per_scenario, policy="union")
    robust = search_minimum_buses(merged, union, CONFIG)
    for problem, conflicts in zip(problems, per_scenario):
        violations = audit_binding(
            problem, conflicts, robust.feasible_binding, max_targets_per_bus=None
        )
        assert violations == []


@settings(max_examples=25, deadline=None)
@given(problems=scenario_problems())
def test_worst_case_envelope_dominates_union_conflicts(problems):
    """The envelope problem's conflicts are a superset of the union:
    element-wise maxima can only raise overlap/demand past thresholds."""
    aligned = all(p.num_windows == problems[0].num_windows for p in problems)
    if not aligned:
        problems = [problems[0], problems[0]]  # degenerate but well-formed
    per_scenario = [build_conflicts(p, CONFIG) for p in problems]
    union = merge_conflict_analyses(per_scenario, policy="union")
    envelope = build_conflicts(
        merge_problems(problems, policy="worst-case"), CONFIG
    )
    assert bool(np.all(envelope.matrix >= union.matrix))
