"""Unit tests for the conflict-matrix pre-processing phase."""

import numpy as np

from repro.core import SynthesisConfig, build_conflicts

from tests.core.conftest import problem_from_activity


class TestThresholdRule:
    def test_heavy_overlap_conflicts(self):
        # both targets busy [0, 60) in a 100-cycle window: overlap 60%.
        problem = problem_from_activity(
            [[(0, 60)], [(0, 60)]], total_cycles=100, window_size=100
        )
        analysis = build_conflicts(problem, SynthesisConfig(overlap_threshold=0.3))
        assert analysis.matrix[0, 1]
        assert "threshold" in analysis.reasons[0, 1]

    def test_light_overlap_passes(self):
        # overlap is 10 cycles = 10% of the window
        problem = problem_from_activity(
            [[(0, 30)], [(20, 30)]], total_cycles=100, window_size=100
        )
        analysis = build_conflicts(problem, SynthesisConfig(overlap_threshold=0.3))
        assert (0, 1) not in analysis.reasons or (
            "threshold" not in analysis.reasons[0, 1]
        )

    def test_single_bad_window_suffices(self):
        # two quiet windows, one with 40% overlap: still a conflict
        problem = problem_from_activity(
            [[(200, 45)], [(200, 45)]], total_cycles=300, window_size=100
        )
        analysis = build_conflicts(problem, SynthesisConfig(overlap_threshold=0.3))
        assert analysis.matrix[0, 1]

    def test_threshold_is_strict(self):
        # overlap exactly at the threshold does not conflict
        problem = problem_from_activity(
            [[(0, 30)], [(0, 30)]], total_cycles=100, window_size=100
        )
        analysis = build_conflicts(problem, SynthesisConfig(overlap_threshold=0.3))
        assert ("threshold" not in analysis.reasons.get((0, 1), frozenset()))


class TestBandwidthRule:
    def test_fitting_pair_passes(self):
        # 60 + 40 = 100 <= 100: exactly fits one bus, no conflict
        problem = problem_from_activity(
            [[(0, 60)], [(60, 40)]], total_cycles=100, window_size=100
        )
        analysis = build_conflicts(problem, SynthesisConfig())
        assert not analysis.matrix[0, 1]

    def test_overflow_pair_conflicts_below_overlap_threshold(self):
        # 60 + 60 = 120 > 100 while overlapping only 20 cycles (20%),
        # safely under the 50% threshold: only the bandwidth rule fires.
        problem = problem_from_activity(
            [[(0, 60)], [(40, 60)]], total_cycles=100, window_size=100
        )
        analysis = build_conflicts(
            problem, SynthesisConfig(overlap_threshold=0.5)
        )
        assert analysis.matrix[0, 1]
        assert analysis.reasons[0, 1] == frozenset({"bandwidth"})


class TestRealTimeRule:
    def test_overlapping_critical_streams_conflict(self):
        problem = problem_from_activity(
            [[(0, 30)], [(10, 30)]],
            total_cycles=100,
            window_size=100,
            criticals={0, 1},
        )
        analysis = build_conflicts(problem, SynthesisConfig())
        assert analysis.matrix[0, 1]
        assert "real-time" in analysis.reasons[0, 1]

    def test_criticality_can_be_disabled(self):
        problem = problem_from_activity(
            [[(0, 30)], [(10, 30)]],
            total_cycles=100,
            window_size=100,
            criticals={0, 1},
        )
        analysis = build_conflicts(
            problem, SynthesisConfig(use_criticality=False)
        )
        assert not analysis.matrix[0, 1]


class TestAnalysisProperties:
    def test_matrix_symmetric(self):
        problem = problem_from_activity(
            [[(0, 60)], [(0, 60)], [(50, 40)]],
            total_cycles=100,
            window_size=100,
        )
        analysis = build_conflicts(problem, SynthesisConfig())
        assert np.array_equal(analysis.matrix, analysis.matrix.T)
        assert not analysis.matrix.diagonal().any()

    def test_clique_lower_bound_counts_mutual_conflicts(self):
        # three mutually overlapping heavy targets -> clique of 3
        problem = problem_from_activity(
            [[(0, 60)]] * 3 + [[(70, 20)]],
            total_cycles=100,
            window_size=100,
        )
        analysis = build_conflicts(problem, SynthesisConfig())
        assert analysis.clique_lower_bound() == 3

    def test_no_conflicts_bound_is_one(self):
        problem = problem_from_activity(
            [[(0, 20)], [(50, 20)]], total_cycles=100, window_size=100
        )
        analysis = build_conflicts(problem, SynthesisConfig())
        assert analysis.clique_lower_bound() == 1
        assert analysis.num_conflicts == 0
        assert analysis.conflicting_pairs() == []
