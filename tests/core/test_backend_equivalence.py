"""The cross-backend equivalence gate (byte-identity).

Every MILP backend is exact and the binding layer canonicalizes optimal
solutions, so the *serialized* search/binding outputs -- what reports
and persisted artifacts are built from -- must be byte-identical across
``reference``, ``highs``, and ``portfolio``, and must match the default
assignment backend (whose deterministic DFS is the canonical form).
This is what licenses sharing binding artifacts across backends
(``binding_stage_spec`` deliberately omits ``milp_backend``) and racing
them in the portfolio without perturbing any output.
"""

import dataclasses
import json

import pytest

from repro.core import (
    SynthesisConfig,
    build_conflicts,
    optimize_binding,
    search_minimum_buses,
)
from repro.milp import MILP_BACKENDS

from tests.core.conftest import problem_from_activity


@pytest.fixture(scope="module")
def problem():
    """Six targets in two activity phases: feasible at 2 buses with a
    degenerate optimum -- the case where backends naturally disagree on
    points unless canonicalized."""
    activity = [
        [(0, 60), (200, 60)],
        [(100, 60), (300, 60)],
        [(0, 30), (210, 30)],
        [(110, 30), (310, 30)],
        [(40, 20), (260, 20)],
        [(140, 20), (360, 20)],
    ]
    return problem_from_activity(activity, total_cycles=400, window_size=100)


def _solve_serialized(problem, config):
    """The byte surface: JSON of the search outcome + optimized binding."""
    conflicts = build_conflicts(problem, config)
    search = search_minimum_buses(problem, conflicts, config)
    binding = optimize_binding(problem, conflicts, search.num_buses, config)
    return json.dumps(
        {
            "search": {
                "num_buses": search.num_buses,
                "feasible_binding": list(search.feasible_binding),
                "lower_bound": search.lower_bound,
                "probes": {str(k): v for k, v in search.probes.items()},
            },
            "binding": {
                "binding": list(binding.binding),
                "num_buses": binding.num_buses,
                "max_bus_overlap": binding.max_bus_overlap,
                "optimal": binding.optimal,
            },
        },
        sort_keys=True,
    ).encode()


class TestByteIdentity:
    def test_all_milp_backends_identical(self, problem):
        outputs = {
            backend: _solve_serialized(
                problem,
                SynthesisConfig(backend="milp", milp_backend=backend),
            )
            for backend in MILP_BACKENDS
        }
        reference = outputs["reference"]
        for backend, payload in outputs.items():
            assert payload == reference, f"{backend} diverged from reference"

    def test_milp_matches_assignment_backend(self, problem):
        # The canonicalization DFS *is* the assignment solver, so the
        # milp tier converges onto the default backend's exact bytes.
        assignment = _solve_serialized(problem, SynthesisConfig())
        milp = _solve_serialized(
            problem, SynthesisConfig(backend="milp", milp_backend="reference")
        )
        assert milp == assignment

    def test_warm_start_does_not_change_bytes(self, problem):
        config = SynthesisConfig(backend="milp", milp_backend="highs")
        conflicts = build_conflicts(problem, config)
        cold_search = search_minimum_buses(problem, conflicts, config)
        cold_binding = optimize_binding(
            problem, conflicts, cold_search.num_buses, config
        )
        warm_search = search_minimum_buses(
            problem, conflicts, config,
            warm_binding=cold_binding.binding,
        )
        warm_binding = optimize_binding(
            problem, conflicts, warm_search.num_buses, config,
            warm_binding=cold_binding.binding,
        )
        assert warm_search == cold_search
        assert warm_binding == cold_binding

    def test_stale_warm_hint_rejected_not_corrupting(self, problem):
        # A hint of the wrong length (edited suite changed target count)
        # must be ignored, leaving the outcome untouched.
        config = SynthesisConfig(backend="milp", milp_backend="reference")
        conflicts = build_conflicts(problem, config)
        cold = search_minimum_buses(problem, conflicts, config)
        stale = search_minimum_buses(
            problem, conflicts, config, warm_binding=(0, 0)
        )
        assert stale == cold


class TestConfigValidation:
    def test_unknown_milp_backend_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SynthesisConfig(milp_backend="cplex")

    def test_milp_backend_excluded_from_stage_spec(self):
        from repro.pipeline.artifacts import binding_stage_spec

        config = SynthesisConfig(backend="milp")
        specs = {
            backend: binding_stage_spec(
                dataclasses.replace(config, milp_backend=backend)
            )
            for backend in MILP_BACKENDS
        }
        first = specs["reference"]
        assert all(spec == first for spec in specs.values())
