"""Unit tests for the design-problem container."""

import numpy as np
import pytest

from repro.core import CrossbarDesignProblem
from repro.errors import SynthesisError
from repro.traffic import TrafficTrace, WindowedTraffic, PairwiseOverlap

from tests.traffic.conftest import make_record


class TestFromTrace:
    def test_matches_windowed_traffic(self, simple_trace_records=None):
        records = [
            make_record(target=0, start=0, duration=10),
            make_record(target=1, start=5, duration=10),
        ]
        trace = TrafficTrace(records, 1, 2, total_cycles=40)
        problem = CrossbarDesignProblem.from_trace(trace, window_size=20)
        windowed = WindowedTraffic(trace, window_size=20)
        overlap = PairwiseOverlap(windowed)
        assert np.array_equal(problem.comm, windowed.comm)
        assert np.array_equal(problem.wo, overlap.wo)
        assert problem.window_size == 20
        assert problem.num_targets == 2
        assert problem.num_windows == 2

    def test_overlap_matrix_is_window_sum(self, two_phase_problem):
        om = two_phase_problem.overlap_matrix
        assert np.array_equal(om, two_phase_problem.wo.sum(axis=2))
        assert om[0, 1] > 0
        assert om[0, 2] == 0

    def test_bandwidth_lower_bound(self, two_phase_problem):
        # same-phase pairs need 120 cycles in a 100-cycle window -> 2 buses
        assert two_phase_problem.bandwidth_lower_bound() == 2

    def test_total_busy(self, two_phase_problem):
        assert two_phase_problem.total_busy().tolist() == [120, 120, 120, 120]

    def test_restricted_to(self, two_phase_problem):
        sub = two_phase_problem.restricted_to([0, 2])
        assert sub.num_targets == 2
        assert np.array_equal(sub.comm[0], two_phase_problem.comm[0])
        assert np.array_equal(sub.wo[0, 1], two_phase_problem.wo[0, 2])

    def test_describe_mentions_bound(self, two_phase_problem):
        assert "bandwidth LB = 2" in two_phase_problem.describe()


class TestValidation:
    def test_inconsistent_shapes_rejected(self, two_phase_problem):
        with pytest.raises(SynthesisError):
            CrossbarDesignProblem(
                comm=two_phase_problem.comm,
                wo=two_phase_problem.wo[:2, :2],
                window_size=100,
                criticality=two_phase_problem.criticality,
                target_names=two_phase_problem.target_names,
            )

    def test_comm_exceeding_window_rejected(self, two_phase_problem):
        with pytest.raises(SynthesisError):
            CrossbarDesignProblem(
                comm=two_phase_problem.comm * 10,
                wo=two_phase_problem.wo,
                window_size=100,
                criticality=two_phase_problem.criticality,
                target_names=two_phase_problem.target_names,
            )

    def test_name_length_mismatch_rejected(self, two_phase_problem):
        with pytest.raises(SynthesisError):
            CrossbarDesignProblem(
                comm=two_phase_problem.comm,
                wo=two_phase_problem.wo,
                window_size=100,
                criticality=two_phase_problem.criticality,
                target_names=("a",),
            )
