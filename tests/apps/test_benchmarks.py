"""Integration tests for the five benchmark suites and the registry."""

import pytest

from repro.apps import APPLICATIONS, build_application
from repro.errors import ApplicationError
from repro.traffic import WindowedTraffic

# (name, paper core count, ARM count)
PAPER_SIZES = [
    ("mat1", 25, 11),
    ("mat2", 21, 9),
    ("fft", 29, 13),
    ("qsort", 15, 6),
    ("des", 19, 8),
]


class TestRegistry:
    def test_all_paper_benchmarks_registered(self):
        for name, _, _ in PAPER_SIZES:
            assert name in APPLICATIONS
        assert "synthetic" in APPLICATIONS

    def test_unknown_name_rejected(self):
        with pytest.raises(ApplicationError):
            build_application("doom")

    @pytest.mark.parametrize("name,cores,arms", PAPER_SIZES)
    def test_core_counts_match_paper(self, name, cores, arms):
        app = build_application(name)
        assert app.num_cores == cores
        assert app.num_initiators == arms
        assert app.num_targets == cores - arms

    def test_default_trace_is_memoized_per_process(self):
        from repro.apps import default_full_crossbar_trace

        first = default_full_crossbar_trace("qsort")
        second = default_full_crossbar_trace("qsort")
        assert first is second  # one Phase-1 simulation serves everyone
        fresh = build_application("qsort").simulate_full_crossbar().trace
        assert first.records == fresh.records


class TestBenchmarkTraffic:
    @pytest.fixture(scope="class")
    def mat2_result(self):
        return build_application("mat2").simulate_full_crossbar()

    def test_simulation_completes(self, mat2_result):
        assert mat2_result.finished
        assert len(mat2_result.trace) > 1_000

    def test_common_targets_see_much_less_traffic(self, mat2_result):
        # Paper Sec 7.1: shared/sem/irq accesses are much lower than PMs.
        trace = mat2_result.trace
        pm_busy = [trace.target_busy_cycles(t) for t in range(9)]
        common_busy = [trace.target_busy_cycles(t) for t in (9, 11)]
        assert min(pm_busy) > 2 * max(common_busy)

    def test_private_memories_only_accessed_by_owner(self, mat2_result):
        for record in mat2_result.trace.records:
            if record.target < 9:  # private memories
                assert record.initiator == record.target

    def test_same_stage_cores_overlap_more_than_cross_stage(self, mat2_result):
        from repro.traffic import PairwiseOverlap

        windowed = WindowedTraffic(mat2_result.trace, window_size=1_000)
        overlap = PairwiseOverlap(windowed)
        om = overlap.overlap_matrix
        # stage = arm % 3: pm0 and pm3 share a stage; pm0 and pm1 do not.
        same_stage = om[0, 3]
        cross_stage = om[0, 1]
        assert same_stage > 3 * max(1, cross_stage)

    def test_bandwidth_lower_bound_matches_paper_shape(self, mat2_result):
        # Mat2's designed IT crossbar has 3 buses (paper Sec. 7.1).
        windowed = WindowedTraffic(mat2_result.trace, window_size=1_000)
        assert windowed.min_buses_bandwidth_bound() == 3

    def test_determinism(self):
        app = build_application("mat2")
        first = app.simulate_full_crossbar()
        second = build_application("mat2").simulate_full_crossbar()
        assert first.trace.records == second.trace.records


class TestSyntheticApplication:
    def test_platform_is_twenty_cores(self):
        app = build_application("synthetic", total_cycles=30_000)
        assert app.num_cores == 20

    def test_replay_on_full_crossbar_finishes(self):
        app = build_application("synthetic", total_cycles=30_000)
        result = app.simulate_full_crossbar()
        assert result.finished
        assert len(result.trace) > 100

    def test_burst_parameter_scales_activity(self):
        short = build_application(
            "synthetic", burst_cycles=500, total_cycles=30_000
        )
        long = build_application(
            "synthetic", burst_cycles=2_000, total_cycles=30_000
        )
        assert short.default_window < long.default_window
