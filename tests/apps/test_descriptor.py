"""Unit tests for application descriptors and the standard platform."""

import pytest

from repro.apps import Application, standard_platform
from repro.errors import ApplicationError
from repro.platform import Read, TargetKind


class TestStandardPlatform:
    def test_core_layout(self):
        config = standard_platform(9)
        assert config.num_initiators == 9
        assert config.num_targets == 12
        assert config.initiator_names[0] == "arm0"
        assert [t.name for t in config.targets[-3:]] == ["shared", "sem", "irq"]

    def test_target_kinds(self):
        config = standard_platform(4)
        kinds = [t.kind for t in config.targets]
        assert kinds[:4] == [TargetKind.MEMORY] * 4
        assert kinds[5] is TargetKind.SEMAPHORE
        assert kinds[6] is TargetKind.INTERRUPT

    def test_critical_marking(self):
        config = standard_platform(4, critical_targets=(0, 6))
        assert config.targets[0].critical
        assert config.targets[6].critical
        assert not config.targets[1].critical

    def test_zero_arms_rejected(self):
        with pytest.raises(ApplicationError):
            standard_platform(0)


class TestApplication:
    def make_app(self, num_arms=2):
        config = standard_platform(num_arms)
        builders = tuple(
            (lambda arm=arm: iter([Read(arm)])) for arm in range(num_arms)
        )
        return Application(
            name="toy",
            config=config,
            program_builders=builders,
            sim_cycles=1_000,
        )

    def test_num_cores(self):
        assert self.make_app(9).num_cores == 21

    def test_builder_count_must_match(self):
        config = standard_platform(2)
        with pytest.raises(ApplicationError):
            Application(
                name="bad",
                config=config,
                program_builders=(lambda: iter([]),),
                sim_cycles=100,
            )

    def test_programs_are_fresh_each_build(self):
        app = self.make_app()
        first = app.build_programs()
        second = app.build_programs()
        assert first[0] is not second[0]
        assert list(first[0]) == list(second[0]) == [Read(0)]

    def test_simulate_full_crossbar(self):
        app = self.make_app()
        result = app.simulate_full_crossbar()
        assert result.finished
        assert result.it_bus_count == app.num_targets
        assert result.ti_bus_count == app.num_initiators

    def test_simulate_shared_bus(self):
        app = self.make_app()
        result = app.simulate_shared_bus()
        assert result.bus_count == 2
