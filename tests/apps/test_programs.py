"""Unit tests for the phased workload generator."""

import pytest

from repro.apps.programs import WorkloadShape, phased_program
from repro.errors import ApplicationError
from repro.platform import Barrier, Compute, Lock, Read, Unlock, Write


def ops_for(arm, num_arms=4, **overrides):
    shape = WorkloadShape(**{**WorkloadShape().__dict__, **overrides})
    return list(phased_program(arm, num_arms, shape))


class TestShapeValidation:
    def test_defaults_valid(self):
        WorkloadShape().validate()

    def test_bad_iterations(self):
        with pytest.raises(ApplicationError):
            WorkloadShape(iterations=0).validate()

    def test_bad_stages(self):
        with pytest.raises(ApplicationError):
            WorkloadShape(stages=0).validate()

    def test_bad_burst(self):
        with pytest.raises(ApplicationError):
            WorkloadShape(burst_words=0).validate()


class TestProgramStructure:
    def test_barriers_emitted_per_iteration(self):
        ops = ops_for(0, iterations=5, barrier_every=1, shared_every=0,
                      irq_every=0)
        barriers = [op for op in ops if isinstance(op, Barrier)]
        assert len(barriers) == 5
        assert all(b.participants == 4 for b in barriers)

    def test_barrier_every_spacing(self):
        ops = ops_for(0, iterations=6, barrier_every=3, shared_every=0,
                      irq_every=0)
        assert len([op for op in ops if isinstance(op, Barrier)]) == 2

    def test_no_barriers_when_disabled(self):
        ops = ops_for(0, iterations=4, barrier_every=0, shared_every=0,
                      irq_every=0)
        assert not [op for op in ops if isinstance(op, Barrier)]

    def test_private_memory_accesses_target_own_pm(self):
        for arm in range(4):
            ops = ops_for(arm, iterations=2, shared_every=0, irq_every=0)
            accesses = [
                op for op in ops if isinstance(op, (Read, Write))
            ]
            assert accesses
            assert all(op.target == arm for op in accesses)

    def test_alternating_write_then_read_blocks(self):
        ops = ops_for(0, iterations=2, accesses_per_iteration=3,
                      write_phase_period=1, shared_every=0, irq_every=0)
        kinds = [type(op) for op in ops if isinstance(op, (Read, Write))]
        assert kinds[:3] == [Write] * 3  # iteration 0: write block
        assert kinds[3:] == [Read] * 3  # iteration 1: read block

    def test_mixed_block_interleaves(self):
        ops = ops_for(0, iterations=1, accesses_per_iteration=4,
                      write_phase_period=0, shared_every=0, irq_every=0)
        kinds = [type(op) for op in ops if isinstance(op, (Read, Write))]
        assert kinds == [Write, Read, Write, Read]

    def test_stage_offset_grows_with_stage(self):
        def first_compute(arm):
            for op in ops_for(arm, iterations=1, stages=3, jitter=0,
                              shared_every=0, irq_every=0):
                if isinstance(op, Compute):
                    return op.cycles
            return 0

        assert first_compute(0) == 0
        assert first_compute(1) == 330
        assert first_compute(2) == 660
        assert first_compute(3) == 0  # wraps: stage = arm % stages

    def test_shared_exchange_is_lock_protected(self):
        ops = ops_for(0, iterations=6, shared_every=2, irq_every=0)
        locks = [op for op in ops if isinstance(op, Lock)]
        unlocks = [op for op in ops if isinstance(op, Unlock)]
        assert locks and len(locks) == len(unlocks)
        shared_accesses = [
            op for op in ops
            if isinstance(op, (Read, Write)) and op.target == 4
        ]
        assert len(shared_accesses) == 2 * len(locks)

    def test_irq_writes_rotate_leader(self):
        leaders = []
        for arm in range(4):
            ops = ops_for(arm, iterations=16, irq_every=4, shared_every=0)
            if any(isinstance(op, Write) and op.target == 6 for op in ops):
                leaders.append(arm)
        assert len(leaders) >= 2  # leadership rotates across cores

    def test_deterministic_given_seed(self):
        assert ops_for(1, seed=5) == ops_for(1, seed=5)

    def test_seed_changes_jitter(self):
        assert ops_for(1, seed=5) != ops_for(1, seed=6)
