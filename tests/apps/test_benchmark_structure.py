"""Traffic-structure tests for FFT, QSort and DES.

Each suite's *shape* drives its Table-2 outcome; these tests pin the
structural properties the synthesis relies on, per application.
"""

import pytest

from repro.apps import build_application
from repro.traffic import PairwiseOverlap, WindowedTraffic


@pytest.fixture(scope="module")
def traces():
    result = {}
    for name in ("fft", "qsort", "des"):
        app = build_application(name)
        result[name] = (app, app.simulate_full_crossbar())
    return result


class TestFFT:
    def test_half_groups_overlap_heavily(self, traces):
        _app, run = traces["fft"]
        windowed = WindowedTraffic(run.trace, window_size=1_000)
        overlap = PairwiseOverlap(windowed)
        # stage = arm % 2: pm0/pm2 share a butterfly half, pm0/pm1 do not
        same_half = overlap.overlap_matrix[0, 2]
        cross_half = overlap.overlap_matrix[0, 1]
        assert same_half > 2 * max(1, cross_half)

    def test_overlap_exceeds_default_threshold(self, traces):
        _app, run = traces["fft"]
        windowed = WindowedTraffic(run.trace, window_size=1_000)
        overlap = PairwiseOverlap(windowed)
        # the conflict pairs that inflate FFT's crossbar (paper: only
        # 1.93x saving) come from same-half streams crossing 30% overlap
        assert overlap.max_window_fraction(0, 2) > 0.3

    def test_shared_memory_traffic_heavier_than_matmul(self, traces):
        _app, run = traces["fft"]
        # transpose exchanges make FFT's shared memory relatively busy
        shared_busy = run.trace.target_busy_cycles(13)
        pm_busy = run.trace.target_busy_cycles(0)
        assert shared_busy > 0.05 * pm_busy


class TestQSort:
    def test_phases_drift_apart(self, traces):
        _app, run = traces["qsort"]
        windowed = WindowedTraffic(run.trace, window_size=1_000)
        overlap = PairwiseOverlap(windowed)
        # desynchronized pivot work keeps same-stage overlap below the
        # conflict threshold, so bandwidth -- not conflicts -- sizes it
        assert overlap.max_window_fraction(0, 3) <= 0.45

    def test_moderate_utilization(self, traces):
        _app, run = traces["qsort"]
        windowed = WindowedTraffic(run.trace, window_size=1_000)
        util = windowed.utilization()[:6]  # private memories
        assert 0.05 < util.mean() < 0.35


class TestDES:
    def test_three_stage_pipeline(self, traces):
        _app, run = traces["des"]
        windowed = WindowedTraffic(run.trace, window_size=1_000)
        overlap = PairwiseOverlap(windowed)
        om = overlap.overlap_matrix
        # arm % 3 stages: pm0/pm3 aligned, pm0/pm1 offset
        assert om[0, 3] > 3 * max(1, om[0, 1])

    def test_round_key_traffic_is_sparse(self, traces):
        _app, run = traces["des"]
        shared_busy = run.trace.target_busy_cycles(8)
        pm_busy = min(
            run.trace.target_busy_cycles(t) for t in range(8)
        )
        assert shared_busy < 0.5 * pm_busy


class TestCrossSuiteInvariants:
    @pytest.mark.parametrize("name", ["fft", "qsort", "des"])
    def test_simulations_finish(self, traces, name):
        _app, run = traces[name]
        assert run.finished

    @pytest.mark.parametrize("name", ["fft", "qsort", "des"])
    def test_private_memories_owned(self, traces, name):
        app, run = traces[name]
        arms = app.num_initiators
        for record in run.trace.records:
            if record.target < arms:
                assert record.initiator == record.target

    @pytest.mark.parametrize("name", ["fft", "qsort", "des"])
    def test_interrupt_device_nearly_idle(self, traces, name):
        app, run = traces[name]
        irq = app.num_targets - 1
        assert run.trace.target_busy_cycles(irq) < 0.01 * run.trace.total_cycles
