"""Unit tests for buses, bindings and fabrics."""

import pytest

from repro.errors import ConfigurationError
from repro.platform import (
    Bus,
    Fabric,
    TimingModel,
    Transaction,
    full_crossbar_binding,
    make_arbiter,
    shared_bus_binding,
    validate_binding,
)
from repro.sim import Engine, spawn
from repro.traffic.events import TransactionKind


class TestBus:
    def test_transfer_timing_includes_arbitration(self):
        engine = Engine()
        bus = Bus(engine, "b0", make_arbiter("fifo"), arbitration_cycles=1)
        results = []

        def proc():
            grant, release = yield from bus.transfer("me", occupancy=4)
            results.append((grant, release))

        spawn(engine, proc())
        engine.run()
        assert results == [(0, 5)]  # 1 arb + 4 occupancy

    def test_back_to_back_transfers_serialize(self):
        engine = Engine()
        bus = Bus(engine, "b0", make_arbiter("fifo"), arbitration_cycles=1)
        results = []

        def proc(tag):
            grant, release = yield from bus.transfer(tag, occupancy=3)
            results.append((tag, grant, release))

        spawn(engine, proc("a"))
        spawn(engine, proc("b"))
        engine.run()
        assert results == [("a", 0, 4), ("b", 4, 8)]
        assert bus.transfers == 2
        assert bus.busy_cycles() == 8
        assert bus.utilization(16) == pytest.approx(0.5)

    def test_busy_log_owners(self):
        engine = Engine()
        bus = Bus(engine, "b0", make_arbiter("fifo"), arbitration_cycles=0)

        def proc(tag):
            yield from bus.transfer(tag, occupancy=2)

        spawn(engine, proc("x"))
        engine.run()
        assert bus.busy_log == [(0, 2, "x")]


class TestBindings:
    def test_full_crossbar_binding(self):
        assert full_crossbar_binding(3) == [0, 1, 2]

    def test_shared_bus_binding(self):
        assert shared_bus_binding(3) == [0, 0, 0]

    def test_validate_counts_buses(self):
        assert validate_binding([0, 1, 0, 2], "test") == 3

    def test_empty_binding_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_binding([], "test")

    def test_negative_bus_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_binding([0, -1], "test")

    def test_sparse_bus_numbering_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_binding([0, 2], "test")


class TestFabric:
    def make_fabric(self, it_binding, ti_binding):
        return Fabric(Engine(), it_binding, ti_binding, TimingModel())

    def test_bus_counts(self):
        fabric = self.make_fabric([0, 0, 1], [0, 1, 1, 1])
        assert len(fabric.it_buses) == 2
        assert len(fabric.ti_buses) == 2
        assert fabric.bus_count == 4

    def test_routing(self):
        fabric = self.make_fabric([0, 0, 1], [0, 1])
        transaction = Transaction(1, 2, TransactionKind.READ, burst=1)
        assert fabric.request_bus(transaction) is fabric.it_buses[1]
        assert fabric.response_bus(transaction) is fabric.ti_buses[1]

    def test_membership_queries(self):
        fabric = self.make_fabric([0, 0, 1], [1, 0, 1])
        assert fabric.targets_on_bus(0) == [0, 1]
        assert fabric.targets_on_bus(1) == [2]
        assert fabric.initiators_on_bus(1) == [0, 2]

    def test_shared_configuration_is_two_buses(self):
        # The paper's shared-bus reference: one bus per direction.
        fabric = self.make_fabric(shared_bus_binding(12), shared_bus_binding(9))
        assert fabric.bus_count == 2

    def test_full_crossbar_is_one_bus_per_core(self):
        # Mat2 shape: 12 targets + 9 initiators -> 21 buses (ratio 10.5).
        fabric = self.make_fabric(
            full_crossbar_binding(12), full_crossbar_binding(9)
        )
        assert fabric.bus_count == 21
