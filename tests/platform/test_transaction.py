"""Unit tests for transactions and the timing model."""

import pytest

from repro.errors import SimulationError
from repro.platform import TimingModel, Transaction
from repro.platform.adapters import AdapterConfig
from repro.traffic.events import TransactionKind


class TestTimingModel:
    def test_read_occupancies(self):
        timing = TimingModel()
        # reads carry payload on the response path only
        assert timing.request_occupancy(TransactionKind.READ, 4) == 1
        assert timing.response_occupancy(TransactionKind.READ, 4) == 5

    def test_write_occupancies(self):
        timing = TimingModel()
        assert timing.request_occupancy(TransactionKind.WRITE, 4) == 5
        assert timing.response_occupancy(TransactionKind.WRITE, 4) == 1

    def test_uncontended_single_word_read_is_six_cycles(self):
        # The paper's Table 1 full-crossbar average: 6 cycles.
        timing = TimingModel()
        latency = timing.uncontended_latency(TransactionKind.READ, 1, 1)
        assert latency == 6

    def test_uncontended_four_word_read_is_nine_cycles(self):
        # The paper's Table 1 full-crossbar maximum: 9 cycles.
        timing = TimingModel()
        assert timing.uncontended_latency(TransactionKind.READ, 4, 1) == 9

    def test_cycles_per_word_scaling(self):
        timing = TimingModel(cycles_per_word=2)
        assert timing.response_occupancy(TransactionKind.READ, 3) == 7

    def test_adapter_stretches_payload(self):
        timing = TimingModel()
        narrow = AdapterConfig(width_ratio=2.0, extra_cycles=1)
        assert timing.request_occupancy(TransactionKind.WRITE, 4, narrow) == 10
        # reads carry no request payload: only the overhead applies
        assert timing.request_occupancy(TransactionKind.READ, 4, narrow) == 2


class TestTransaction:
    def test_bad_burst_rejected(self):
        with pytest.raises(SimulationError):
            Transaction(0, 0, TransactionKind.READ, burst=0)

    def test_unfinished_cannot_be_recorded(self):
        transaction = Transaction(0, 0, TransactionKind.READ, burst=1)
        with pytest.raises(SimulationError):
            transaction.to_record()

    def test_record_round_trip(self):
        transaction = Transaction(1, 2, TransactionKind.WRITE, burst=3, critical=True)
        transaction.issue = 0
        transaction.it_grant = 1
        transaction.it_release = 5
        transaction.service_start = 5
        transaction.service_end = 6
        transaction.ti_grant = 7
        transaction.ti_release = 8
        transaction.complete = 8
        record = transaction.to_record()
        assert record.initiator == 1
        assert record.target == 2
        assert record.latency == 8
        assert record.critical
        assert transaction.finished
