"""Unit tests for arbitration policies."""

import pytest

from repro.errors import ConfigurationError
from repro.platform import make_arbiter
from repro.sim import Engine, Resource, spawn


def contended_grants(policy, owners_with_delays, hold=3):
    """Simulate owners requesting one resource; return grant order."""
    engine = Engine()
    resource = Resource(engine, policy=policy)
    grants = []

    def holder(owner):
        request = resource.acquire(owner=owner)
        yield request.granted
        grants.append(owner)
        yield hold
        resource.release(request)

    for owner, delay in owners_with_delays:
        engine.schedule(delay, lambda o=owner: spawn(engine, holder(o)))
    engine.run()
    return grants


class TestFixedPriority:
    def test_lowest_index_wins_among_waiters(self):
        # owner 0 holds; 3, 1, 2 queue while busy; grants by index after.
        grants = contended_grants(
            make_arbiter("fixed-priority"),
            [(0, 0), (3, 1), (1, 1), (2, 2)],
        )
        assert grants == [0, 1, 2, 3]

    def test_can_starve_high_indices(self):
        # Repeated low-index requests always beat a waiting high index.
        engine = Engine()
        resource = Resource(engine, policy=make_arbiter("fixed-priority"))
        grants = []

        def spammer():
            for _ in range(3):
                request = resource.acquire(owner=0)
                yield request.granted
                grants.append(0)
                yield 5
                resource.release(request)

        def victim():
            yield 1
            request = resource.acquire(owner=9)
            yield request.granted
            grants.append(9)
            yield 1
            resource.release(request)

        spawn(engine, spammer())
        spawn(engine, victim())
        engine.run()
        assert grants == [0, 0, 0, 9]


class TestRoundRobin:
    def test_rotates_after_each_grant(self):
        grants = contended_grants(
            make_arbiter("round-robin"),
            [(0, 0), (1, 1), (2, 1), (3, 1)],
        )
        assert grants == [0, 1, 2, 3]

    def test_owner_after_last_granted_wins(self):
        engine = Engine()
        policy = make_arbiter("round-robin")
        resource = Resource(engine, policy=policy)
        grants = []

        def holder(owner, delay):
            yield delay
            request = resource.acquire(owner=owner)
            yield request.granted
            grants.append(owner)
            yield 4
            resource.release(request)

        # owner 2 holds first; then 0, 1, 3 are all waiting.
        spawn(engine, holder(2, 0))
        spawn(engine, holder(0, 1))
        spawn(engine, holder(1, 1))
        spawn(engine, holder(3, 1))
        engine.run()
        # after granting 2, rotation prefers 3 (first index above 2)
        assert grants == [2, 3, 0, 1]

    def test_fresh_state_per_arbiter(self):
        first = make_arbiter("round-robin")
        second = make_arbiter("round-robin")
        assert first is not second


class TestPolicyRegistry:
    def test_fifo_policy_available(self):
        grants = contended_grants(make_arbiter("fifo"), [(5, 0), (1, 1), (0, 2)])
        assert grants == [5, 1, 0]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_arbiter("coin-flip")
