"""Unit tests for latency statistics and adapters."""

import pytest

from repro.errors import ConfigurationError
from repro.platform import LatencyStats, summarize_latencies
from repro.platform.adapters import IDENTITY_ADAPTER, AdapterConfig
from repro.platform.metrics import per_target_latency
from repro.traffic import TrafficTrace

from tests.traffic.conftest import make_record


class TestSummarize:
    def test_empty_sample(self):
        stats = summarize_latencies([])
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_known_values(self):
        stats = summarize_latencies([4, 6, 8, 10])
        assert stats.count == 4
        assert stats.mean == pytest.approx(7.0)
        assert stats.maximum == 10
        assert stats.minimum == 4

    def test_relative_to(self):
        fast = summarize_latencies([5, 5])
        slow = summarize_latencies([10, 30])
        mean_ratio, max_ratio = slow.relative_to(fast)
        assert mean_ratio == pytest.approx(4.0)
        assert max_ratio == pytest.approx(6.0)

    def test_relative_to_empty_baseline(self):
        slow = summarize_latencies([10])
        mean_ratio, max_ratio = slow.relative_to(LatencyStats.empty())
        assert mean_ratio == float("inf")
        assert max_ratio == float("inf")

    def test_str_is_compact(self):
        assert "mean=" in str(summarize_latencies([3]))


class TestPerTarget:
    def test_buckets_by_target(self):
        records = [
            make_record(target=0, start=0, duration=4),
            make_record(target=0, start=20, duration=8),
            make_record(target=1, start=40, duration=4),
        ]
        trace = TrafficTrace(records, 1, 2, total_cycles=100)
        stats = per_target_latency(trace)
        assert stats[0].count == 2
        assert stats[1].count == 1

    def test_critical_only_filter(self):
        records = [
            make_record(target=0, start=0, duration=4, critical=True),
            make_record(target=0, start=20, duration=4),
        ]
        trace = TrafficTrace(records, 1, 1, total_cycles=100)
        stats = per_target_latency(trace, critical_only=True)
        assert stats[0].count == 1


class TestAdapters:
    def test_identity_is_passthrough(self):
        assert IDENTITY_ADAPTER.adjust_payload(7) == 7
        assert IDENTITY_ADAPTER.traversal_overhead() == 0

    def test_narrow_interface_stretches_payload(self):
        adapter = AdapterConfig(width_ratio=2.0)
        assert adapter.adjust_payload(4) == 8

    def test_fractional_width_rounds_up(self):
        adapter = AdapterConfig(width_ratio=1.5)
        assert adapter.adjust_payload(3) == 5

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            AdapterConfig(width_ratio=0)
        with pytest.raises(ConfigurationError):
            AdapterConfig(extra_cycles=-1)
