"""Property-based tests of the platform simulator.

Random workloads are generated with Hypothesis and simulated; the tests
check global invariants that must hold for *any* program mix:

* conservation -- every issued transaction completes exactly once (given
  enough cycles) and is recorded once,
* serialization -- bus holds never overlap on the same bus; target
  service intervals never overlap on the same target,
* causality -- phase timestamps are monotone and latency >= the
  uncontended minimum,
* determinism -- identical setups produce identical traces.
"""

from hypothesis import given, settings, strategies as st

from repro.platform import (
    Compute,
    Read,
    SoC,
    SoCConfig,
    TargetConfig,
    TimingModel,
    Write,
)
from repro.traffic.intervals import intersect, normalize


@st.composite
def random_workload(draw):
    """A small random platform plus random programs."""
    num_initiators = draw(st.integers(1, 4))
    num_targets = draw(st.integers(1, 4))
    programs = []
    total_ops = 0
    for _ in range(num_initiators):
        ops = []
        for _ in range(draw(st.integers(0, 8))):
            kind = draw(st.sampled_from(["compute", "read", "write"]))
            if kind == "compute":
                ops.append(Compute(draw(st.integers(0, 30))))
            else:
                op_class = Read if kind == "read" else Write
                ops.append(
                    op_class(
                        target=draw(st.integers(0, num_targets - 1)),
                        burst=draw(st.integers(1, 8)),
                    )
                )
                total_ops += 1
        programs.append(ops)
    it_binding = [
        draw(st.integers(0, 1)) if num_targets > 1 else 0
        for _ in range(num_targets)
    ]
    ti_binding = [
        draw(st.integers(0, 1)) if num_initiators > 1 else 0
        for _ in range(num_initiators)
    ]
    # bindings must be dense: force bus 0 to exist
    if it_binding and 0 not in it_binding:
        it_binding[0] = 0
    if 1 in it_binding and it_binding.count(1) == len(it_binding):
        it_binding[0] = 0
    if ti_binding and 0 not in ti_binding:
        ti_binding[0] = 0
    return num_initiators, num_targets, it_binding, ti_binding, programs, total_ops


def build_soc(num_initiators, num_targets, it_binding, ti_binding, programs):
    def densify(binding):
        mapping = {}
        dense = []
        for bus in binding:
            mapping.setdefault(bus, len(mapping))
            dense.append(mapping[bus])
        return dense

    config = SoCConfig(
        initiator_names=[f"i{k}" for k in range(num_initiators)],
        targets=[TargetConfig(name=f"t{k}") for k in range(num_targets)],
    )
    return SoC(config, densify(it_binding), densify(ti_binding), programs)


class TestConservation:
    @settings(max_examples=40, deadline=None)
    @given(random_workload())
    def test_every_access_completes_once(self, workload):
        (num_initiators, num_targets, it_binding, ti_binding, programs,
         total_ops) = workload
        soc = build_soc(
            num_initiators, num_targets, it_binding, ti_binding, programs
        )
        result = soc.run(max_cycles=100_000)
        assert result.finished
        assert len(result.trace) == total_ops

    @settings(max_examples=40, deadline=None)
    @given(random_workload())
    def test_bus_holds_never_overlap(self, workload):
        (num_initiators, num_targets, it_binding, ti_binding, programs,
         _total) = workload
        soc = build_soc(
            num_initiators, num_targets, it_binding, ti_binding, programs
        )
        soc.run(max_cycles=100_000)
        for bus in soc.fabric.it_buses + soc.fabric.ti_buses:
            intervals = [(start, end) for start, end, _owner in bus.busy_log
                         if end > start]
            merged = normalize(intervals)
            assert sum(e - s for s, e in merged) == sum(
                e - s for s, e in intervals
            ), f"overlapping holds on {bus.name}"

    @settings(max_examples=40, deadline=None)
    @given(random_workload())
    def test_target_service_serializes(self, workload):
        (num_initiators, num_targets, it_binding, ti_binding, programs,
         _total) = workload
        soc = build_soc(
            num_initiators, num_targets, it_binding, ti_binding, programs
        )
        result = soc.run(max_cycles=100_000)
        for target in range(num_targets):
            spans = [
                (rec.service_start, rec.service_end)
                for rec in result.trace.records
                if rec.target == target and rec.service_end > rec.service_start
            ]
            for idx, a in enumerate(spans):
                for b in spans[idx + 1 :]:
                    assert not intersect([a], [b]), (
                        f"target {target} served two requests at once"
                    )


class TestCausality:
    @settings(max_examples=40, deadline=None)
    @given(random_workload())
    def test_latency_at_least_uncontended_minimum(self, workload):
        (num_initiators, num_targets, it_binding, ti_binding, programs,
         _total) = workload
        soc = build_soc(
            num_initiators, num_targets, it_binding, ti_binding, programs
        )
        result = soc.run(max_cycles=100_000)
        timing = TimingModel()
        for record in result.trace.records:
            service = soc.config.targets[record.target].service_cycles
            minimum = timing.uncontended_latency(
                record.kind, record.burst, service
            )
            assert record.latency >= minimum

    @settings(max_examples=20, deadline=None)
    @given(random_workload())
    def test_deterministic_reruns(self, workload):
        (num_initiators, num_targets, it_binding, ti_binding, programs,
         _total) = workload

        def run():
            soc = build_soc(
                num_initiators, num_targets, it_binding, ti_binding,
                [list(p) for p in programs],
            )
            return soc.run(max_cycles=100_000).trace.records

        assert run() == run()
