"""The workload-driver layer: program-driven vs trace-driven replay.

The acceptance property of the driver abstraction is *equivalence*: the
program-driven path and the trace-driven replay of that same program's
recorded trace must produce identical per-transaction latencies on the
same fabric -- every timestamp of every transaction, not just the
aggregate statistics.
"""

import pytest

from repro.apps import build_application
from repro.errors import ConfigurationError
from repro.platform import (
    ProgramDriver,
    TraceDrivenInitiator,
    full_crossbar_binding,
    platform_spec,
    replay_platform,
    shared_bus_binding,
    simulate_workload,
)
from repro.traffic import SyntheticTrafficConfig, generate_synthetic_trace


def record_timing(trace):
    """Every timestamp of every transaction, in canonical order."""
    return [
        (
            rec.initiator,
            rec.target,
            rec.kind,
            rec.burst,
            rec.issue,
            rec.it_grant,
            rec.it_release,
            rec.service_start,
            rec.service_end,
            rec.ti_grant,
            rec.ti_release,
            rec.complete,
            rec.critical,
        )
        for rec in trace.records
    ]


@pytest.fixture(scope="module")
def app():
    return build_application("qsort")


@pytest.fixture(scope="module")
def fabrics(app):
    """Uncontended, heavily contended, and designed fabrics."""
    from repro.core import CrossbarSynthesizer, SynthesisConfig

    designed = (
        CrossbarSynthesizer(SynthesisConfig())
        .design(app)
        .design
    )
    return {
        "full": (
            full_crossbar_binding(app.num_targets),
            full_crossbar_binding(app.num_initiators),
        ),
        "shared": (
            shared_bus_binding(app.num_targets),
            shared_bus_binding(app.num_initiators),
        ),
        "designed": (designed.it.as_list(), designed.ti.as_list()),
    }


class TestProgramTraceEquivalence:
    """Program run on fabric F, recorded; trace replay of the recording
    on F must be byte-identical, transaction by transaction."""

    @pytest.mark.parametrize("fabric", ["full", "shared", "designed"])
    def test_replay_reproduces_program_run_exactly(self, app, fabrics, fabric):
        it_binding, ti_binding = fabrics[fabric]
        program_run = app.simulate(it_binding, ti_binding, app.sim_cycles * 4)
        assert program_run.finished

        driver = TraceDrivenInitiator(program_run.trace, config=app.config)
        replay = simulate_workload(
            driver, it_binding, ti_binding, app.sim_cycles * 4
        )
        assert replay.finished
        assert record_timing(replay.trace) == record_timing(program_run.trace)
        assert replay.trace.latencies() == program_run.trace.latencies()

    def test_replay_is_deterministic(self, app, fabrics):
        it_binding, ti_binding = fabrics["designed"]
        trace = app.simulate(it_binding, ti_binding).trace
        driver = TraceDrivenInitiator(trace, config=app.config)
        first = simulate_workload(driver, it_binding, ti_binding)
        second = simulate_workload(driver, it_binding, ti_binding)
        assert record_timing(first.trace) == record_timing(second.trace)


class TestTraceDrivenInitiator:
    @pytest.fixture(scope="class")
    def profile_trace(self):
        return generate_synthetic_trace(
            SyntheticTrafficConfig(
                num_initiators=4, num_targets=4, total_cycles=20_000
            )
        )

    def test_replays_every_recorded_packet(self, profile_trace):
        driver = TraceDrivenInitiator(profile_trace)
        result = simulate_workload(
            driver, full_crossbar_binding(4), full_crossbar_binding(4)
        )
        assert result.finished
        assert len(result.trace) == len(profile_trace)

    def test_paced_replay_never_issues_early(self, profile_trace):
        """Pacing holds each access until its recorded cycle: the k-th
        replayed access of an initiator issues at or after the k-th
        recorded one (synthetic records are denser than the platform's
        protocol timing, so replay may fall behind -- never ahead)."""
        driver = TraceDrivenInitiator(profile_trace)
        result = simulate_workload(
            driver, full_crossbar_binding(4), full_crossbar_binding(4)
        )
        for initiator in range(profile_trace.num_initiators):
            recorded = [
                rec.issue
                for rec in profile_trace.records_from_initiator(initiator)
            ]
            replayed = [
                rec.issue
                for rec in result.trace.records_from_initiator(initiator)
            ]
            assert len(replayed) == len(recorded)
            assert all(
                after >= before
                for before, after in zip(recorded, replayed)
            )

    def test_start_cycles_match_first_recorded_issue(self, profile_trace):
        driver = TraceDrivenInitiator(profile_trace)
        starts = driver.start_cycles()
        for initiator in range(profile_trace.num_initiators):
            records = profile_trace.records_from_initiator(initiator)
            expected = min(rec.issue for rec in records) if records else 0
            assert starts[initiator] == expected

    def test_unpaced_replay_issues_back_to_back(self, profile_trace):
        driver = TraceDrivenInitiator(profile_trace, pace=False)
        assert driver.start_cycles() is None
        result = simulate_workload(
            driver, full_crossbar_binding(4), full_crossbar_binding(4)
        )
        # back-to-back issue finishes well before the recorded period
        assert result.finished
        last = max(rec.complete for rec in result.trace.records)
        assert last < profile_trace.total_cycles

    def test_respects_load_thinning(self, profile_trace):
        """A thinned trace replays exactly its surviving packets."""
        from repro.traffic.profiles import thin_trace

        thinned = thin_trace(profile_trace, 0.5, seed=7)
        driver = TraceDrivenInitiator(thinned)
        result = simulate_workload(
            driver, full_crossbar_binding(4), full_crossbar_binding(4)
        )
        assert len(result.trace) == len(thinned)
        assert len(result.trace) < len(profile_trace)

    def test_platform_shape_mismatch_rejected(self, profile_trace):
        other = replay_platform(
            generate_synthetic_trace(
                SyntheticTrafficConfig(
                    num_initiators=6, num_targets=6, total_cycles=5_000
                )
            )
        )
        with pytest.raises(ConfigurationError, match="recorded on"):
            TraceDrivenInitiator(profile_trace, config=other)

    def test_workload_key_is_stable_and_content_sensitive(
        self, profile_trace
    ):
        driver = TraceDrivenInitiator(profile_trace)
        key = driver.workload_key()
        assert key == TraceDrivenInitiator(profile_trace).workload_key()
        assert key["kind"] == "trace-replay"
        unpaced = TraceDrivenInitiator(profile_trace, pace=False)
        assert unpaced.workload_key() != key


class TestProgramDriver:
    def test_application_driver_matches_direct_simulation(self, app):
        from repro.platform import SoC

        it_binding = full_crossbar_binding(app.num_targets)
        ti_binding = full_crossbar_binding(app.num_initiators)
        via_driver = simulate_workload(app.driver(), it_binding, ti_binding)
        direct = SoC(
            app.config, it_binding, ti_binding, app.build_programs()
        ).run(app.sim_cycles)
        assert record_timing(via_driver.trace) == record_timing(direct.trace)

    def test_default_build_is_content_keyed(self, app):
        key = app.driver().workload_key()
        assert key["kind"] == "program"
        assert key["source"] == "app:qsort"
        assert key["platform"] == platform_spec(app.config)

    def test_custom_build_has_no_key(self):
        custom = build_application("synthetic", burst_cycles=123)
        with pytest.raises(ConfigurationError, match="source key"):
            custom.driver().workload_key()

    def test_builder_count_must_match_platform(self, app):
        with pytest.raises(ConfigurationError):
            ProgramDriver(
                config=app.config,
                program_builders=app.program_builders[:-1],
                sim_cycles=app.sim_cycles,
            )
