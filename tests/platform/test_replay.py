"""Tests for trace-replay programs: any trace can be re-simulated."""

from repro.platform import (
    Compute,
    Read,
    SoC,
    SoCConfig,
    TargetConfig,
    Write,
    full_crossbar_binding,
    shared_bus_binding,
    trace_replay_program,
)
from repro.traffic import (
    SyntheticTrafficConfig,
    TransactionKind,
    generate_synthetic_trace,
)

from tests.traffic.conftest import make_record


class TestReplayProgram:
    def test_paces_with_compute(self):
        records = [
            make_record(start=10, duration=3, kind=TransactionKind.READ),
            make_record(start=50, duration=3, kind=TransactionKind.WRITE),
        ]
        ops = list(trace_replay_program(records))
        assert isinstance(ops[0], Compute)
        assert ops[0].cycles == 10
        assert isinstance(ops[1], Read)
        assert isinstance(ops[2], Compute)
        assert isinstance(ops[3], Write)

    def test_unpaced_emits_only_accesses(self):
        records = [make_record(start=10, duration=3)]
        ops = list(trace_replay_program(records, pace=False))
        assert len(ops) == 1

    def test_preserves_burst_critical_and_stream(self):
        records = [
            make_record(start=0, duration=3, burst=7, critical=True,
                        stream="s1")
        ]
        ops = list(trace_replay_program(records))
        assert ops[0].burst == 7
        assert ops[0].critical
        assert ops[0].stream == "s1"

    def test_orders_by_issue(self):
        records = [
            make_record(start=50, duration=3),
            make_record(start=10, duration=3),
        ]
        ops = [op for op in trace_replay_program(records) if isinstance(op, Compute)]
        assert ops[0].cycles == 10


class TestSyntheticReplayEndToEnd:
    def build_soc(self, trace, it_binding, ti_binding):
        config = SoCConfig(
            initiator_names=[f"i{k}" for k in range(trace.num_initiators)],
            targets=[TargetConfig(name=f"t{k}") for k in range(trace.num_targets)],
        )
        programs = [
            list(trace_replay_program(trace.records_from_initiator(k)))
            for k in range(trace.num_initiators)
        ]
        return SoC(config, it_binding, ti_binding, programs)

    def test_full_crossbar_replay_matches_issue_times(self):
        trace = generate_synthetic_trace(
            SyntheticTrafficConfig(
                num_initiators=4, num_targets=4, total_cycles=20_000
            )
        )
        soc = self.build_soc(
            trace, full_crossbar_binding(4), full_crossbar_binding(4)
        )
        result = soc.run(max_cycles=60_000)
        assert result.finished
        assert len(result.trace) == len(trace)
        # on a full crossbar with the private-memory pattern there is no
        # contention: mean latency equals the uncontended write latency
        stats = result.latency_stats()
        assert stats.mean <= 25

    def test_shared_bus_replay_is_slower_than_full(self):
        trace = generate_synthetic_trace(
            SyntheticTrafficConfig(
                num_initiators=4, num_targets=4, total_cycles=20_000,
                gap_cycles=1_500,
            )
        )
        full = self.build_soc(
            trace, full_crossbar_binding(4), full_crossbar_binding(4)
        ).run(200_000)
        shared = self.build_soc(
            trace, shared_bus_binding(4), shared_bus_binding(4)
        ).run(400_000)
        assert shared.latency_stats().mean > 1.5 * full.latency_stats().mean
