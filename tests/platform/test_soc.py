"""Integration tests for the SoC simulation driver."""

import pytest

from repro.errors import ApplicationError, ConfigurationError
from repro.platform import (
    Barrier,
    Compute,
    Lock,
    Read,
    SoC,
    SoCConfig,
    TargetConfig,
    TargetKind,
    Unlock,
    Write,
    full_crossbar_binding,
    shared_bus_binding,
)


def make_config(num_initiators=2, num_targets=2, **kwargs):
    return SoCConfig(
        initiator_names=[f"arm{i}" for i in range(num_initiators)],
        targets=[TargetConfig(name=f"mem{t}") for t in range(num_targets)],
        **kwargs,
    )


def run_soc(config, it_binding, ti_binding, programs, max_cycles=10_000):
    soc = SoC(config, it_binding, ti_binding, programs)
    return soc.run(max_cycles)


class TestBasicAccess:
    def test_single_read_uncontended_latency(self):
        result = run_soc(
            make_config(1, 1), [0], [0], [[Read(0, burst=1)]]
        )
        assert result.finished
        assert len(result.trace) == 1
        # 1 arb + 1 req + 1 svc + 1 arb + 2 resp = 6 cycles (Table 1 full)
        assert result.trace.records[0].latency == 6

    def test_four_word_read_latency(self):
        result = run_soc(make_config(1, 1), [0], [0], [[Read(0, burst=4)]])
        assert result.trace.records[0].latency == 9

    def test_write_latency(self):
        result = run_soc(make_config(1, 1), [0], [0], [[Write(0, burst=1)]])
        # 1 arb + 2 req + 1 svc + 1 arb + 1 resp = 6
        assert result.trace.records[0].latency == 6

    def test_compute_delays_issue(self):
        result = run_soc(
            make_config(1, 1), [0], [0], [[Compute(50), Read(0)]]
        )
        assert result.trace.records[0].issue == 50

    def test_sequential_accesses_pipeline_cleanly(self):
        result = run_soc(
            make_config(1, 1), [0], [0], [[Read(0), Read(0), Read(0)]]
        )
        issues = [record.issue for record in result.trace.records]
        assert issues == [0, 6, 12]


class TestContention:
    def test_shared_bus_serializes_distinct_targets(self):
        # Both initiators hit different targets bound to the same IT bus.
        result = run_soc(
            make_config(2, 2),
            shared_bus_binding(2),
            shared_bus_binding(2),
            [[Read(0)], [Read(1)]],
        )
        records = sorted(result.trace.records, key=lambda r: r.initiator)
        latencies = sorted(record.latency for record in records)
        assert latencies[0] == 6
        assert latencies[1] > 6  # the loser waits for the bus

    def test_full_crossbar_runs_distinct_targets_in_parallel(self):
        result = run_soc(
            make_config(2, 2),
            full_crossbar_binding(2),
            full_crossbar_binding(2),
            [[Read(0)], [Read(1)]],
        )
        assert [record.latency for record in result.trace.records] == [6, 6]

    def test_same_target_still_serializes_on_full_crossbar(self):
        # The target port is the bottleneck: requests queue at the memory.
        result = run_soc(
            make_config(2, 1),
            full_crossbar_binding(1),
            full_crossbar_binding(2),
            [[Read(0)], [Read(0)]],
        )
        latencies = sorted(record.latency for record in result.trace.records)
        assert latencies[0] == 6
        assert latencies[1] > 6

    def test_fixed_priority_favors_low_index(self):
        result = run_soc(
            make_config(2, 1),
            [0],
            shared_bus_binding(2),
            [[Read(0)], [Read(0)]],
        )
        by_initiator = {rec.initiator: rec.latency for rec in result.trace.records}
        assert by_initiator[0] < by_initiator[1]


class TestSynchronization:
    def test_lock_provides_mutual_exclusion(self):
        config = make_config(2, 2)
        config = SoCConfig(
            initiator_names=config.initiator_names,
            targets=[
                TargetConfig(name="mem0"),
                TargetConfig(name="sem", kind=TargetKind.SEMAPHORE),
            ],
        )
        programs = [
            [Lock(1), Write(0, burst=8), Unlock(1)],
            [Lock(1), Write(0, burst=8), Unlock(1)],
        ]
        result = run_soc(config, shared_bus_binding(2), shared_bus_binding(2), programs)
        assert result.finished
        # the two big writes to mem0 must not interleave their IT holds
        big_writes = [
            (rec.it_grant, rec.it_release)
            for rec in result.trace.records
            if rec.target == 0 and rec.burst == 8
        ]
        big_writes.sort()
        assert len(big_writes) == 2
        assert big_writes[0][1] <= big_writes[1][0]

    def test_unlock_without_hold_raises(self):
        with pytest.raises(ApplicationError):
            run_soc(
                make_config(1, 1), [0], [0], [[Unlock(0)]]
            )

    def test_barrier_releases_all_participants_together(self):
        config = make_config(3, 2)
        programs = [
            [Compute(delay), Barrier(1, barrier_id=0, participants=3), Read(0)]
            for delay in (0, 40, 400)
        ]
        result = run_soc(
            config, shared_bus_binding(2), shared_bus_binding(3), programs
        )
        assert result.finished
        # the post-barrier reads can only issue after the last arrival (400)
        post_barrier = [
            rec.issue for rec in result.trace.records
            if rec.target == 0
        ]
        assert len(post_barrier) == 3
        assert min(post_barrier) >= 400

    def test_barrier_generates_semaphore_traffic(self):
        config = make_config(2, 2)
        programs = [
            [Barrier(1, barrier_id=0, participants=2)],
            [Compute(300), Barrier(1, barrier_id=0, participants=2)],
        ]
        result = run_soc(
            config, shared_bus_binding(2), shared_bus_binding(2), programs
        )
        semaphore_records = [rec for rec in result.trace.records if rec.target == 1]
        # two arrival writes plus poll reads from the early arriver
        assert sum(1 for rec in semaphore_records if rec.kind.value == "write") == 2
        assert sum(1 for rec in semaphore_records if rec.kind.value == "read") >= 2


class TestCriticality:
    def test_critical_target_flags_records(self):
        config = SoCConfig(
            initiator_names=["arm0"],
            targets=[TargetConfig(name="rt", critical=True)],
        )
        result = run_soc(config, [0], [0], [[Read(0)]])
        assert result.trace.records[0].critical

    def test_critical_op_flags_records(self):
        result = run_soc(
            make_config(1, 1), [0], [0], [[Read(0, critical=True)]]
        )
        assert result.trace.records[0].critical


class TestResultAndValidation:
    def test_bus_count_and_utilization(self):
        result = run_soc(
            make_config(2, 2),
            full_crossbar_binding(2),
            full_crossbar_binding(2),
            [[Read(0)], [Read(1)]],
        )
        assert result.bus_count == 4
        assert len(result.it_utilization) == 2
        assert all(0 <= u <= 1 for u in result.it_utilization)

    def test_latency_stats(self):
        result = run_soc(
            make_config(1, 1), [0], [0], [[Read(0), Read(0, burst=4)]]
        )
        stats = result.latency_stats()
        assert stats.count == 2
        assert stats.maximum == 9
        assert stats.mean == pytest.approx(7.5)

    def test_unfinished_run_reports_not_finished(self):
        result = run_soc(
            make_config(1, 1), [0], [0], [[Compute(10_000), Read(0)]],
            max_cycles=100,
        )
        assert not result.finished
        assert result.simulated_cycles == 100

    def test_binding_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SoC(make_config(2, 2), [0], shared_bus_binding(2), [[], []])

    def test_program_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SoC(make_config(2, 2), shared_bus_binding(2), shared_bus_binding(2), [[]])

    def test_unsupported_operation_rejected(self):
        with pytest.raises(ApplicationError):
            run_soc(make_config(1, 1), [0], [0], [["not-an-op"]])

    def test_determinism(self):
        def build():
            return run_soc(
                make_config(3, 3),
                shared_bus_binding(3),
                shared_bus_binding(3),
                [
                    [Read(0), Write(1, burst=4), Read(2)],
                    [Write(0, burst=2), Read(1)],
                    [Read(2), Read(0)],
                ],
            )

        first, second = build(), build()
        assert first.trace.records == second.trace.records
