"""Suite-runner semantics: robust design, replay validation, caching."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.exec import ExecutionEngine, ResultCache
from repro.scenarios import (
    Scenario,
    ScenarioSuite,
    ScenarioSuiteRunner,
    build_suite,
)

SMALL = {"num_initiators": 4, "num_targets": 4, "total_cycles": 8_000}


@pytest.fixture(scope="module")
def smoke_report():
    return ScenarioSuiteRunner().run(build_suite("smoke"))


class TestRobustRun:
    def test_union_replay_has_zero_violations(self, smoke_report):
        """Acceptance: the union-merged problem enforces every
        scenario's windows, so the shared design replays cleanly."""
        assert smoke_report.total_violations == 0
        assert smoke_report.robust.total_violations == 0

    def test_robust_buses_dominate_every_scenario_optimum(self, smoke_report):
        for outcome in smoke_report.outcomes:
            assert smoke_report.robust_buses >= outcome.individual_buses

    def test_one_outcome_per_scenario(self, smoke_report):
        assert len(smoke_report.outcomes) == len(build_suite("smoke"))
        names = [outcome.scenario.name for outcome in smoke_report.outcomes]
        assert names == [s.name for s in build_suite("smoke")]

    def test_pareto_includes_robust_and_all_individuals(self, smoke_report):
        labels = {point.label for point in smoke_report.pareto}
        assert "robust-union" in labels
        assert len(smoke_report.pareto) == len(smoke_report.outcomes) + 1

    def test_robust_design_is_on_the_pareto_front_or_dominated_cleanly(
        self, smoke_report
    ):
        robust = next(
            point for point in smoke_report.pareto
            if point.label == "robust-union"
        )
        assert robust.violations == 0

    def test_summary_renders_all_scenarios(self, smoke_report):
        text = smoke_report.summary()
        for outcome in smoke_report.outcomes:
            assert outcome.scenario.name in text
        assert "robust crossbar" in text

    def test_report_json_round_trips(self, smoke_report, tmp_path):
        payload = smoke_report.to_dict()
        path = tmp_path / "report.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["format"] == "repro-scenario-report-v1"
        assert loaded["robust"]["bus_count"] == smoke_report.robust_buses
        assert len(loaded["scenarios"]) == len(smoke_report.outcomes)
        assert loaded["robust"]["total_violations"] == 0


class TestEngineIntegration:
    def test_parallel_run_matches_serial(self):
        suite = build_suite("smoke")
        serial = ScenarioSuiteRunner(engine=ExecutionEngine(jobs=1)).run(suite)
        parallel = ScenarioSuiteRunner(engine=ExecutionEngine(jobs=2)).run(suite)
        assert serial.to_dict() == parallel.to_dict()

    def test_warm_rerun_is_served_from_cache(self, tmp_path):
        suite = build_suite("smoke")
        cache_dir = tmp_path / "cache"
        cold = ScenarioSuiteRunner(
            engine=ExecutionEngine(jobs=1, cache=ResultCache(cache_dir))
        ).run(suite)
        warm_engine = ExecutionEngine(jobs=1, cache=ResultCache(cache_dir))
        warm = ScenarioSuiteRunner(engine=warm_engine).run(suite)
        assert warm.to_dict() == cold.to_dict()
        assert warm_engine.cache.stats.hits == len(suite)
        assert warm_engine.cache.stats.misses == 0


class TestPolicies:
    def test_weighted_policy_never_needs_more_buses_than_union(self):
        suite = build_suite("smoke")
        union = ScenarioSuiteRunner(policy="union").run(suite)
        weighted = ScenarioSuiteRunner(policy="weighted", min_weight=0.6).run(
            suite
        )
        assert weighted.robust_buses <= union.robust_buses

    def test_weighted_capacity_violations_stay_zero(self):
        """Relaxing conflicts can break separations, never capacity."""
        report = ScenarioSuiteRunner(policy="weighted", min_weight=0.9).run(
            build_suite("smoke")
        )
        for outcome in report.outcomes:
            assert outcome.it_check.capacity_violations == ()
            assert outcome.ti_check.capacity_violations == ()

    def test_worst_case_policy_runs_clean(self):
        report = ScenarioSuiteRunner(policy="worst-case").run(
            build_suite("smoke")
        )
        assert report.robust.total_violations == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSuiteRunner(policy="psychic").run(build_suite("smoke"))


class TestPlatformMismatch:
    def test_mismatched_platforms_rejected(self):
        suite = ScenarioSuite(
            name="bad",
            scenarios=(
                Scenario(
                    name="small",
                    source="profile:poisson",
                    params={**SMALL, "seed": 1},
                ),
                Scenario(
                    name="large",
                    source="profile:poisson",
                    params={**SMALL, "num_targets": 6, "seed": 2},
                ),
            ),
        )
        with pytest.raises(ConfigurationError, match="platform shape"):
            ScenarioSuiteRunner().run(suite)


class TestLatencyReplay:
    """The optional validation stage: platform-simulator latency replay."""

    def test_app_scenarios_report_latency(self):
        suite = ScenarioSuite(
            name="replay",
            scenarios=(
                Scenario(name="full", source="app:qsort"),
                Scenario(name="light", source="app:qsort", load_scale=0.6),
            ),
        )
        report = ScenarioSuiteRunner(replay_latency=True).run(suite)
        full, light = report.outcomes
        assert full.latency is not None
        assert full.latency.count > 0
        assert full.latency.mean > 0
        # Thinned app traces replay through the trace-driven driver: the
        # recorded (already thinned) packets re-issue at their recorded
        # cycles, so the scaled scenario reports its own latency.
        assert light.latency is not None
        assert 0 < light.latency.count < full.latency.count
        assert "avg lat (cy)" in report.summary()
        entries = report.to_dict()["scenarios"]
        assert entries[0]["latency"]["mean"] > 0
        assert entries[1]["latency"]["mean"] > 0
        assert "latency_skipped" not in entries[0]
        assert "latency_skipped" not in entries[1]

    def test_profile_scenarios_report_latency_under_replay(self):
        """Profile-backed scenarios replay their recorded traces."""
        report = ScenarioSuiteRunner(replay_latency=True).run(
            build_suite("smoke")
        )
        for outcome in report.outcomes:
            assert outcome.latency is not None
            assert outcome.latency.count == outcome.num_records
            assert outcome.latency.mean > 0
            assert outcome.latency_skipped is None
        assert "avg lat (cy)" in report.summary()

    def test_loadramp_scaled_scenarios_report_latency(self):
        """Load-scaled profile scenarios are covered by trace replay."""
        report = ScenarioSuiteRunner(replay_latency=True).run(
            build_suite("loadramp")
        )
        counts = [outcome.latency.count for outcome in report.outcomes]
        assert all(count > 0 for count in counts)
        # higher offered load replays more packets
        assert counts == sorted(counts)

    def test_empty_trace_scenario_is_marked_skipped(self):
        suite = ScenarioSuite(
            name="sparse",
            scenarios=(
                Scenario(
                    name="busy",
                    source="profile:poisson",
                    params={**SMALL, "rate": 0.01, "seed": 5},
                ),
                Scenario(
                    name="silent",
                    source="profile:poisson",
                    # rate low enough that no packet is ever emitted
                    params={**SMALL, "rate": 1e-9, "seed": 6},
                ),
            ),
        )
        report = ScenarioSuiteRunner(replay_latency=True).run(suite)
        busy, silent = report.outcomes
        assert busy.latency is not None
        assert silent.latency is None
        assert silent.latency_skipped == "empty trace"
        assert "skipped (empty trace)" in report.summary()
        entries = report.to_dict()["scenarios"]
        assert entries[1]["latency_skipped"] == "empty trace"
        assert "latency" not in entries[1]

    def test_latency_absent_by_default(self, smoke_report):
        """Reports must stay byte-compatible when replay is off."""
        assert all(outcome.latency is None for outcome in smoke_report.outcomes)
        for entry in smoke_report.to_dict()["scenarios"]:
            assert "latency" not in entry
            assert "latency_skipped" not in entry
        assert "avg lat (cy)" not in smoke_report.summary()
