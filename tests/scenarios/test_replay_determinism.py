"""Replay determinism: same trace + same design => byte-identical
latency reports across serial, pooled and warm-cache runs."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec import ExecutionEngine, ResultCache
from repro.platform import SIMULATION_COUNTER
from repro.scenarios import Scenario, ScenarioSuite, ScenarioSuiteRunner

SHAPE = {"num_initiators": 4, "num_targets": 4, "total_cycles": 8_000}

# qsort's platform: 6 ARMs x (6 PMs + shared + sem + irq); profile
# scenarios in the mixed suite must share it (one crossbar per suite).
APP_SHAPE = {"num_initiators": 6, "num_targets": 9, "total_cycles": 8_000}


def replay_suite() -> ScenarioSuite:
    """A small suite covering every replay path: profile, load-scaled
    profile, full-load app, thinned app."""
    return ScenarioSuite(
        name="replay-mix",
        scenarios=(
            Scenario(
                name="burst",
                source="profile:burst",
                params={**APP_SHAPE, "burst_cycles": 300, "gap_cycles": 900,
                        "seed": 3},
                window_size=600,
            ),
            Scenario(
                name="burst-light",
                source="profile:burst",
                params={**APP_SHAPE, "burst_cycles": 300, "gap_cycles": 900,
                        "seed": 3},
                load_scale=0.5,
                window_size=600,
            ),
            Scenario(name="qsort-full", source="app:qsort"),
            Scenario(name="qsort-thin", source="app:qsort", load_scale=0.7),
        ),
    )


def report_bytes(report) -> str:
    return json.dumps(report.to_dict(), sort_keys=True)


class TestRunModeDeterminism:
    @pytest.fixture(scope="class")
    def serial_bytes(self):
        runner = ScenarioSuiteRunner(
            engine=ExecutionEngine(jobs=1), replay_latency=True
        )
        return report_bytes(runner.run(replay_suite()))

    def test_every_scenario_reports_latency(self, serial_bytes):
        entries = json.loads(serial_bytes)["scenarios"]
        assert len(entries) == 4
        for entry in entries:
            assert entry["latency"]["count"] > 0

    def test_pooled_run_matches_serial(self, serial_bytes):
        runner = ScenarioSuiteRunner(
            engine=ExecutionEngine(jobs=2), replay_latency=True
        )
        assert report_bytes(runner.run(replay_suite())) == serial_bytes

    def test_warm_rerun_matches_and_simulates_nothing(self, serial_bytes):
        runner = ScenarioSuiteRunner(replay_latency=True)
        first = report_bytes(runner.run(replay_suite()))
        assert first == serial_bytes
        SIMULATION_COUNTER.reset()
        second = report_bytes(runner.run(replay_suite()))
        assert second == serial_bytes
        assert SIMULATION_COUNTER.runs == 0  # replays came from the store
        breakdown = runner.last_run_breakdown
        assert breakdown["memo_hits"].get("replay") == 4
        assert "replay" not in breakdown["computed"]

    def test_disk_cache_run_matches_serial(self, serial_bytes, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = ScenarioSuiteRunner(
            engine=ExecutionEngine(jobs=1, cache=ResultCache(cache_dir)),
            replay_latency=True,
        )
        assert report_bytes(cold.run(replay_suite())) == serial_bytes

        # A *fresh* runner (fresh in-memory store) sharing the cache
        # directory: replays must come back from disk, byte-identical,
        # without a single fabric simulation.
        warm = ScenarioSuiteRunner(
            engine=ExecutionEngine(jobs=1, cache=ResultCache(cache_dir)),
            replay_latency=True,
        )
        SIMULATION_COUNTER.reset()
        assert report_bytes(warm.run(replay_suite())) == serial_bytes
        assert SIMULATION_COUNTER.runs == 0
        assert warm.last_run_breakdown["disk_hits"].get("replay") == 4


class TestSeededReplayDeterminism:
    """Scaled/thinned workloads replay identically given equal seeds."""

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        load_scale=st.sampled_from([0.3, 0.6, 1.0, 1.5]),
    )
    def test_scaled_profile_replay_is_reproducible(self, seed, load_scale):
        suite = ScenarioSuite(
            name="seeded",
            scenarios=(
                Scenario(
                    name="poisson",
                    source="profile:poisson",
                    params={**SHAPE, "rate": 0.004, "seed": seed},
                    load_scale=load_scale,
                    window_size=800,
                ),
            ),
        )
        first = ScenarioSuiteRunner(replay_latency=True).run(suite)
        second = ScenarioSuiteRunner(replay_latency=True).run(suite)
        assert report_bytes(first) == report_bytes(second)
        outcome = first.outcomes[0]
        assert (outcome.latency is not None) or (
            outcome.latency_skipped == "empty trace"
        )

    @settings(max_examples=6, deadline=None)
    @given(load_scale=st.sampled_from([0.2, 0.5, 0.8]))
    def test_thinned_app_replay_is_reproducible(self, load_scale):
        suite = ScenarioSuite(
            name="thinned",
            scenarios=(
                Scenario(
                    name="qsort-thin",
                    source="app:qsort",
                    load_scale=load_scale,
                ),
            ),
        )
        first = ScenarioSuiteRunner(replay_latency=True).run(suite)
        second = ScenarioSuiteRunner(replay_latency=True).run(suite)
        assert report_bytes(first) == report_bytes(second)
        assert first.outcomes[0].latency is not None
        assert first.outcomes[0].latency.count > 0
