"""Scenario/suite model: validation, trace building, JSON round-trip."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    SUITES,
    Scenario,
    ScenarioSuite,
    build_suite,
    load_suite,
    save_suite,
    suite_from_dict,
    suite_to_dict,
)

SMALL = {"num_initiators": 4, "num_targets": 4, "total_cycles": 8_000}


def small_scenario(name="s0", **overrides):
    fields = dict(
        name=name,
        source="profile:poisson",
        params={**SMALL, "rate": 0.004, "seed": 9},
        window_size=500,
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestScenarioValidation:
    def test_source_must_be_tagged(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="x", source="poisson")

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="x", source="profile:quantum")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="", source="profile:burst")

    def test_non_positive_load_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            small_scenario(load_scale=0.0)

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            small_scenario(weight=-1.0)

    def test_bad_profile_params_name_the_scenario(self):
        scenario = Scenario(
            name="broken", source="profile:burst", params={"no_such": 1}
        )
        with pytest.raises(ConfigurationError, match="broken"):
            scenario.build_trace()

    def test_source_accessors(self):
        scenario = small_scenario()
        assert scenario.source_kind == "profile"
        assert scenario.source_name == "poisson"


class TestTraceBuilding:
    def test_deterministic_across_calls(self):
        first = small_scenario().build_trace()
        second = small_scenario().build_trace()
        assert first.records == second.records

    def test_immune_to_global_rng_state(self):
        first = small_scenario().build_trace()
        random.seed(0xDEAD)
        second = small_scenario().build_trace()
        assert first.records == second.records

    def test_load_scale_increases_profile_traffic(self):
        light = small_scenario(load_scale=0.5).build_trace()
        heavy = small_scenario(load_scale=2.0).build_trace()
        assert len(heavy) > len(light)

    def test_critical_targets_forwarded(self):
        scenario = small_scenario(critical_targets=(1,))
        trace = scenario.build_trace()
        assert trace.critical_targets() == [1]

    def test_app_scenario_builds_platform_trace(self):
        trace = Scenario(name="app", source="app:qsort").build_trace()
        assert len(trace) > 0

    def test_app_upscaling_rejected(self):
        scenario = Scenario(name="app", source="app:qsort", load_scale=2.0)
        with pytest.raises(ConfigurationError):
            scenario.build_trace()

    def test_app_thinning_reduces_packets(self):
        full = Scenario(name="full", source="app:qsort").build_trace()
        thin = Scenario(
            name="thin", source="app:qsort", load_scale=0.5
        ).build_trace()
        assert 0 < len(thin) < len(full)

    def test_effective_window_clamps_to_trace(self):
        scenario = small_scenario(window_size=1_000_000)
        trace = scenario.build_trace()
        assert scenario.effective_window(trace) == trace.total_cycles

    def test_app_effective_window_honors_scenario_params(self):
        """The default analysis window must come from the *parameterized*
        application build (a custom burst length changes it), not the
        stock build."""
        scenario = Scenario(
            name="big-bursts",
            source="app:synthetic",
            params={"burst_cycles": 2_000, "total_cycles": 40_000},
        )
        trace = scenario.build_trace()
        assert scenario.effective_window(trace) == 4_000  # burst * 2


class TestSuite:
    def test_duplicate_scenario_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSuite(
                name="dup",
                scenarios=(small_scenario("a"), small_scenario("a")),
            )

    def test_empty_suite_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSuite(name="empty", scenarios=())

    def test_weights_in_order(self):
        suite = ScenarioSuite(
            name="w",
            scenarios=(
                small_scenario("a", weight=2.0),
                small_scenario("b", weight=5.0),
            ),
        )
        assert suite.weights == (2.0, 5.0)


class TestJsonRoundTrip:
    def test_suite_round_trips_through_dict(self):
        for name in sorted(SUITES):
            suite = build_suite(name)
            assert suite_from_dict(suite_to_dict(suite)) == suite

    def test_suite_round_trips_through_file(self, tmp_path):
        suite = build_suite("smoke")
        path = tmp_path / "suite.json"
        save_suite(suite, path)
        assert load_suite(path) == suite

    def test_reloaded_suite_builds_identical_traces(self, tmp_path):
        suite = build_suite("smoke")
        path = tmp_path / "suite.json"
        save_suite(suite, path)
        reloaded = load_suite(path)
        for original, loaded in zip(suite, reloaded):
            assert original.build_trace().records == loaded.build_trace().records

    def test_bad_format_rejected(self):
        with pytest.raises(ConfigurationError):
            suite_from_dict({"format": "nope", "name": "x", "scenarios": []})

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_suite(tmp_path / "absent.json")

    def test_unknown_builtin_suite_rejected(self):
        with pytest.raises(ConfigurationError, match="smoke"):
            build_suite("galactic")
