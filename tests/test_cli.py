"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_design_defaults(self):
        args = build_parser().parse_args(["design", "mat2"])
        assert args.app == "mat2"
        assert args.threshold == pytest.approx(0.3)
        assert args.maxtb == 4
        assert not args.validate

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8321
        assert args.workers == 2
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.verbose


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("mat1", "mat2", "fft", "qsort", "des", "synthetic"):
            assert name in out
        assert "21" in out  # mat2 core count

    def test_design_qsort(self, capsys):
        assert main(["design", "qsort"]) == 0
        out = capsys.readouterr().out
        assert "designed crossbar" in out
        assert "IT binding:" in out
        assert "pm0" in out

    def test_design_unknown_app_fails_cleanly(self, capsys):
        assert main(["design", "doom"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_design_with_validation(self, capsys):
        assert main(["design", "qsort", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "validation" in out
        assert "designed" in out

    def test_design_parameter_overrides(self, capsys):
        assert main(
            ["design", "qsort", "--window", "500", "--threshold", "0.1",
             "--maxtb", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "window size: 500" in out
        assert "10%" in out

    def test_trace_dump(self, tmp_path, capsys):
        out_path = tmp_path / "qsort.jsonl"
        assert main(["trace", "qsort", "-o", str(out_path)]) == 0
        assert out_path.exists()
        assert "wrote" in capsys.readouterr().out
        from repro.traffic import load_trace_jsonl

        trace = load_trace_jsonl(out_path)
        assert trace.num_initiators == 6

    def test_sweep_window(self, capsys):
        assert main(
            ["sweep-window", "--burst", "400", "--windows", "200", "1600"]
        ) == 0
        out = capsys.readouterr().out
        assert "window sweep" in out
        assert "200" in out

    def test_compare(self, capsys):
        assert main(["compare", "qsort"]) == 0
        out = capsys.readouterr().out
        for label in ("shared", "average-traffic", "windowed", "full"):
            assert label in out


class TestScenarios:
    def test_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("smoke", "mixed", "loadramp", "apps"):
            assert name in out

    def test_run_smoke_suite(self, capsys):
        assert main(["scenarios", "run", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "robust crossbar over 4 scenarios" in out
        assert "replay violations: 0" in out
        assert "pareto" in out

    def test_run_writes_json_report(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "report.json"
        assert main(
            ["scenarios", "run", "smoke", "--report", str(report_path)]
        ) == 0
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert payload["format"] == "repro-scenario-report-v1"
        assert payload["robust"]["total_violations"] == 0
        assert len(payload["scenarios"]) == 4

    def test_run_parallel_cached_matches_serial(self, tmp_path, capsys):
        def report_lines(text):
            # Drop the run banner (prints the job count) and cache stats.
            return [
                line for line in text.splitlines()
                if not line.startswith(("running scenario suite", "cache:"))
            ]

        argv = ["scenarios", "run", "smoke"]
        assert main(argv) == 0
        serial = report_lines(capsys.readouterr().out)
        cache = str(tmp_path / "cache")
        assert main(argv + ["--jobs", "2", "--cache-dir", cache]) == 0
        cold = report_lines(capsys.readouterr().out)
        assert main(argv + ["--jobs", "2", "--cache-dir", cache]) == 0
        warm = report_lines(capsys.readouterr().out)
        assert serial == cold == warm

    def test_export_then_run_from_file(self, tmp_path, capsys):
        suite_path = tmp_path / "suite.json"
        assert main(["scenarios", "export", "smoke", "-o", str(suite_path)]) == 0
        capsys.readouterr()
        assert main(["scenarios", "run", str(suite_path)]) == 0
        out = capsys.readouterr().out
        assert "robust crossbar over 4 scenarios" in out

    def test_weighted_policy_flag(self, capsys):
        assert main(
            ["scenarios", "run", "smoke", "--policy", "weighted",
             "--min-weight", "0.6"]
        ) == 0
        assert "policy=weighted" in capsys.readouterr().out

    def test_unknown_suite_fails_cleanly(self, capsys):
        assert main(["scenarios", "run", "atlantis"]) == 1
        assert "error:" in capsys.readouterr().err


class TestEngineOptions:
    def test_engine_defaults(self):
        args = build_parser().parse_args(["design", "mat2"])
        assert args.jobs == 1
        assert args.cache_dir is None

    def test_sweep_window_parallel_matches_serial(self, capsys):
        argv = ["sweep-window", "--burst", "400", "--windows", "200", "1600"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_design_with_cache_dir_reuses_results(self, tmp_path, capsys):
        from repro.core import SOLVE_COUNTER

        argv = ["design", "qsort", "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "cache:" in first

        SOLVE_COUNTER.reset()
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert SOLVE_COUNTER.total == 0  # warm cache: no solver work
        assert "designed crossbar" in second

    def test_negative_jobs_fails_cleanly(self, capsys):
        assert main(["sweep-window", "--jobs", "-3"]) == 1
        assert "error:" in capsys.readouterr().err


class TestPipelineCommands:
    def test_pipeline_inspect(self, capsys):
        assert main(["pipeline", "inspect", "qsort"]) == 0
        out = capsys.readouterr().out
        assert "stage artifacts for qsort" in out
        for stage in ("collect", "window[it]", "conflicts[ti]", "bind[it]",
                      "design"):
            assert stage in out
        assert "computed" in out

    def test_pipeline_inspect_cache_dir_skips_solves(self, tmp_path, capsys):
        from repro.core import SOLVE_COUNTER

        argv = ["pipeline", "inspect", "qsort",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        capsys.readouterr()
        SOLVE_COUNTER.reset()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert SOLVE_COUNTER.total == 0  # binding stages came from disk
        assert "stage artifacts for qsort" in out

    def test_pipeline_inspect_suite_prints_per_scenario_dag(self, capsys):
        assert main(["pipeline", "inspect", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "per-scenario stage DAG for suite 'smoke'" in out
        for stage in ("scenario-trace", "window[it]", "conflicts[ti]",
                      "individual-solve", "replay", "bind-merged[it]"):
            assert stage in out
        assert "burst-sync" in out  # per-scenario rows, not just stages
        assert "(suite)" in out

    def test_pipeline_inspect_suite_json_file(self, tmp_path, capsys):
        from repro.scenarios import build_suite, save_suite

        path = tmp_path / "custom.json"
        save_suite(build_suite("smoke"), path)
        assert main(["pipeline", "inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "per-scenario stage DAG" in out

    def test_pipeline_inspect_suite_rejects_window_override(self, capsys):
        assert main(["pipeline", "inspect", "smoke", "--window", "500"]) == 1
        assert "single-application" in capsys.readouterr().err

    def test_pipeline_inspect_unknown_app_fails_cleanly(self, capsys):
        assert main(["pipeline", "inspect", "doom"]) == 1
        assert "error:" in capsys.readouterr().err


class TestCacheCommands:
    def test_stats_and_prune(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["pipeline", "inspect", "qsort",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()

        assert main(["cache", "stats", cache_dir]) == 0
        out = capsys.readouterr().out
        # two persisted binding stages + two windowed-tensor npz
        # sidecars + two uncompressed mmap tiers + two warm-start hint
        # slots (one per crossbar side)
        assert "8 entries" in out

        assert main(["cache", "prune", cache_dir, "--max-bytes", "0"]) == 0
        assert "pruned 8 entries" in capsys.readouterr().out

        assert main(["cache", "stats", cache_dir]) == 0
        assert "0 entries" in capsys.readouterr().out


class TestScenarioPipelineFlags:
    def test_explain_cache_prints_breakdown(self, capsys):
        assert main(["scenarios", "run", "smoke", "--explain-cache"]) == 0
        out = capsys.readouterr().out
        assert "staged-pipeline cache breakdown" in out
        assert "bind-merged" in out
        assert "individual-solve" in out

    def test_replay_latency_adds_column_for_app_suites(self, capsys):
        assert main(["scenarios", "run", "apps", "--replay-latency"]) == 0
        out = capsys.readouterr().out
        assert "avg lat (cy)" in out


class TestObservabilityFlags:
    def test_trace_capture_writes_span_jsonl(self, tmp_path, capsys):
        from repro.obs import tracing
        from repro.obs.export import load_jsonl

        out_path = tmp_path / "spans.jsonl"
        assert main(["design", "qsort", "--trace", str(out_path)]) == 0
        assert "wrote" in capsys.readouterr().out
        spans = load_jsonl(str(out_path))
        names = {span.name for span in spans}
        assert "cli.design" in names
        assert "pipeline.bind" in names
        # The capture disarms on exit: no leaked global tracing state.
        assert not tracing.tracing_enabled()

    def test_trace_span_mode_renders_tree(self, tmp_path, capsys):
        out_path = tmp_path / "spans.jsonl"
        assert main(["design", "qsort", "--trace", str(out_path)]) == 0
        capsys.readouterr()
        assert main(["trace", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "cli.design" in out
        assert "wall ms" in out

    def test_trace_span_mode_exports_chrome(self, tmp_path, capsys):
        import json

        spans_path = tmp_path / "spans.jsonl"
        chrome_path = tmp_path / "chrome.json"
        assert main(["design", "qsort", "--trace", str(spans_path)]) == 0
        capsys.readouterr()
        assert main(
            ["trace", str(spans_path), "--export-chrome", str(chrome_path)]
        ) == 0
        assert "Chrome trace events" in capsys.readouterr().out
        document = json.loads(chrome_path.read_text())
        assert document["traceEvents"]
        assert all(e["ph"] == "X" for e in document["traceEvents"])

    def test_trace_app_mode_still_requires_output(self, capsys):
        assert main(["trace", "qsort"]) == 1
        assert "required" in capsys.readouterr().err

    def test_profile_includes_pipeline_stage_table(self, capsys):
        assert main(["design", "qsort", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "pipeline stages (this run)" in out
        assert "bind" in out

    def test_serve_parser_accepts_obs_flags(self):
        args = build_parser().parse_args(
            ["serve", "--log-json", "--no-trace"]
        )
        assert args.log_json is True
        assert args.no_trace is True
