"""Unit tests for table formatting and ASCII charts."""

import pytest

from repro.analysis import bar_chart, format_table, xy_plot


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"],
            [["a", 1], ["long-name", 22]],
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "----" in lines[1]
        assert lines[2].index("1") == lines[3].index("2")

    def test_floats_rounded(self):
        text = format_table(["x"], [[3.14159]])
        assert "3.14" in text
        assert "3.1416" not in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 2 * lines[0].count("#")

    def test_zero_value_has_no_bar(self):
        chart = bar_chart(["zero", "one"], [0.0, 1.0])
        assert "#" not in chart.splitlines()[0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_title_and_unit(self):
        chart = bar_chart(["a"], [1.5], title="sizes", unit="x")
        assert chart.splitlines()[0] == "sizes"
        assert "1.5x" in chart


class TestXYPlot:
    def test_contains_all_points(self):
        plot = xy_plot([0, 1, 2], [0, 1, 2], height=5, width=11)
        assert plot.count("*") == 3

    def test_monotone_series_descends_visually(self):
        plot = xy_plot([0, 1], [0, 10], height=4, width=8)
        rows = [line for line in plot.splitlines() if line.startswith("|")]
        # larger y appears on an earlier (higher) row
        first_star = next(i for i, row in enumerate(rows) if "*" in row)
        last_star = max(i for i, row in enumerate(rows) if "*" in row)
        assert first_star < last_star

    def test_ranges_in_footer(self):
        plot = xy_plot([1, 5], [2, 8], x_label="burst", y_label="window")
        assert "burst: 1 .. 5" in plot
        assert "window max=8" in plot

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            xy_plot([1], [1, 2])

    def test_degenerate_single_point(self):
        plot = xy_plot([3], [4])
        assert plot.count("*") == 1
