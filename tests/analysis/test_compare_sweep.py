"""Integration tests for design comparison and parameter sweeps."""

import pytest

from repro.analysis import (
    compare_designs,
    overlap_threshold_sweep,
    window_size_sweep,
)
from repro.analysis.sweep import acceptable_window_search
from repro.apps import build_application
from repro.apps.synthetic import build_synthetic, synthetic_trace
from repro.core import (
    SynthesisConfig,
    full_crossbar_design,
    shared_bus_design,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def small_synthetic():
    """A fast synthetic benchmark for sweep tests."""
    trace = synthetic_trace(
        burst_cycles=400, total_cycles=24_000, num_initiators=6,
        num_targets=6, seed=5,
    )
    return trace


class TestCompareDesigns:
    @pytest.fixture(scope="class")
    def mat2_setup(self):
        app = build_application("mat2")
        trace = app.simulate_full_crossbar().trace
        return app, trace

    def test_shared_vs_full_ordering(self, mat2_setup):
        app, trace = mat2_setup
        evaluations = compare_designs(
            app, [shared_bus_design(trace), full_crossbar_design(trace)]
        )
        shared, full = evaluations["shared"], evaluations["full"]
        assert shared.finished and full.finished
        assert shared.stats.mean > 2 * full.stats.mean
        assert shared.stats.maximum > full.stats.maximum
        assert shared.size_ratio_vs_shared == pytest.approx(1.0)
        assert full.size_ratio_vs_shared == pytest.approx(10.5)

    def test_relative_latency(self, mat2_setup):
        app, trace = mat2_setup
        evaluations = compare_designs(
            app, [shared_bus_design(trace), full_crossbar_design(trace)]
        )
        mean_ratio, max_ratio = evaluations["shared"].relative_latency(
            evaluations["full"]
        )
        assert mean_ratio > 2
        assert max_ratio > 1


class TestWindowSweep:
    def test_size_decreases_with_window(self, small_synthetic):
        points = window_size_sweep(
            small_synthetic,
            [100, 800, small_synthetic.total_cycles],
            SynthesisConfig(max_targets_per_bus=None),
        )
        sizes = [point.total_buses for point in points]
        assert sizes[0] >= sizes[1] >= sizes[2]
        assert points[0].value == 100

    def test_tiny_window_approaches_full(self, small_synthetic):
        points = window_size_sweep(
            small_synthetic, [64], SynthesisConfig(max_targets_per_bus=None)
        )
        # nearly one bus per active target on the IT side
        assert points[0].it_buses >= 4


class TestThresholdSweep:
    def test_size_decreases_with_threshold(self, small_synthetic):
        points = overlap_threshold_sweep(
            small_synthetic,
            [0.0, 0.25, 0.5],
            window_size=800,
            config=SynthesisConfig(max_targets_per_bus=None),
        )
        sizes = [point.it_buses for point in points]
        assert sizes[0] >= sizes[1] >= sizes[2]

    def test_zero_threshold_separates_overlapping_streams(self, small_synthetic):
        strict = overlap_threshold_sweep(
            small_synthetic, [0.0], window_size=800,
            config=SynthesisConfig(max_targets_per_bus=None),
        )[0]
        relaxed = overlap_threshold_sweep(
            small_synthetic, [0.5], window_size=800,
            config=SynthesisConfig(max_targets_per_bus=None),
        )[0]
        assert strict.it_buses > relaxed.it_buses


class TestAcceptableWindow:
    def test_returns_candidate_meeting_bound(self):
        app = build_synthetic(
            burst_cycles=400, total_cycles=24_000, seed=5
        )
        trace = app.simulate_full_crossbar().trace
        window = acceptable_window_search(
            app, trace, [400, 1_600], max_latency_ratio=3.0,
            config=SynthesisConfig(max_targets_per_bus=None),
        )
        assert window in (0, 400, 1_600)

    def test_empty_candidates_rejected(self):
        app = build_synthetic(burst_cycles=400, total_cycles=24_000)
        trace = app.simulate_full_crossbar().trace
        with pytest.raises(ConfigurationError):
            acceptable_window_search(app, trace, [])
