"""Tests for design-space exploration and Pareto filtering."""

import pytest

from repro.analysis import DesignPoint, explore_design_space, pareto_front
from repro.apps.synthetic import build_synthetic
from repro.core import SynthesisConfig
from repro.errors import ConfigurationError


def point(buses, mean, window=1000, threshold=0.3, maximum=50):
    return DesignPoint(
        window_size=window,
        overlap_threshold=threshold,
        bus_count=buses,
        mean_latency=mean,
        max_latency=maximum,
    )


class TestDominance:
    def test_strictly_better_dominates(self):
        assert point(4, 10.0).dominates(point(6, 12.0))

    def test_equal_points_do_not_dominate(self):
        assert not point(4, 10.0).dominates(point(4, 10.0))

    def test_tradeoff_points_incomparable(self):
        small_slow = point(4, 20.0)
        big_fast = point(8, 10.0)
        assert not small_slow.dominates(big_fast)
        assert not big_fast.dominates(small_slow)

    def test_tie_on_one_axis(self):
        assert point(4, 10.0).dominates(point(4, 12.0))
        assert point(4, 10.0).dominates(point(5, 10.0))


class TestParetoFront:
    def test_filters_dominated(self):
        points = [point(4, 20.0), point(8, 10.0), point(8, 25.0), point(9, 11.0)]
        front = pareto_front(points)
        assert point(4, 20.0) in front
        assert point(8, 10.0) in front
        assert point(8, 25.0) not in front
        assert point(9, 11.0) not in front

    def test_sorted_by_bus_count(self):
        front = pareto_front([point(8, 10.0), point(4, 20.0)])
        assert [p.bus_count for p in front] == [4, 8]

    def test_duplicates_collapse(self):
        front = pareto_front(
            [point(4, 10.0, window=500), point(4, 10.0, window=1000)]
        )
        assert len(front) == 1

    def test_empty_input(self):
        assert pareto_front([]) == []


class TestExploreDesignSpace:
    @pytest.fixture(scope="class")
    def setup(self):
        app = build_synthetic(burst_cycles=400, total_cycles=20_000, seed=5)
        trace = app.simulate_full_crossbar().trace
        return app, trace

    def test_grid_size(self, setup):
        app, trace = setup
        points = explore_design_space(
            app, trace, [400, 1_600], [0.1, 0.4],
            config=SynthesisConfig(max_targets_per_bus=None),
        )
        assert len(points) == 4
        assert {p.window_size for p in points} == {400, 1_600}

    def test_front_contains_extreme_tradeoffs(self, setup):
        app, trace = setup
        points = explore_design_space(
            app, trace, [400, trace.total_cycles], [0.1, 0.5],
            config=SynthesisConfig(max_targets_per_bus=None),
        )
        front = pareto_front(points)
        assert front
        # the cheapest design on the front must be no larger than any
        # explored point, and the fastest no slower
        assert min(p.bus_count for p in front) == min(
            p.bus_count for p in points
        )
        assert min(p.mean_latency for p in front) == min(
            p.mean_latency for p in points
        )

    def test_empty_grid_rejected(self, setup):
        app, trace = setup
        with pytest.raises(ConfigurationError):
            explore_design_space(app, trace, [], [0.3])
