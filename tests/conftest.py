"""Shared hygiene for the whole suite: the shared stage plane
(:mod:`repro.pipeline.shm`) is process-global -- offers and published
segments would otherwise leak windowed artifacts between tests that
happen to analyze identical traces, turning expected stage
computations into plane hits (and stranding shared-memory segments).
Every test starts and ends with the plane empty.
"""

import pytest

from repro.pipeline import shm


@pytest.fixture(autouse=True)
def _fresh_shared_plane():
    shm.reset_plane()
    yield
    shm.reset_plane()
