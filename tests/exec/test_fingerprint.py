"""Fingerprint canonicality: stability across processes and sensitivity."""

import os
import subprocess
import sys
from dataclasses import replace

from repro.apps.synthetic import synthetic_trace
from repro.core import SynthesisConfig
from repro.exec import config_fingerprint, task_key, trace_fingerprint

TRACE_KWARGS = dict(
    burst_cycles=200, total_cycles=8_000, num_initiators=4, num_targets=4,
    seed=11,
)


def _make_trace():
    return synthetic_trace(**TRACE_KWARGS)


class TestTraceFingerprint:
    def test_deterministic_within_process(self):
        assert trace_fingerprint(_make_trace()) == trace_fingerprint(
            _make_trace()
        )

    def test_sensitive_to_traffic(self):
        base = trace_fingerprint(_make_trace())
        other = synthetic_trace(**{**TRACE_KWARGS, "seed": 12})
        assert trace_fingerprint(other) != base

    def test_sensitive_to_platform_shape(self):
        base = trace_fingerprint(_make_trace())
        wider = synthetic_trace(**{**TRACE_KWARGS, "num_targets": 5})
        assert trace_fingerprint(wider) != base

    def test_stable_across_processes(self):
        """The digest must not depend on interpreter hash randomization."""
        here = trace_fingerprint(_make_trace())
        script = (
            "from repro.apps.synthetic import synthetic_trace\n"
            "from repro.exec import trace_fingerprint\n"
            f"trace = synthetic_trace(**{TRACE_KWARGS!r})\n"
            "print(trace_fingerprint(trace))\n"
        )
        for hash_seed in ("0", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            src_dir = os.path.join(
                os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
                "src",
            )
            env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
            output = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True, env=env,
            ).stdout.strip()
            assert output == here


class TestConfigFingerprint:
    def test_covers_every_field(self):
        base = SynthesisConfig()
        base_digest = config_fingerprint(base)
        variants = [
            replace(base, window_size=123),
            replace(base, overlap_threshold=0.1),
            replace(base, max_targets_per_bus=None),
            replace(base, backend="milp"),
            replace(base, use_criticality=False),
            replace(base, node_limit=10),
            replace(base, variable_windows=True),
            replace(base, variable_window_ratio=2),
        ]
        digests = {config_fingerprint(variant) for variant in variants}
        assert base_digest not in digests
        assert len(digests) == len(variants)


class TestTaskKey:
    def test_distinguishes_window_and_application(self):
        config = SynthesisConfig()
        digest = trace_fingerprint(_make_trace())
        base = task_key(digest, config, 500)
        assert task_key(digest, config, 501) != base
        assert task_key(digest, config, 500, application="mat2") != base
        assert task_key("0" * 64, config, 500) != base

    def test_repeatable(self):
        config = SynthesisConfig(overlap_threshold=0.2)
        digest = trace_fingerprint(_make_trace())
        assert task_key(digest, config, 800) == task_key(digest, config, 800)
