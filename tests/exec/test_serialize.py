"""JSON round-trip of the portable synthesis result."""

import json

import pytest

from repro.core import BusBinding, CrossbarDesign, SynthesisConfig
from repro.errors import ReproError
from repro.exec import SynthesisResult, result_from_dict, result_to_dict


def _sample_result() -> SynthesisResult:
    return SynthesisResult(
        design=CrossbarDesign(
            it=BusBinding(
                binding=(0, 1, 0, 2), num_buses=3, max_bus_overlap=37,
                optimal=True,
            ),
            ti=BusBinding(
                binding=(0, 0, 1), num_buses=2, max_bus_overlap=5,
                optimal=False,
            ),
            label="windowed",
        ),
        window_size=500,
        config=SynthesisConfig(window_size=500, overlap_threshold=0.2),
        it_conflicts=4,
        ti_conflicts=1,
        it_probes={2: False, 3: True, 4: True},
        ti_probes={1: False, 2: True},
    )


class TestRoundTrip:
    def test_dict_round_trip_is_exact(self):
        result = _sample_result()
        assert result_from_dict(result_to_dict(result)) == result

    def test_json_round_trip_is_exact(self):
        result = _sample_result()
        payload = json.loads(json.dumps(result_to_dict(result)))
        assert result_from_dict(payload) == result

    def test_encoding_is_deterministic(self):
        a = json.dumps(result_to_dict(_sample_result()), sort_keys=True)
        b = json.dumps(result_to_dict(_sample_result()), sort_keys=True)
        assert a == b

    def test_bus_count_property(self):
        assert _sample_result().bus_count == 5


class TestValidation:
    def test_rejects_unknown_format(self):
        payload = result_to_dict(_sample_result())
        payload["format"] = "repro-result-v999"
        with pytest.raises(ReproError):
            result_from_dict(payload)

    def test_rejects_non_dict(self):
        with pytest.raises(ReproError):
            result_from_dict(["not", "a", "result"])

    def test_rejects_missing_design(self):
        payload = result_to_dict(_sample_result())
        del payload["design"]
        with pytest.raises(ReproError):
            result_from_dict(payload)
