"""Execution-engine semantics: parallel equivalence and cached re-runs."""

import json

import pytest

from repro.analysis import (
    compare_designs,
    overlap_threshold_sweep,
    window_size_sweep,
)
from repro.analysis.sweep import acceptable_window_search
from repro.apps import build_application
from repro.apps.synthetic import synthetic_trace
from repro.core import SOLVE_COUNTER, SynthesisConfig
from repro.core.synthesis import CrossbarSynthesizer
from repro.errors import ConfigurationError
from repro.exec import (
    ExecutionEngine,
    ResultCache,
    SynthesisTask,
    result_to_dict,
)

WINDOWS = [150, 2_400]
CONFIG = SynthesisConfig(max_targets_per_bus=None)


@pytest.fixture(scope="module")
def small_trace():
    return synthetic_trace(
        burst_cycles=300, total_cycles=12_000, num_initiators=5,
        num_targets=5, seed=7,
    )


class TestParallelEquivalence:
    def test_two_point_sweep_identical_serial_vs_parallel(self, small_trace):
        """Acceptance: byte-identical SweepPoint lists at jobs=1 and jobs=2."""
        serial = window_size_sweep(
            small_trace, WINDOWS, CONFIG, engine=ExecutionEngine(jobs=1)
        )
        parallel = window_size_sweep(
            small_trace, WINDOWS, CONFIG, engine=ExecutionEngine(jobs=2)
        )
        assert serial == parallel
        assert repr(serial).encode() == repr(parallel).encode()

    def test_raw_results_identical_serial_vs_parallel(self, small_trace):
        tasks = [
            SynthesisTask(config=CONFIG, window_size=w) for w in WINDOWS
        ]
        serial = ExecutionEngine(jobs=1).run_sweep(small_trace, tasks)
        parallel = ExecutionEngine(jobs=2).run_sweep(small_trace, tasks)
        serial_bytes = json.dumps(
            [result_to_dict(r) for r in serial], sort_keys=True
        ).encode()
        parallel_bytes = json.dumps(
            [result_to_dict(r) for r in parallel], sort_keys=True
        ).encode()
        assert serial_bytes == parallel_bytes

    def test_threshold_sweep_identical(self, small_trace):
        thresholds = [0.0, 0.3]
        serial = overlap_threshold_sweep(
            small_trace, thresholds, 600, CONFIG,
            engine=ExecutionEngine(jobs=1),
        )
        parallel = overlap_threshold_sweep(
            small_trace, thresholds, 600, CONFIG,
            engine=ExecutionEngine(jobs=2),
        )
        assert serial == parallel

    def test_matches_direct_synthesizer(self, small_trace):
        """The engine is a transport, not a solver: same designs out."""
        from dataclasses import replace

        points = window_size_sweep(
            small_trace, [600], CONFIG, engine=ExecutionEngine(jobs=1)
        )
        report = CrossbarSynthesizer(
            replace(CONFIG, window_size=600)
        ).design_from_trace(small_trace, 600)
        assert points[0].it_buses == report.design.it.num_buses
        assert points[0].ti_buses == report.design.ti.num_buses


class TestCacheSemantics:
    def test_warm_cache_performs_zero_solves(self, small_trace, tmp_path):
        """Acceptance: second run with a warm cache never hits a solver."""
        cold = ExecutionEngine(jobs=1, cache=tmp_path / "cache")
        first = window_size_sweep(small_trace, WINDOWS, CONFIG, engine=cold)
        assert cold.cache.stats.stores == len(WINDOWS)

        warm = ExecutionEngine(jobs=1, cache=tmp_path / "cache")
        SOLVE_COUNTER.reset()
        second = window_size_sweep(small_trace, WINDOWS, CONFIG, engine=warm)
        assert SOLVE_COUNTER.total == 0
        assert second == first
        assert warm.cache.stats.hits == len(WINDOWS)
        assert warm.cache.stats.misses == 0

    def test_parallel_run_populates_cache_for_serial_rerun(
        self, small_trace, tmp_path
    ):
        cold = ExecutionEngine(jobs=2, cache=tmp_path / "cache")
        first = window_size_sweep(small_trace, WINDOWS, CONFIG, engine=cold)
        warm = ExecutionEngine(jobs=1, cache=tmp_path / "cache")
        SOLVE_COUNTER.reset()
        second = window_size_sweep(small_trace, WINDOWS, CONFIG, engine=warm)
        assert SOLVE_COUNTER.total == 0
        assert second == first

    def test_config_change_misses_cache(self, small_trace, tmp_path):
        engine = ExecutionEngine(jobs=1, cache=tmp_path / "cache")
        window_size_sweep(small_trace, [600], CONFIG, engine=engine)
        SOLVE_COUNTER.reset()
        window_size_sweep(
            small_trace, [600],
            SynthesisConfig(max_targets_per_bus=None, overlap_threshold=0.1),
            engine=engine,
        )
        assert SOLVE_COUNTER.total > 0

    def test_trace_change_misses_cache(self, small_trace, tmp_path):
        engine = ExecutionEngine(jobs=1, cache=tmp_path / "cache")
        window_size_sweep(small_trace, [600], CONFIG, engine=engine)
        other = synthetic_trace(
            burst_cycles=300, total_cycles=12_000, num_initiators=5,
            num_targets=5, seed=8,
        )
        SOLVE_COUNTER.reset()
        window_size_sweep(other, [600], CONFIG, engine=engine)
        assert SOLVE_COUNTER.total > 0

    def test_duplicate_tasks_solved_once(self, small_trace):
        """Windows clamped to the trace length collapse to one solve."""
        total = small_trace.total_cycles
        SOLVE_COUNTER.reset()
        single = window_size_sweep(
            small_trace, [total], CONFIG, engine=ExecutionEngine(jobs=1)
        )
        solves_for_one = SOLVE_COUNTER.total
        SOLVE_COUNTER.reset()
        tripled = window_size_sweep(
            small_trace,
            [total, total * 2, total * 10],  # all clamp to total_cycles
            CONFIG,
            engine=ExecutionEngine(jobs=1),
        )
        assert SOLVE_COUNTER.total == solves_for_one
        assert [p.total_buses for p in tripled] == [single[0].total_buses] * 3

    def test_synthesize_single_point(self, small_trace, tmp_path):
        engine = ExecutionEngine(jobs=1, cache=tmp_path / "cache")
        first = engine.synthesize(small_trace, CONFIG, window_size=600)
        SOLVE_COUNTER.reset()
        second = engine.synthesize(small_trace, CONFIG, window_size=600)
        assert SOLVE_COUNTER.total == 0
        assert first == second


class TestBatchExecution:
    """run_batch: one task per trace (the scenario-suite pattern)."""

    @pytest.fixture(scope="class")
    def batch(self):
        traces = [
            synthetic_trace(
                burst_cycles=300, total_cycles=12_000, num_initiators=5,
                num_targets=5, seed=seed,
            )
            for seed in (7, 8, 9)
        ]
        tasks = [SynthesisTask(config=CONFIG, window_size=600) for _ in traces]
        return list(zip(traces, tasks))

    def test_parallel_matches_serial(self, batch):
        serial = ExecutionEngine(jobs=1).run_batch(batch)
        parallel = ExecutionEngine(jobs=2).run_batch(batch)
        assert serial == parallel

    def test_results_align_with_input_order(self, batch):
        results = ExecutionEngine(jobs=1).run_batch(batch)
        for (trace, task), result in zip(batch, results):
            direct = CrossbarSynthesizer(task.config).design_from_trace(
                trace, task.window_size
            )
            assert result.design == direct.design

    def test_warm_cache_performs_zero_solves(self, batch, tmp_path):
        cold = ExecutionEngine(jobs=1, cache=tmp_path / "cache")
        first = cold.run_batch(batch)
        assert cold.cache.stats.stores == len(batch)
        warm = ExecutionEngine(jobs=1, cache=tmp_path / "cache")
        SOLVE_COUNTER.reset()
        second = warm.run_batch(batch)
        assert SOLVE_COUNTER.total == 0
        assert second == first

    def test_duplicate_items_share_one_solve(self, batch):
        doubled = batch + [batch[0]]
        SOLVE_COUNTER.reset()
        results = ExecutionEngine(jobs=1).run_batch(doubled)
        solves_plain = SOLVE_COUNTER.total
        SOLVE_COUNTER.reset()
        ExecutionEngine(jobs=1).run_batch(batch)
        assert solves_plain == SOLVE_COUNTER.total  # the repeat was free
        assert results[-1] == results[0]

    def test_application_tags_separate_cache_keys(self, batch, tmp_path):
        (trace, task) = batch[0]
        engine = ExecutionEngine(jobs=1, cache=tmp_path / "cache")
        engine.run_batch([(trace, task)], applications=["scenario:a"])
        SOLVE_COUNTER.reset()
        engine.run_batch([(trace, task)], applications=["scenario:b"])
        assert SOLVE_COUNTER.total > 0  # different tag, different key
        SOLVE_COUNTER.reset()
        engine.run_batch([(trace, task)], applications=["scenario:a"])
        assert SOLVE_COUNTER.total == 0

    def test_tag_length_mismatch_rejected(self, batch):
        with pytest.raises(ConfigurationError):
            ExecutionEngine(jobs=1).run_batch(batch, applications=["only-one"])


class TestEngineConfiguration:
    def test_jobs_zero_means_cpu_count(self):
        assert ExecutionEngine(jobs=0).jobs >= 1
        assert ExecutionEngine(jobs=None).jobs >= 1

    def test_negative_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutionEngine(jobs=-2)

    def test_cache_path_coerced(self, tmp_path):
        engine = ExecutionEngine(cache=str(tmp_path / "c"))
        assert isinstance(engine.cache, ResultCache)

    def test_task_validates_window(self):
        with pytest.raises(ConfigurationError):
            SynthesisTask(config=SynthesisConfig(), window_size=0)


class TestEvaluationFanOut:
    @pytest.fixture(scope="class")
    def qsort_setup(self):
        app = build_application("qsort")
        trace = app.simulate_full_crossbar().trace
        return app, trace

    def test_compare_designs_parallel_matches_serial(self, qsort_setup):
        from repro.core import full_crossbar_design, shared_bus_design

        app, trace = qsort_setup
        designs = [shared_bus_design(trace), full_crossbar_design(trace)]
        serial = compare_designs(app, designs)
        parallel = compare_designs(
            app, designs, engine=ExecutionEngine(jobs=2)
        )
        assert serial == parallel

    def test_acceptable_window_search_parallel_matches_serial(
        self, qsort_setup
    ):
        app, trace = qsort_setup
        candidates = [200, 800]
        serial = acceptable_window_search(app, trace, candidates)
        parallel = acceptable_window_search(
            app, trace, candidates, engine=ExecutionEngine(jobs=2)
        )
        assert serial == parallel

    def test_registry_key_set_only_for_default_builds(self):
        assert build_application("qsort").registry_key == "qsort"
        customized = build_application("synthetic", burst_cycles=250)
        assert customized.registry_key is None

    def test_customized_app_parallel_matches_serial(self):
        """Customized apps cannot be rebuilt by name in workers; the
        parallel path must fall back to in-process simulation instead of
        silently evaluating the default workload."""
        from repro.core import full_crossbar_design, shared_bus_design

        app = build_application(
            "synthetic", burst_cycles=250, total_cycles=10_000
        )
        trace = app.simulate_full_crossbar().trace
        designs = [shared_bus_design(trace), full_crossbar_design(trace)]
        serial = compare_designs(app, designs)
        parallel = compare_designs(app, designs, engine=ExecutionEngine(jobs=2))
        assert serial == parallel


class TestWorkerTraceStaleness:
    """run_batch/run_sweep workers must verify their installed trace.

    A reused or fork-inherited worker process can hold a previous
    sweep's trace in its module globals; solving against it would be
    silently wrong. Tasks ship the expected trace fingerprint and the
    worker refuses on mismatch.
    """

    def _cleanup(self):
        from repro.exec import engine as engine_module

        engine_module._WORKER_TRACE = None
        engine_module._WORKER_TRACE_DIGEST = None

    def test_mismatched_trace_refused(self, small_trace):
        from repro.exec import StaleWorkerTraceError
        from repro.exec.engine import (
            _install_worker_trace,
            _solve_task_in_worker,
        )
        from repro.exec.fingerprint import trace_fingerprint

        stale = synthetic_trace(
            burst_cycles=300, total_cycles=12_000, num_initiators=5,
            num_targets=5, seed=99,
        )
        task = SynthesisTask(config=CONFIG, window_size=600)
        _install_worker_trace(stale)  # the leak: a previous sweep's trace
        try:
            with pytest.raises(StaleWorkerTraceError):
                _solve_task_in_worker(0, task, trace_fingerprint(small_trace))
        finally:
            self._cleanup()

    def test_matching_trace_solves(self, small_trace):
        from repro.exec.engine import (
            _install_worker_trace,
            _solve_task_in_worker,
            _solve_task,
        )
        from repro.exec.fingerprint import trace_fingerprint

        task = SynthesisTask(config=CONFIG, window_size=600)
        _install_worker_trace(small_trace)
        try:
            index, result = _solve_task_in_worker(
                3, task, trace_fingerprint(small_trace)
            )
        finally:
            self._cleanup()
        assert index == 3
        assert result == _solve_task(small_trace, task)

    def test_missing_initializer_refused(self, small_trace):
        from repro.exec import StaleWorkerTraceError
        from repro.exec.engine import _solve_task_in_worker
        from repro.exec.fingerprint import trace_fingerprint

        self._cleanup()
        task = SynthesisTask(config=CONFIG, window_size=600)
        with pytest.raises(StaleWorkerTraceError):
            _solve_task_in_worker(0, task, trace_fingerprint(small_trace))
