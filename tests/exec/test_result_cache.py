"""Cache hit/miss semantics and on-disk robustness."""

import pytest

from repro.core import BusBinding, CrossbarDesign, SynthesisConfig
from repro.errors import ReproError
from repro.exec import ResultCache, SynthesisResult

KEY_A = "a" * 64
KEY_B = "b" * 64


def _result(num_buses: int = 2) -> SynthesisResult:
    binding = BusBinding(
        binding=tuple(i % num_buses for i in range(4)), num_buses=num_buses
    )
    return SynthesisResult(
        design=CrossbarDesign(it=binding, ti=binding),
        window_size=400,
        config=SynthesisConfig(window_size=400),
    )


class TestHitMiss:
    def test_empty_cache_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(KEY_A) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_put_then_get_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = _result()
        cache.put(KEY_A, result)
        assert cache.get(KEY_A) == result
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_keys_are_independent(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result(2))
        cache.put(KEY_B, _result(3))
        assert cache.get(KEY_A).design.it.num_buses == 2
        assert cache.get(KEY_B).design.it.num_buses == 3

    def test_persists_across_instances(self, tmp_path):
        ResultCache(tmp_path).put(KEY_A, _result())
        assert ResultCache(tmp_path).get(KEY_A) == _result()

    def test_contains_and_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert KEY_A not in cache
        cache.put(KEY_A, _result())
        assert KEY_A in cache
        assert list(cache.keys()) == [KEY_A]

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result())
        cache.put(KEY_B, _result())
        assert cache.clear() == 2
        assert cache.get(KEY_A) is None


class TestRobustness:
    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result())
        (tmp_path / f"{KEY_A}.json").write_text("{ not json", encoding="utf-8")
        assert cache.get(KEY_A) is None
        assert cache.stats.invalid == 1

    def test_binary_garbage_entry_is_a_miss_and_recoverable(self, tmp_path):
        """A corrupted/truncated entry (here: non-UTF-8 bytes) must be a
        cache miss that a later put() overwrites, never an error."""
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result())
        (tmp_path / f"{KEY_A}.json").write_bytes(b"\xff\xfe\x00garbage\x9c")
        assert cache.get(KEY_A) is None
        assert cache.stats.invalid == 1
        cache.put(KEY_A, _result(3))
        assert cache.get(KEY_A).design.it.num_buses == 3

    def test_truncated_entry_is_a_miss(self, tmp_path):
        """A writer killed mid-write leaves a valid-prefix JSON torso."""
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result())
        path = tmp_path / f"{KEY_A}.json"
        path.write_text(path.read_text(encoding="utf-8")[:40], encoding="utf-8")
        assert cache.get(KEY_A) is None
        assert cache.stats.invalid == 1

    def test_wrong_shape_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / f"{KEY_A}.json").write_text("[1, 2, 3]", encoding="utf-8")
        assert cache.get(KEY_A) is None
        assert cache.stats.invalid == 1

    def test_stale_format_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / f"{KEY_A}.json").write_text(
            '{"format": "repro-result-v0"}', encoding="utf-8"
        )
        assert cache.get(KEY_A) is None
        assert cache.stats.invalid == 1

    def test_overwrite_replaces_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result(2))
        cache.put(KEY_A, _result(3))
        assert cache.get(KEY_A).design.it.num_buses == 3

    def test_no_temp_file_litter(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result())
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name.startswith(".tmp-")]
        assert leftovers == []

    def test_rejects_path_traversal_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        for bad in ("", "../evil", "a/b", "dotted.key"):
            with pytest.raises(ReproError):
                cache.get(bad)

    def test_rejects_cache_path_that_is_a_file(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("occupied", encoding="utf-8")
        with pytest.raises(ReproError):
            ResultCache(target)

    def test_orphaned_temp_files_are_invisible(self, tmp_path):
        """A writer killed mid-put leaves .tmp-*.json; keys()/clear()
        must ignore it rather than treat it as an entry."""
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result())
        (tmp_path / ".tmp-orphan.json").write_text("{}", encoding="utf-8")
        assert list(cache.keys()) == [KEY_A]
        assert cache.clear() == 1
        assert list(cache.keys()) == []


class TestGenericEntries:
    """Per-stage JSON entries sharing the directory with results."""

    def test_json_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_json(KEY_A, {"format": "x", "payload": {"n": 3}})
        assert cache.get_json(KEY_A) == {"format": "x", "payload": {"n": 3}}
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_json_miss_and_corrupt_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get_json(KEY_A) is None
        (tmp_path / f"{KEY_B}.json").write_bytes(b"\xff\xfe garbage")
        assert cache.get_json(KEY_B) is None
        assert cache.stats.invalid == 1

    def test_json_rejects_malformed_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ReproError):
            cache.get_json("../evil")


class TestUsageAndPrune:
    def test_usage_counts_entries_and_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.usage().entries == 0
        cache.put(KEY_A, _result())
        cache.put_json(KEY_B, {"x": 1})
        usage = cache.usage()
        assert usage.entries == 2
        assert usage.total_bytes == sum(
            (tmp_path / f"{k}.json").stat().st_size for k in (KEY_A, KEY_B)
        )

    def test_prune_noop_when_under_budget(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result())
        assert cache.prune(cache.usage().total_bytes) == 0
        assert KEY_A in cache

    def test_prune_evicts_least_recently_used(self, tmp_path):
        import os

        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result())
        cache.put(KEY_B, _result())
        # Age A far into the past, then touch it via a hit: the hit must
        # refresh its recency so B (untouched, older access) goes first.
        os.utime(tmp_path / f"{KEY_A}.json", (1, 1))
        os.utime(tmp_path / f"{KEY_B}.json", (2, 2))
        assert cache.get(KEY_A) is not None
        one_entry = (tmp_path / f"{KEY_A}.json").stat().st_size
        assert cache.prune(one_entry) == 1
        assert KEY_A in cache
        assert KEY_B not in cache

    def test_prune_to_zero_empties_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result())
        cache.put(KEY_B, _result())
        assert cache.prune(0) == 2
        assert cache.usage().entries == 0

    def test_prune_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ReproError):
            ResultCache(tmp_path).prune(-1)

    def test_foreign_json_files_are_invisible(self, tmp_path):
        """A stray 'report.v2.json' dropped into the directory must not
        break usage()/prune()/clear() -- its stem is not a valid key."""
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result())
        (tmp_path / "report.v2.json").write_text("{}", encoding="utf-8")
        assert list(cache.keys()) == [KEY_A]
        assert cache.usage().entries == 1
        assert cache.prune(0) == 1
        assert (tmp_path / "report.v2.json").exists()  # left untouched


class TestConcurrency:
    """The daemon shares one cache across handler and worker threads;
    maintenance walks and statistics must survive the races."""

    def test_usage_and_prune_tolerate_racing_writers(self, tmp_path):
        import threading

        cache = ResultCache(tmp_path)
        stop = threading.Event()
        errors = []

        def churn(prefix):
            i = 0
            try:
                while not stop.is_set():
                    key = f"{prefix}{i % 20:064d}"[-64:]
                    cache.put_json(key, {"i": i})
                    i += 1
            except Exception as error:  # pragma: no cover - the failure
                errors.append(error)

        def maintain():
            try:
                while not stop.is_set():
                    cache.usage()
                    cache.prune(256)
            except Exception as error:  # pragma: no cover - the failure
                errors.append(error)

        threads = [
            threading.Thread(target=churn, args=("a",)),
            threading.Thread(target=churn, args=("b",)),
            threading.Thread(target=maintain),
            threading.Thread(target=maintain),
        ]
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.5)
        stop.set()
        for thread in threads:
            thread.join()
        assert errors == []
        usage = cache.usage()  # still a coherent view afterwards
        assert usage.entries >= 0

    def test_stats_updates_are_not_lost_across_threads(self, tmp_path):
        import threading

        cache = ResultCache(tmp_path)
        cache.put_json("c" * 64, {"v": 1})
        per_thread = 200
        threads = [
            threading.Thread(
                target=lambda: [
                    cache.get_json("c" * 64) for _ in range(per_thread)
                ]
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.stats.hits == 4 * per_thread
        assert cache.stats.stores == 1
