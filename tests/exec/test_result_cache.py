"""Cache hit/miss semantics and on-disk robustness."""

import pytest

from repro.core import BusBinding, CrossbarDesign, SynthesisConfig
from repro.errors import ReproError
from repro.exec import ResultCache, SynthesisResult

KEY_A = "a" * 64
KEY_B = "b" * 64


def _result(num_buses: int = 2) -> SynthesisResult:
    binding = BusBinding(
        binding=tuple(i % num_buses for i in range(4)), num_buses=num_buses
    )
    return SynthesisResult(
        design=CrossbarDesign(it=binding, ti=binding),
        window_size=400,
        config=SynthesisConfig(window_size=400),
    )


class TestHitMiss:
    def test_empty_cache_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(KEY_A) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_put_then_get_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = _result()
        cache.put(KEY_A, result)
        assert cache.get(KEY_A) == result
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_keys_are_independent(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result(2))
        cache.put(KEY_B, _result(3))
        assert cache.get(KEY_A).design.it.num_buses == 2
        assert cache.get(KEY_B).design.it.num_buses == 3

    def test_persists_across_instances(self, tmp_path):
        ResultCache(tmp_path).put(KEY_A, _result())
        assert ResultCache(tmp_path).get(KEY_A) == _result()

    def test_contains_and_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert KEY_A not in cache
        cache.put(KEY_A, _result())
        assert KEY_A in cache
        assert list(cache.keys()) == [KEY_A]

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result())
        cache.put(KEY_B, _result())
        assert cache.clear() == 2
        assert cache.get(KEY_A) is None


class TestRobustness:
    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result())
        (tmp_path / f"{KEY_A}.json").write_text("{ not json", encoding="utf-8")
        assert cache.get(KEY_A) is None
        assert cache.stats.invalid == 1

    def test_binary_garbage_entry_is_a_miss_and_recoverable(self, tmp_path):
        """A corrupted/truncated entry (here: non-UTF-8 bytes) must be a
        cache miss that a later put() overwrites, never an error."""
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result())
        (tmp_path / f"{KEY_A}.json").write_bytes(b"\xff\xfe\x00garbage\x9c")
        assert cache.get(KEY_A) is None
        assert cache.stats.invalid == 1
        cache.put(KEY_A, _result(3))
        assert cache.get(KEY_A).design.it.num_buses == 3

    def test_truncated_entry_is_a_miss(self, tmp_path):
        """A writer killed mid-write leaves a valid-prefix JSON torso."""
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result())
        path = tmp_path / f"{KEY_A}.json"
        path.write_text(path.read_text(encoding="utf-8")[:40], encoding="utf-8")
        assert cache.get(KEY_A) is None
        assert cache.stats.invalid == 1

    def test_wrong_shape_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / f"{KEY_A}.json").write_text("[1, 2, 3]", encoding="utf-8")
        assert cache.get(KEY_A) is None
        assert cache.stats.invalid == 1

    def test_stale_format_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / f"{KEY_A}.json").write_text(
            '{"format": "repro-result-v0"}', encoding="utf-8"
        )
        assert cache.get(KEY_A) is None
        assert cache.stats.invalid == 1

    def test_overwrite_replaces_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result(2))
        cache.put(KEY_A, _result(3))
        assert cache.get(KEY_A).design.it.num_buses == 3

    def test_no_temp_file_litter(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result())
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name.startswith(".tmp-")]
        assert leftovers == []

    def test_rejects_path_traversal_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        for bad in ("", "../evil", "a/b", "dotted.key"):
            with pytest.raises(ReproError):
                cache.get(bad)

    def test_rejects_cache_path_that_is_a_file(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("occupied", encoding="utf-8")
        with pytest.raises(ReproError):
            ResultCache(target)

    def test_orphaned_temp_files_are_invisible(self, tmp_path):
        """A writer killed mid-put leaves .tmp-*.json; keys()/clear()
        must ignore it rather than treat it as an entry."""
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, _result())
        (tmp_path / ".tmp-orphan.json").write_text("{}", encoding="utf-8")
        assert list(cache.keys()) == [KEY_A]
        assert cache.clear() == 1
        assert list(cache.keys()) == []
