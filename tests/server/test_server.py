"""End-to-end and unit coverage of the ``repro serve`` daemon.

The acceptance property of the whole server PR lives here: two
concurrent identical submissions perform exactly ONE pipeline solve,
proved by a process-global solve-counter assertion (the counter tallies
every MILP/assignment invocation, so a duplicated solve cannot hide).
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.instrumentation import SOLVE_COUNTER
from repro.server import (
    DesignRequest,
    JobQueue,
    RequestCoalescer,
    RequestError,
    SynthesisServer,
    SynthesisService,
    parse_job_request,
)
from repro.server.schemas import SuiteRequest


# -- helpers ----------------------------------------------------------


def http_post(base, payload):
    request = urllib.request.Request(
        f"{base}/v1/jobs",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def http_get(base, path):
    try:
        with urllib.request.urlopen(f"{base}{path}") as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def http_method(base, path, method):
    request = urllib.request.Request(f"{base}{path}", method=method)
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


# -- request schemas --------------------------------------------------


class TestSchemas:
    def test_design_request_parses_with_defaults(self):
        request = parse_job_request({"kind": "design", "app": "qsort"})
        assert isinstance(request, DesignRequest)
        assert request.app == "qsort"
        assert request.window is None
        assert request.backend == "assignment"

    def test_fingerprint_independent_of_default_spelling(self):
        from repro.apps import build_application

        implicit = parse_job_request({"kind": "design", "app": "qsort"})
        explicit = parse_job_request(
            {
                "kind": "design",
                "app": "qsort",
                "window": build_application("qsort").default_window,
                "threshold": 0.3,
                "maxtb": 4,
                "backend": "assignment",
            }
        )
        assert implicit.fingerprint() == explicit.fingerprint()

    def test_fingerprint_differs_across_semantics(self):
        base = parse_job_request({"kind": "design", "app": "qsort"})
        other = parse_job_request(
            {"kind": "design", "app": "qsort", "threshold": 0.2}
        )
        assert base.fingerprint() != other.fingerprint()

    def test_non_object_body_rejected(self):
        with pytest.raises(RequestError, match="JSON object"):
            parse_job_request(["kind", "design"])

    def test_missing_kind_rejected(self):
        with pytest.raises(RequestError, match="'kind'"):
            parse_job_request({"app": "qsort"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(RequestError, match="unknown job kind"):
            parse_job_request({"kind": "frobnicate"})

    def test_unknown_field_rejected(self):
        with pytest.raises(RequestError, match="unknown request field"):
            parse_job_request(
                {"kind": "design", "app": "qsort", "wibble": 1}
            )

    def test_unknown_app_reports_choices(self):
        with pytest.raises(RequestError) as excinfo:
            parse_job_request({"kind": "design", "app": "nope"})
        assert "qsort" in excinfo.value.details["choices"]

    def test_out_of_range_threshold_rejected(self):
        with pytest.raises(RequestError, match="threshold"):
            parse_job_request(
                {"kind": "design", "app": "qsort", "threshold": 0.9}
            )

    def test_suite_requires_exactly_one_source(self):
        with pytest.raises(RequestError, match="exactly one"):
            parse_job_request({"kind": "suite"})

    def test_unknown_suite_rejected(self):
        with pytest.raises(RequestError, match="unknown suite"):
            parse_job_request({"kind": "suite", "suite": "nope"})

    def test_inline_suite_round_trips_through_fingerprint(self):
        from repro.scenarios import SUITES, build_suite, suite_to_dict

        name = sorted(SUITES)[0]
        payload = suite_to_dict(build_suite(name))
        request = parse_job_request(
            {"kind": "suite", "suite_payload": payload}
        )
        assert isinstance(request, SuiteRequest)
        assert request.suite_dict() == payload
        # Key order must not matter to the content address.
        shuffled = dict(reversed(list(payload.items())))
        again = parse_job_request(
            {"kind": "suite", "suite_payload": shuffled}
        )
        assert request.fingerprint() == again.fingerprint()

    def test_invalid_inline_suite_rejected(self):
        with pytest.raises(RequestError, match="invalid inline suite"):
            parse_job_request(
                {"kind": "suite", "suite_payload": {"format": "wrong"}}
            )


# -- coalescer --------------------------------------------------------


class TestRequestCoalescer:
    def _job(self):
        queue = JobQueue(lambda job: {}, workers=1)
        job = queue.new_job(
            parse_job_request({"kind": "design", "app": "qsort"}), "fp"
        )
        queue.shutdown()
        return job

    def test_single_flight_admission(self):
        coalescer = RequestCoalescer()
        job = self._job()
        first, disposition = coalescer.admit("fp", lambda: job)
        assert disposition == "new" and first is job

        shared, disposition = coalescer.admit("fp", lambda: 1 / 0)
        assert disposition == "coalesced" and shared is job
        assert job.coalesced == 1

        job.mark_done({"ok": True})
        done, disposition = coalescer.admit("fp", lambda: 1 / 0)
        assert disposition == "finished" and done is job

        stats = coalescer.stats()
        assert stats["submitted"] == 3
        assert stats["executed"] == 1
        assert stats["coalesced"] == 1
        assert stats["finished_hits"] == 1

    def test_failed_jobs_are_retried(self):
        coalescer = RequestCoalescer()
        failed = self._job()
        coalescer.admit("fp", lambda: failed)
        failed.mark_failed("boom")
        retry = self._job()
        job, disposition = coalescer.admit("fp", lambda: retry)
        assert disposition == "new" and job is retry


# -- job queue --------------------------------------------------------


class TestJobQueue:
    def _request(self):
        return parse_job_request({"kind": "design", "app": "qsort"})

    def test_job_lifecycle(self):
        queue = JobQueue(lambda job: {"echo": job.fingerprint}, workers=1)
        job = queue.new_job(self._request(), "fp-1")
        assert job.state == "queued"
        queue.submit(job)
        assert job.wait(10)
        status = job.status()
        assert status["state"] == "done"
        assert status["result"] == {"echo": "fp-1"}
        assert status["finished_at"] >= status["submitted_at"]
        queue.shutdown()

    def test_exceptions_mark_failed(self):
        def explode(job):
            raise ValueError("deliberate")

        queue = JobQueue(explode, workers=1)
        job = queue.new_job(self._request(), "fp-1")
        queue.submit(job)
        assert job.wait(10)
        assert job.state == "failed"
        assert "deliberate" in job.status()["error"]
        queue.shutdown()

    def test_shutdown_drains_queued_jobs(self):
        release = threading.Event()
        done = []

        def execute(job):
            release.wait(10)
            done.append(job.id)
            return {}

        queue = JobQueue(execute, workers=1)
        jobs = [queue.new_job(self._request(), f"fp-{i}") for i in range(3)]
        for job in jobs:
            queue.submit(job)
        release.set()
        queue.shutdown(drain=True)  # must block until all three ran
        assert len(done) == 3
        assert all(job.state == "done" for job in jobs)

    def test_shutdown_without_drain_fails_queued_jobs(self):
        release = threading.Event()

        def execute(job):
            release.wait(10)
            return {}

        queue = JobQueue(execute, workers=1)
        first = queue.new_job(self._request(), "fp-0")
        queue.submit(first)
        # Ensure the worker picked up `first` so the rest stay queued.
        deadline = threading.Event()
        while first.state == "queued" and not deadline.wait(0.01):
            pass
        abandoned = [
            queue.new_job(self._request(), f"fp-{i}") for i in (1, 2)
        ]
        for job in abandoned:
            queue.submit(job)
        release.set()
        queue.shutdown(drain=False)
        assert all(job.state == "failed" for job in abandoned)
        assert first.state == "done"  # in-flight still completes

    def test_submit_after_shutdown_rejected(self):
        queue = JobQueue(lambda job: {}, workers=1)
        queue.shutdown()
        with pytest.raises(RuntimeError, match="shutting down"):
            queue.submit(queue.new_job(self._request(), "fp"))


# -- the acceptance property: coalescing saves real solves ------------


class TestServiceCoalescing:
    def test_concurrent_identical_requests_one_solve(self, tmp_path):
        """Two concurrent identical submissions -> exactly one solve.

        A solo run establishes how many solver invocations one design
        costs; the concurrent pair must cost exactly the same total.
        """
        solo_service = SynthesisService(
            cache_dir=str(tmp_path / "solo"), workers=2
        )
        SOLVE_COUNTER.reset()
        job, disposition = solo_service.submit(
            {"kind": "design", "app": "qsort"}
        )
        assert disposition == "new"
        assert job.wait(120) and job.state == "done"
        solo_solves = SOLVE_COUNTER.total
        assert solo_solves > 0
        solo_service.close()

        service = SynthesisService(
            cache_dir=str(tmp_path / "pair"), workers=2
        )
        SOLVE_COUNTER.reset()
        first, disposition_1 = service.submit(
            {"kind": "design", "app": "qsort"}
        )
        second, disposition_2 = service.submit(
            {"kind": "design", "app": "qsort"}
        )
        assert disposition_1 == "new"
        assert disposition_2 == "coalesced"
        assert second is first  # one job, two submitters
        assert first.wait(120) and first.state == "done"
        assert SOLVE_COUNTER.total == solo_solves
        assert first.coalesced == 1

        # A third submission after completion: served from the
        # registry, still no extra solve.
        third, disposition_3 = service.submit(
            {"kind": "design", "app": "qsort"}
        )
        assert disposition_3 == "finished"
        assert third.result == first.result
        assert SOLVE_COUNTER.total == solo_solves
        service.close()

    def test_warm_cache_answers_without_queueing(self, tmp_path):
        service = SynthesisService(cache_dir=str(tmp_path), workers=1)
        job, _ = service.submit({"kind": "design", "app": "qsort"})
        assert job.wait(120) and job.state == "done"
        service.close()

        # A fresh service on the same cache directory: the daemon
        # restarted, but the whole-result cache answers instantly.
        restarted = SynthesisService(cache_dir=str(tmp_path), workers=1)
        SOLVE_COUNTER.reset()
        warm, disposition = restarted.submit(
            {"kind": "design", "app": "qsort"}
        )
        assert disposition == "cached"
        assert warm.state == "done"
        assert SOLVE_COUNTER.total == 0
        assert warm.result == job.result
        restarted.close()


# -- HTTP surface -----------------------------------------------------


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    instance = SynthesisServer(
        port=0,
        cache_dir=str(tmp_path_factory.mktemp("server-cache")),
        workers=2,
    )
    instance.start()
    yield instance
    if instance.draining.is_set():
        return  # a test already stopped it
    instance.stop()


@pytest.fixture(scope="module")
def base(server):
    return f"http://127.0.0.1:{server.server_address[1]}"


class TestHTTP:
    def test_health(self, base):
        status, body = http_get(base, "/v1/health")
        assert status == 200
        # A fault-free module-scoped server must report healthy; the
        # degraded shape is covered in tests/resilience.
        assert body["status"] == "ok"
        assert body["degraded"] is False
        assert body["reasons"] == []

    def test_submit_poll_fetch_lifecycle(self, base):
        status, body = http_post(base, {"kind": "design", "app": "qsort"})
        assert status == 202
        assert body["disposition"] in ("new", "coalesced", "finished")
        job_id = body["job"]
        assert body["fingerprint"]

        status, listed = http_get(base, "/v1/jobs")
        assert status == 200
        assert any(job["job"] == job_id for job in listed["jobs"])

        status, done = http_get(base, f"/v1/jobs/{job_id}?wait=120")
        assert status == 200
        assert done["state"] == "done"
        result = done["result"]
        assert result["format"] == "repro-server-design-v1"
        assert result["app"] == "qsort"
        assert result["design_fingerprint"]
        assert result["result"]["format"] == "repro-result-v1"
        # Progress tallies cover the real pipeline stages.
        assert set(done["progress"]) >= {"window", "conflicts", "bind"}

    def test_concurrent_identical_posts_share_one_job(self, base):
        payload = {"kind": "design", "app": "qsort", "threshold": 0.25}
        responses = []

        def submit():
            responses.append(http_post(base, payload))

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(status == 202 for status, _ in responses)
        job_ids = {body["job"] for _, body in responses}
        assert len(job_ids) == 1  # both submissions share one job
        dispositions = sorted(body["disposition"] for _, body in responses)
        assert dispositions[0] in ("coalesced", "finished")
        assert "new" in dispositions
        status, done = http_get(base, f"/v1/jobs/{job_ids.pop()}?wait=120")
        assert status == 200 and done["state"] == "done"

    def test_malformed_request_gets_json_400(self, base):
        status, body = http_post(base, {"kind": "design", "app": "nope"})
        assert status == 400
        assert "unknown application" in body["error"]["message"]
        assert "qsort" in body["error"]["choices"]

        status, body = http_post(base, {"kind": "design"})
        assert status == 400
        assert "app" in body["error"]["message"]

        status, body = http_post(base, ["not", "an", "object"])
        assert status == 400
        assert "JSON object" in body["error"]["message"]

    def test_unparseable_body_gets_json_400(self, base):
        request = urllib.request.Request(
            f"{base}/v1/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert "not valid JSON" in body["error"]["message"]

    def test_unknown_job_and_path_get_404(self, base):
        status, body = http_get(base, "/v1/jobs/job-999999")
        assert status == 404
        assert "no such job" in body["error"]["message"]
        status, body = http_get(base, "/v1/frobnicate")
        assert status == 404

    def test_unsupported_method_gets_405(self, base):
        status, body = http_method(base, "/v1/jobs", "DELETE")
        assert status == 405

    def test_stats_endpoint(self, base):
        status, stats = http_get(base, "/v1/stats")
        assert status == 200
        assert stats["coalescing"]["submitted"] >= 1
        assert stats["coalescing"]["executed"] >= 1
        assert set(stats["queue"]) == {
            "depth", "active", "jobs", "timeouts", "job_timeout"
        }
        assert stats["engine"]["degraded"] is False
        assert stats["shedding"]["shed"] == 0
        assert stats["faults"] is None
        assert stats["cache"] is not None
        assert stats["cache"]["entries"] >= 1
        assert stats["solves"]["in_process"] >= 0


class TestSuiteJobs:
    def test_suite_job_returns_scenario_report(self, tmp_path):
        service = SynthesisService(cache_dir=str(tmp_path), workers=1)
        job, disposition = service.submit(
            {"kind": "suite", "suite": "smoke"}
        )
        assert disposition == "new"
        assert job.wait(300) and job.state == "done"
        report = job.result
        assert report["format"] == "repro-scenario-report-v1"
        assert report["scenarios"]
        assert job.progress  # stage tallies streamed during the run
        service.close()


class TestShutdown:
    def test_stop_drains_in_flight_jobs(self, tmp_path):
        server = SynthesisServer(
            port=0, cache_dir=str(tmp_path), workers=1
        )
        server.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        status, body = http_post(base, {"kind": "design", "app": "qsort"})
        assert status == 202
        job = server.service.queue.get(body["job"])
        server.stop(drain=True)  # must block until the job is terminal
        assert job.state == "done"
        assert job.result is not None

        # Once draining, new submissions are refused with 503.
        service = server.service
        with pytest.raises(RuntimeError):
            service.queue.submit(
                service.queue.new_job(
                    parse_job_request({"kind": "design", "app": "qsort"}),
                    "fp",
                )
            )
