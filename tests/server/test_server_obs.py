"""Server observability: /metrics, per-job traces, JSON logging.

Complements ``tests/server/test_server.py`` (functional daemon
coverage) with the observability surface: the Prometheus endpoint must
render a scrape-valid document whose families cover solver, cache,
engine, queue and HTTP metrics; a finished job must expose a complete
span tree through ``GET /v1/jobs/<id>/trace``; ``--log-json`` mode
must emit one parseable object per admission/transition.
"""

import io
import json
import re
import urllib.error
import urllib.request

import pytest

from repro.obs import tracing
from repro.obs.jsonlog import JsonLogger
from repro.server import SynthesisServer, SynthesisService

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text):
    """Strict minimal exposition parser (see tests/obs/test_obs_metrics.py
    for the full registry-side variant): every sample line must parse
    and belong to a ``# TYPE``-declared family."""
    kinds = {}
    families = {}
    for line in text.splitlines():
        if not line or line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            kinds[name] = kind
            families.setdefault(name, {})
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name = match.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in kinds:
                family = name[: -len(suffix)]
        assert family in kinds, f"sample {name!r} has no # TYPE"
        labels = tuple(
            sorted(_LABEL_RE.findall(match.group("labels") or ""))
        )
        raw = match.group("value")
        value = float("inf") if raw == "+Inf" else float(raw)
        families[family][(name, labels)] = value
    return {name: (kinds[name], families[name]) for name in kinds}


@pytest.fixture(autouse=True)
def _clean_tracing():
    # Only disarm what a test leaked: the module-scoped HTTP server
    # below arms tracing for its whole lifetime and owns its disarm
    # (through service.close()), so a blanket disarm here would pull
    # the collector out from under it between tests.
    was_enabled = tracing.tracing_enabled()
    yield
    if tracing.tracing_enabled() and not was_enabled:
        tracing.clear_spans()
        tracing.disarm_tracing()


def submit_and_wait(service, payload):
    job, disposition = service.submit(payload)
    assert job.wait(60)
    return job, disposition


class TestServiceTraces:
    def test_job_trace_covers_every_pipeline_stage(self, tmp_path):
        service = SynthesisService(cache_dir=str(tmp_path / "cache"))
        try:
            job, _ = submit_and_wait(
                service, {"kind": "design", "app": "qsort"}
            )
            assert job.state == "done"
            assert job.trace_id
            trace = service.job_trace(job.id)
            assert trace["trace_id"] == job.trace_id
            names = {span["name"] for span in trace["spans"]}
            assert f"job.design" in names
            for stage in ("window", "conflicts", "bind", "collect"):
                assert f"pipeline.{stage}" in names
            # One tree: every span reaches the job root.
            by_id = {s["span_id"]: s for s in trace["spans"]}
            roots = [
                s for s in trace["spans"] if s.get("parent_id") is None
            ]
            assert [s["name"] for s in roots] == ["job.design"]
            for span in trace["spans"]:
                current = span
                while current.get("parent_id") is not None:
                    current = by_id[current["parent_id"]]
                assert current["name"] == "job.design"
        finally:
            service.close()

    def test_trace_id_surfaces_in_job_status(self, tmp_path):
        service = SynthesisService(cache_dir=str(tmp_path / "cache"))
        try:
            job, _ = submit_and_wait(
                service, {"kind": "design", "app": "qsort"}
            )
            assert job.status()["trace_id"] == job.trace_id
        finally:
            service.close()

    def test_unknown_job_trace_is_none(self):
        service = SynthesisService()
        try:
            assert service.job_trace("job-999") is None
        finally:
            service.close()

    def test_trace_disabled_service_answers_empty(self):
        service = SynthesisService(trace=False)
        try:
            job, _ = submit_and_wait(
                service, {"kind": "design", "app": "qsort"}
            )
            trace = service.job_trace(job.id)
            assert trace["trace_id"] is None
            assert trace["spans"] == []
        finally:
            service.close()

    def test_stats_solves_are_snapshot_consistent(self):
        service = SynthesisService()
        try:
            submit_and_wait(service, {"kind": "design", "app": "qsort"})
            solves = service.stats()["solves"]
            assert solves["feasibility"] >= 0
            assert solves["binding"] >= 1
            assert solves["in_process"] >= 1
        finally:
            service.close()


class TestJsonLogging:
    def test_admission_and_transition_events(self):
        stream = io.StringIO()
        service = SynthesisService(log=JsonLogger(stream=stream))
        try:
            job, _ = submit_and_wait(
                service, {"kind": "design", "app": "qsort"}
            )
            events = [
                json.loads(line)
                for line in stream.getvalue().splitlines()
            ]
            kinds = [event["event"] for event in events]
            assert "request.admitted" in kinds
            assert "job.started" in kinds
            assert "job.finished" in kinds
            finished = next(
                e for e in events if e["event"] == "job.finished"
            )
            assert finished["job"] == job.id
            assert finished["state"] == "done"
            assert finished["trace_id"] == job.trace_id
            assert finished["duration_s"] > 0
        finally:
            service.close()


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    instance = SynthesisServer(
        port=0,
        cache_dir=str(tmp_path_factory.mktemp("obs-cache")),
        workers=1,
    )
    instance.start()
    yield instance
    instance.stop()


@pytest.fixture()
def base(server):
    return server.address


def http_get_text(base, path):
    with urllib.request.urlopen(f"{base}{path}") as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


class TestHTTPObservability:
    def _run_job(self, base):
        body = json.dumps({"kind": "design", "app": "qsort"}).encode()
        request = urllib.request.Request(
            f"{base}/v1/jobs",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request) as response:
            job = json.loads(response.read())["job"]
        with urllib.request.urlopen(
            f"{base}/v1/jobs/{job}?wait=60"
        ) as response:
            status = json.loads(response.read())
        assert status["state"] == "done"
        return job

    def test_metrics_endpoint_is_scrape_valid(self, base):
        self._run_job(base)
        status, content_type, text = http_get_text(base, "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        families = parse_prometheus(text)
        for family in (
            "repro_solves_total",
            "repro_cache_events_total",
            "repro_engine_events_total",
            "repro_queue_depth",
            "repro_jobs_active",
            "repro_http_requests_total",
            "repro_http_request_seconds",
            "repro_requests_total",
            "repro_stage_seconds",
        ):
            assert family in families, f"{family} missing from /metrics"
        kind, samples = families["repro_http_requests_total"]
        assert kind == "counter"
        assert any(
            ("endpoint", "/v1/jobs") in labels
            for (_, labels) in samples
        )

    def test_job_trace_endpoint(self, base):
        job = self._run_job(base)
        status, _, text = http_get_text(base, f"/v1/jobs/{job}/trace")
        assert status == 200
        trace = json.loads(text)
        assert trace["job"] == job
        names = {span["name"] for span in trace["spans"]}
        assert "job.design" in names
        assert "pipeline.bind" in names

    def test_trace_endpoint_404_for_unknown_job(self, base):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/v1/jobs/job-999/trace")
        assert excinfo.value.code == 404

    def test_http_metrics_label_low_cardinality(self, base):
        job = self._run_job(base)
        http_get_text(base, f"/v1/jobs/{job}")
        _, _, text = http_get_text(base, "/metrics")
        # Job ids never become label values; only templates do.
        assert f'endpoint="/v1/jobs/{job}"' not in text
        assert 'endpoint="/v1/jobs/<id>"' in text
