"""Unit tests for the discrete-event engine and one-shot events."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Event


class TestEngineScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(5, order.append, "late")
        engine.schedule(1, order.append, "early")
        engine.schedule(3, order.append, "middle")
        engine.run()
        assert order == ["early", "middle", "late"]

    def test_same_cycle_events_run_fifo(self):
        engine = Engine()
        order = []
        for label in ("a", "b", "c"):
            engine.schedule(2, order.append, label)
        engine.run()
        assert order == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(7, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [7]
        assert engine.now == 7

    def test_run_returns_final_time(self):
        engine = Engine()
        engine.schedule(11, lambda: None)
        assert engine.run() == 11

    def test_run_until_stops_before_later_events(self):
        engine = Engine()
        fired = []
        engine.schedule(3, fired.append, "in")
        engine.schedule(10, fired.append, "out")
        final = engine.run(until=5)
        assert fired == ["in"]
        assert final == 5
        assert engine.pending_events == 1

    def test_run_until_advances_clock_even_without_events(self):
        engine = Engine()
        assert engine.run(until=42) == 42
        assert engine.now == 42

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = Engine()
        engine.schedule(5, lambda: engine.schedule_at(1, lambda: None))
        with pytest.raises(SimulationError):
            engine.run()

    def test_events_scheduled_during_run_are_executed(self):
        engine = Engine()
        order = []

        def first():
            order.append("first")
            engine.schedule(2, lambda: order.append("nested"))

        engine.schedule(1, first)
        engine.run()
        assert order == ["first", "nested"]
        assert engine.now == 3

    def test_stop_halts_processing(self):
        engine = Engine()
        fired = []

        def fire_and_stop():
            fired.append(1)
            engine.stop()

        engine.schedule(1, fire_and_stop)
        engine.schedule(2, fired.append, 2)
        engine.run()
        assert fired == [1]
        assert engine.pending_events == 1

    def test_step_on_empty_queue_returns_false(self):
        engine = Engine()
        assert engine.step() is False

    def test_zero_delay_runs_in_same_cycle(self):
        engine = Engine()
        times = []
        engine.schedule(4, lambda: engine.schedule(0, lambda: times.append(engine.now)))
        engine.run()
        assert times == [4]

    def test_determinism_across_runs(self):
        def build_and_run():
            engine = Engine()
            order = []
            for delay, label in [(3, "x"), (3, "y"), (1, "z"), (2, "w")]:
                engine.schedule(delay, order.append, label)
            engine.run()
            return order

        assert build_and_run() == build_and_run() == ["z", "w", "x", "y"]


class TestEvent:
    def test_succeed_triggers_callbacks(self):
        engine = Engine()
        event = Event(engine)
        seen = []
        event.add_callback(lambda ev: seen.append(ev.value))
        engine.schedule(3, event.succeed, "payload")
        engine.run()
        assert seen == ["payload"]

    def test_callback_added_after_trigger_still_runs(self):
        engine = Engine()
        event = Event(engine)
        event.succeed(99)
        seen = []
        event.add_callback(lambda ev: seen.append(ev.value))
        engine.run()
        assert seen == [99]

    def test_double_succeed_raises(self):
        engine = Engine()
        event = Event(engine)
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_triggered_and_value_properties(self):
        engine = Engine()
        event = Event(engine)
        assert not event.triggered
        assert event.value is None
        event.succeed(5)
        assert event.triggered
        assert event.value == 5
