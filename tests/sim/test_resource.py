"""Unit tests for arbitrated resources."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Resource, fifo_policy, priority_policy, spawn


def hold(engine, resource, owner, duration, log, priority=0):
    """Process that acquires, holds for ``duration`` cycles, and releases."""

    def proc():
        request = resource.acquire(owner=owner, priority=priority)
        yield request.granted
        log.append(("grant", owner, engine.now))
        yield duration
        resource.release(request)
        log.append(("release", owner, engine.now))

    return spawn(engine, proc(), name=f"hold-{owner}")


class TestResourceBasics:
    def test_single_holder_serializes(self):
        engine = Engine()
        resource = Resource(engine, name="bus")
        log = []
        hold(engine, resource, "a", 4, log)
        hold(engine, resource, "b", 4, log)
        engine.run()
        grants = [entry for entry in log if entry[0] == "grant"]
        assert grants == [("grant", "a", 0), ("grant", "b", 4)]

    def test_capacity_two_allows_parallel_holds(self):
        engine = Engine()
        resource = Resource(engine, capacity=2)
        log = []
        for owner in ("a", "b", "c"):
            hold(engine, resource, owner, 5, log)
        engine.run()
        grants = {owner: time for kind, owner, time in log if kind == "grant"}
        assert grants["a"] == 0
        assert grants["b"] == 0
        assert grants["c"] == 5

    def test_fifo_policy_orders_by_arrival(self):
        engine = Engine()
        resource = Resource(engine, policy=fifo_policy)
        log = []

        def late_requester():
            yield 2
            hold(engine, resource, "late", 1, log)

        hold(engine, resource, "first", 5, log)
        spawn(engine, late_requester())
        engine.schedule(1, lambda: hold(engine, resource, "second", 1, log))
        engine.run()
        grant_order = [owner for kind, owner, _ in log if kind == "grant"]
        assert grant_order == ["first", "second", "late"]

    def test_priority_policy_preferred_over_arrival(self):
        engine = Engine()
        resource = Resource(engine, policy=priority_policy)
        log = []
        hold(engine, resource, "holder", 3, log)
        engine.schedule(1, lambda: hold(engine, resource, "lowprio", 1, log, priority=5))
        engine.schedule(2, lambda: hold(engine, resource, "highprio", 1, log, priority=1))
        engine.run()
        grant_order = [owner for kind, owner, _ in log if kind == "grant"]
        assert grant_order == ["holder", "highprio", "lowprio"]

    def test_same_cycle_requests_arbitrated_together(self):
        engine = Engine()
        resource = Resource(engine, policy=priority_policy)
        log = []

        def burst():
            hold(engine, resource, "low", 1, log, priority=9)
            hold(engine, resource, "high", 1, log, priority=0)

        engine.schedule(3, burst)
        engine.run()
        grant_order = [owner for kind, owner, _ in log if kind == "grant"]
        assert grant_order == ["high", "low"]

    def test_busy_log_records_intervals(self):
        engine = Engine()
        resource = Resource(engine, record_busy=True)
        log = []
        hold(engine, resource, "a", 4, log)
        hold(engine, resource, "b", 2, log)
        engine.run()
        assert resource.busy_log == [(0, 4, "a"), (4, 6, "b")]

    def test_release_without_hold_raises(self):
        engine = Engine()
        resource = Resource(engine)
        request = resource.acquire(owner="x")
        with pytest.raises(SimulationError):
            resource.release(request)

    def test_cancel_pending_request(self):
        engine = Engine()
        resource = Resource(engine)
        log = []
        hold(engine, resource, "holder", 5, log)

        def cancelling():
            request = resource.acquire(owner="cancelled")
            yield 1
            resource.cancel(request)

        spawn(engine, cancelling())
        hold(engine, resource, "after", 1, log)
        engine.run()
        owners = [owner for kind, owner, _ in log if kind == "grant"]
        assert "cancelled" not in owners
        assert owners == ["holder", "after"]

    def test_zero_capacity_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            Resource(engine, capacity=0)

    def test_queue_length_and_in_use(self):
        engine = Engine()
        resource = Resource(engine)
        log = []
        hold(engine, resource, "a", 10, log)
        hold(engine, resource, "b", 1, log)
        engine.run(until=5)
        assert resource.in_use == 1
        assert resource.queue_length == 1
