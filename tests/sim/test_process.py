"""Unit tests for generator-based processes."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Event, spawn


class TestProcessWaits:
    def test_integer_yield_delays(self):
        engine = Engine()
        times = []

        def worker():
            times.append(engine.now)
            yield 5
            times.append(engine.now)
            yield 3
            times.append(engine.now)

        spawn(engine, worker())
        engine.run()
        assert times == [0, 5, 8]

    def test_start_at_defers_first_resume(self):
        """Driver scheduling: a process can enter the model at an
        absolute cycle instead of the spawn cycle."""
        engine = Engine()
        times = []

        def worker():
            times.append(engine.now)
            yield 5
            times.append(engine.now)

        spawn(engine, worker(), start_at=40)
        engine.run()
        assert times == [40, 45]

    def test_start_at_zero_matches_default(self):
        engine = Engine()
        times = []

        def worker():
            times.append(engine.now)
            yield 1

        spawn(engine, worker(), start_at=0)
        engine.run()
        assert times == [0]

    def test_start_at_in_the_past_raises(self):
        engine = Engine()
        engine.schedule(10, lambda: None)
        engine.run()
        assert engine.now == 10

        def worker():
            yield 1

        with pytest.raises(SimulationError, match="cannot start"):
            spawn(engine, worker(), start_at=5)

    def test_event_yield_receives_value(self):
        engine = Engine()
        event = Event(engine)
        received = []

        def waiter():
            value = yield event
            received.append((engine.now, value))

        spawn(engine, waiter())
        engine.schedule(9, event.succeed, "ready")
        engine.run()
        assert received == [(9, "ready")]

    def test_process_yield_waits_for_completion(self):
        engine = Engine()
        log = []

        def child():
            yield 4
            log.append(("child-done", engine.now))
            return "child-result"

        def parent():
            result = yield spawn(engine, child())
            log.append(("parent-resumed", engine.now, result))

        spawn(engine, parent())
        engine.run()
        assert ("child-done", 4) in log
        assert ("parent-resumed", 4, "child-result") in log

    def test_result_and_finished(self):
        engine = Engine()

        def worker():
            yield 2
            return 123

        proc = spawn(engine, worker())
        assert not proc.finished
        engine.run()
        assert proc.finished
        assert proc.result == 123

    def test_zero_delay_yield(self):
        engine = Engine()
        order = []

        def a():
            order.append("a1")
            yield 0
            order.append("a2")

        def b():
            order.append("b1")
            yield 0
            order.append("b2")

        spawn(engine, a())
        spawn(engine, b())
        engine.run()
        assert order == ["a1", "b1", "a2", "b2"]

    def test_negative_delay_raises(self):
        engine = Engine()

        def bad():
            yield -3

        spawn(engine, bad())
        with pytest.raises(SimulationError):
            engine.run()

    def test_bad_yield_target_raises(self):
        engine = Engine()

        def bad():
            yield "not-a-wait-target"

        spawn(engine, bad())
        with pytest.raises(SimulationError):
            engine.run()

    def test_non_generator_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            spawn(engine, lambda: None)  # type: ignore[arg-type]

    def test_many_processes_interleave_deterministically(self):
        engine = Engine()
        log = []

        def worker(idx, period):
            for _ in range(3):
                yield period
                log.append((engine.now, idx))

        for idx, period in enumerate([3, 5, 7]):
            spawn(engine, worker(idx, period), name=f"w{idx}")
        engine.run()
        assert log == sorted(log, key=lambda entry: entry[0])
        assert len(log) == 9
        assert engine.now == 21
