"""Window segmentation of a traffic trace.

The paper divides the simulation period into ``|W|`` fixed-size windows of
``WS`` cycles each and records, per target ``i`` and window ``m``, the
number of cycles the target receives data: ``comm[i][m]`` (Definition 2).
:class:`WindowedTraffic` computes that matrix once (as a numpy array) and
derives the per-window bandwidth bounds the synthesis constraints use.

Setting the window size to the whole simulation period degenerates to the
average-traffic analysis of prior work; setting it near the burst size
approaches peak-bandwidth analysis -- the two extremes of the design
spectrum discussed in Section 2.

Variable-size windows (the paper's future-work direction for QoS) are
supported through explicit ``boundaries``: per-window capacities then
differ, and every downstream constraint (Eq. 4 and friends) evaluates
against its own window's capacity. See :mod:`repro.traffic.qos` for a
boundary-derivation heuristic.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.errors import WindowError
from repro.profiling import track_phase
from repro.traffic.intervals import coverage_in_bins, coverage_in_windows
from repro.traffic.kernels import TraceAnalytics
from repro.traffic.trace import TrafficTrace

__all__ = ["WindowedTraffic", "legacy_comm_matrix"]


def legacy_comm_matrix(
    windowed: "WindowedTraffic", critical_only: bool = False
) -> np.ndarray:
    """Reference ``comm`` builder: per-target interval lists, binned.

    This is the original pure-Python path (activity filtering via
    :meth:`TrafficTrace.target_activity` plus interval binning); the
    vectorized kernels in :mod:`repro.traffic.kernels` are asserted
    byte-identical to it by the equivalence test-suite.
    """
    trace = windowed.trace
    matrix = np.zeros((trace.num_targets, windowed.num_windows), dtype=np.int64)
    for target in range(trace.num_targets):
        activity = trace.target_activity(target, critical_only=critical_only)
        matrix[target] = windowed._bin_activity(activity)
    return matrix


class WindowedTraffic:
    """Per-window received-data matrix ``comm[i][m]`` for one trace.

    Parameters
    ----------
    trace:
        Full-crossbar traffic trace (Phase 1 output).
    window_size:
        ``WS``, the analysis window length in cycles (uniform windows).
        Mutually exclusive with ``boundaries``.
    num_windows:
        Override for ``|W|``; defaults to ``ceil(total_cycles / WS)``.
    boundaries:
        Explicit, strictly increasing window edges for variable-size
        windows; must start at 0 and cover the simulation period.
    """

    def __init__(
        self,
        trace: TrafficTrace,
        window_size: Optional[int] = None,
        num_windows: Optional[int] = None,
        boundaries: Optional[Sequence[int]] = None,
    ) -> None:
        self.trace = trace
        if boundaries is not None:
            if window_size is not None:
                raise WindowError(
                    "pass either window_size or boundaries, not both"
                )
            edges = np.asarray(boundaries, dtype=np.int64)
            if edges.size < 2 or edges[0] != 0:
                raise WindowError("boundaries must start at 0")
            if (np.diff(edges) <= 0).any():
                raise WindowError("boundaries must be strictly increasing")
            if edges[-1] < trace.total_cycles:
                raise WindowError(
                    f"boundaries end at {edges[-1]}, trace has "
                    f"{trace.total_cycles} cycles"
                )
            self._edges = edges
            self.num_windows = int(edges.size - 1)
            self.capacities = np.diff(edges).astype(np.int64)
            self.window_size = int(self.capacities.max())
        else:
            if window_size is None:
                raise WindowError("window_size or boundaries is required")
            if window_size < 1:
                raise WindowError(f"window size must be >= 1, got {window_size}")
            if window_size > trace.total_cycles:
                window_size = trace.total_cycles
            self.window_size = int(window_size)
            derived = math.ceil(trace.total_cycles / self.window_size)
            if num_windows is None:
                num_windows = derived
            elif num_windows < derived:
                raise WindowError(
                    f"{num_windows} windows of {window_size} cycles do not "
                    f"cover the {trace.total_cycles}-cycle simulation period"
                )
            self.num_windows = int(num_windows)
            self.capacities = np.full(
                self.num_windows, self.window_size, dtype=np.int64
            )
            self._edges = None
        with track_phase("windowing"):
            self._comm = self._build_comm(critical_only=False)
        self._critical_comm: Optional[np.ndarray] = None

    @property
    def is_uniform(self) -> bool:
        """Whether all windows share one size (the paper's base case)."""
        return self._edges is None

    @property
    def boundaries(self) -> np.ndarray:
        """Window edges (derived for uniform windows)."""
        if self._edges is not None:
            return self._edges
        return np.arange(self.num_windows + 1, dtype=np.int64) * self.window_size

    def _bin_activity(self, activity) -> np.ndarray:
        if self._edges is None:
            return coverage_in_windows(
                activity, self.window_size, self.num_windows
            )
        return coverage_in_bins(activity, self._edges)

    def _build_comm(self, critical_only: bool) -> np.ndarray:
        """``comm`` via the columnar kernels (compiled once per trace).

        The compiled form and the per-geometry results are memoized on
        the trace (:class:`~repro.traffic.kernels.TraceAnalytics`), so
        re-segmenting the same trace with a different window size -- or
        asking for :attr:`critical_comm` after :attr:`comm` -- never
        re-walks the records. ``legacy_comm_matrix`` keeps the original
        interval-list path available as the reference implementation.
        """
        return TraceAnalytics.of(self.trace).comm(
            self.boundaries, critical_only=critical_only
        )

    @property
    def num_targets(self) -> int:
        """Number of targets ``|T|``."""
        return self.trace.num_targets

    @property
    def comm(self) -> np.ndarray:
        """``comm[i][m]``: busy cycles of target ``i`` in window ``m``.

        Shape ``(|T|, |W|)``; every entry lies in ``[0, capacity[m]]``.
        """
        return self._comm

    @property
    def critical_comm(self) -> np.ndarray:
        """Like :attr:`comm` but counting only critical (real-time) traffic.

        Memoized, and served by the same compiled kernel state as
        :attr:`comm` -- requesting both costs one record walk, not two.
        """
        if self._critical_comm is None:
            with track_phase("windowing"):
                self._critical_comm = self._build_comm(critical_only=True)
        return self._critical_comm

    def utilization(self) -> np.ndarray:
        """Per-target, per-window utilization ``comm / capacity`` in [0, 1]."""
        return self._comm / self.capacities.astype(float)

    def peak_window_demand(self) -> np.ndarray:
        """Per-window total demand across all targets, in cycles."""
        return self._comm.sum(axis=0)

    def min_buses_bandwidth_bound(self) -> int:
        """Lower bound on bus count from window bandwidth alone.

        In window ``m`` the aggregate demand ``sum_i comm[i][m]`` must be
        carried by buses each offering ``capacity[m]`` cycles, so at least
        ``ceil(demand / capacity)`` buses are needed; the bound is the
        maximum over windows (and at least 1).
        """
        demand = self.peak_window_demand()
        if demand.size == 0:
            return 1
        per_window = np.ceil(demand / self.capacities.astype(float)).astype(int)
        return max(1, int(per_window.max()))

    def windows_exceeding(self, target: int, fraction: float) -> np.ndarray:
        """Indices of windows where a target uses more than ``fraction``
        of its window's capacity."""
        if not 0 <= target < self.num_targets:
            raise WindowError(f"target index {target} out of range")
        threshold = fraction * self.capacities
        return np.nonzero(self._comm[target] > threshold)[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flavor = (
            f"{self.window_size} cycles"
            if self.is_uniform
            else f"variable ({self.capacities.min()}..{self.capacities.max()} cy)"
        )
        return (
            f"<WindowedTraffic {self.num_targets} targets x "
            f"{self.num_windows} windows of {flavor}>"
        )
