"""Extended synthetic workload profiles for scenario suites.

The burst generator of :mod:`repro.traffic.synthetic` reproduces the
paper's 20-core benchmark; real SoC use-cases are more varied. This
module stamps out additional traffic shapes so entire *suites* of
distinct workloads can be generated programmatically:

* **hotspot** -- target-skewed request traffic: a fraction of every
  initiator's packets is redirected onto a small set of hotspot targets
  (a shared frame buffer, a DMA-visible DRAM port), producing the
  many-to-one contention that private-memory traffic never shows.
* **poisson** -- open-loop memoryless arrivals: each initiator issues
  packets at exponentially distributed inter-arrival times, the classic
  NoC evaluation load, with no burst structure at all.
* **pipeline** -- producer/consumer streaming: stage ``i`` writes its
  frame to stage ``i + 1``'s memory during a staggered slot of a
  repeating frame period, giving chained (not grouped) temporal
  overlap.

Every profile draws all randomness from a ``random.Random(seed)``
instance (injected or config-derived, never the interpreter-global
module), emits packets through
:func:`repro.traffic.synthetic.write_packet`, and supports *load
scaling* via :func:`scaled_config`, so one scenario definition can be
replayed as a family of lighter/heavier variants. Traces from
platform-simulated applications get the same treatment through
:func:`thin_trace` (deterministic packet subsampling).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.traffic.events import TraceRecord
from repro.traffic.synthetic import write_packet
from repro.traffic.trace import TrafficTrace

__all__ = [
    "HotspotTrafficConfig",
    "PoissonTrafficConfig",
    "PipelineTrafficConfig",
    "generate_hotspot_trace",
    "generate_poisson_trace",
    "generate_pipeline_trace",
    "scaled_config",
    "thin_trace",
]


def _check_platform(num_initiators: int, num_targets: int) -> None:
    if num_initiators < 1 or num_targets < 1:
        raise ConfigurationError("need at least one initiator and one target")


def _check_critical(critical_targets: Tuple[int, ...], num_targets: int) -> None:
    for target in critical_targets:
        if not 0 <= target < num_targets:
            raise ConfigurationError(f"critical target {target} out of range")


def _finish_trace(
    records: List[TraceRecord],
    num_initiators: int,
    num_targets: int,
    total_cycles: int,
) -> TrafficTrace:
    return TrafficTrace(
        records,
        num_initiators=num_initiators,
        num_targets=num_targets,
        total_cycles=total_cycles,
        target_names=[f"t{idx}" for idx in range(num_targets)],
        initiator_names=[f"i{idx}" for idx in range(num_initiators)],
    )


# -- hotspot ----------------------------------------------------------


@dataclass(frozen=True)
class HotspotTrafficConfig:
    """Target-skewed open traffic (shared-resource contention).

    Each initiator issues packets separated by exponentially jittered
    gaps of mean ``mean_gap``; with probability ``hotspot_fraction`` a
    packet is redirected to one of the ``hotspot_targets`` (uniformly),
    otherwise it goes to the initiator's private target
    (``i % num_targets``).
    """

    num_initiators: int = 8
    num_targets: int = 8
    total_cycles: int = 60_000
    hotspot_targets: Tuple[int, ...] = (0,)
    hotspot_fraction: float = 0.5
    mean_gap: int = 120
    packet_words: int = 16
    critical_targets: Tuple[int, ...] = field(default=())
    seed: int = 1

    def validate(self) -> None:
        _check_platform(self.num_initiators, self.num_targets)
        if not self.hotspot_targets:
            raise ConfigurationError("need at least one hotspot target")
        for target in self.hotspot_targets:
            if not 0 <= target < self.num_targets:
                raise ConfigurationError(f"hotspot target {target} out of range")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ConfigurationError("hotspot_fraction must lie in [0, 1]")
        if self.mean_gap < 1:
            raise ConfigurationError("mean_gap must be >= 1")
        if self.packet_words < 1:
            raise ConfigurationError("packet_words must be >= 1")
        _check_critical(self.critical_targets, self.num_targets)


def generate_hotspot_trace(
    config: HotspotTrafficConfig,
    rng: Optional[random.Random] = None,
) -> TrafficTrace:
    """Generate a hotspot-skewed trace according to ``config``."""
    config.validate()
    if rng is None:
        rng = random.Random(config.seed)
    critical = set(config.critical_targets)
    hotspots = list(config.hotspot_targets)
    packet_cost = 2 + config.packet_words
    records: List[TraceRecord] = []
    for initiator in range(config.num_initiators):
        lane = random.Random(rng.randrange(1 << 30))
        cursor = lane.randint(0, config.mean_gap)
        private = initiator % config.num_targets
        while cursor + packet_cost < config.total_cycles:
            if lane.random() < config.hotspot_fraction:
                target = hotspots[lane.randrange(len(hotspots))]
            else:
                target = private
            records.append(
                write_packet(
                    cursor, initiator, target, config.packet_words,
                    target in critical,
                )
            )
            gap = int(lane.expovariate(1.0 / config.mean_gap))
            cursor += packet_cost + max(1, gap)
    return _finish_trace(
        records, config.num_initiators, config.num_targets, config.total_cycles
    )


# -- poisson ----------------------------------------------------------


@dataclass(frozen=True)
class PoissonTrafficConfig:
    """Open-loop Poisson arrivals (memoryless background load).

    Each initiator issues packets as a Poisson process of ``rate``
    packets per cycle toward its private target, with a ``spread``
    fraction of packets sprayed uniformly over all targets. Back-to-back
    arrivals are serialized (a packet never starts before the previous
    one released the bus), making this the open-loop analogue of a
    saturating initiator.
    """

    num_initiators: int = 8
    num_targets: int = 8
    total_cycles: int = 60_000
    rate: float = 0.004
    spread: float = 0.25
    packet_words: int = 8
    critical_targets: Tuple[int, ...] = field(default=())
    seed: int = 1

    def validate(self) -> None:
        _check_platform(self.num_initiators, self.num_targets)
        if self.rate <= 0.0:
            raise ConfigurationError("rate must be positive")
        if not 0.0 <= self.spread <= 1.0:
            raise ConfigurationError("spread must lie in [0, 1]")
        if self.packet_words < 1:
            raise ConfigurationError("packet_words must be >= 1")
        _check_critical(self.critical_targets, self.num_targets)


def generate_poisson_trace(
    config: PoissonTrafficConfig,
    rng: Optional[random.Random] = None,
) -> TrafficTrace:
    """Generate an open-loop Poisson trace according to ``config``."""
    config.validate()
    if rng is None:
        rng = random.Random(config.seed)
    critical = set(config.critical_targets)
    packet_cost = 2 + config.packet_words
    records: List[TraceRecord] = []
    for initiator in range(config.num_initiators):
        lane = random.Random(rng.randrange(1 << 30))
        private = initiator % config.num_targets
        arrival = lane.expovariate(config.rate)
        busy_until = 0.0
        while True:
            cursor = int(max(arrival, busy_until))
            if cursor + packet_cost >= config.total_cycles:
                break
            if lane.random() < config.spread:
                target = lane.randrange(config.num_targets)
            else:
                target = private
            records.append(
                write_packet(
                    cursor, initiator, target, config.packet_words,
                    target in critical,
                )
            )
            busy_until = float(cursor + packet_cost)
            arrival += lane.expovariate(config.rate)
    return _finish_trace(
        records, config.num_initiators, config.num_targets, config.total_cycles
    )


# -- pipeline ---------------------------------------------------------


@dataclass(frozen=True)
class PipelineTrafficConfig:
    """Producer/consumer streaming pipeline.

    The platform processes repeating *frames* of ``frame_cycles``: stage
    ``i`` (initiator ``i``) streams its output to stage ``i + 1``'s
    memory (target ``(i + 1) % num_targets``) during a slot that starts
    ``i * stage_lag`` cycles into the frame and lasts ``slot_cycles``.
    Adjacent stages therefore overlap pairwise in a chain -- a temporal
    structure the sync-group burst generator cannot produce.
    """

    num_initiators: int = 8
    num_targets: int = 8
    total_cycles: int = 60_000
    frame_cycles: int = 6_000
    slot_cycles: int = 1_500
    stage_lag: int = 700
    slot_jitter: int = 64
    packet_words: int = 16
    packet_gap: int = 2
    critical_targets: Tuple[int, ...] = field(default=())
    seed: int = 1

    def validate(self) -> None:
        _check_platform(self.num_initiators, self.num_targets)
        if self.frame_cycles < 1 or self.slot_cycles < 1:
            raise ConfigurationError("frame_cycles and slot_cycles must be >= 1")
        if self.total_cycles < self.frame_cycles:
            raise ConfigurationError(
                "total_cycles must cover at least one frame "
                f"({self.total_cycles} < {self.frame_cycles})"
            )
        if self.stage_lag < 0 or self.slot_jitter < 0 or self.packet_gap < 0:
            raise ConfigurationError(
                "stage_lag, slot_jitter and packet_gap must be >= 0"
            )
        if self.slot_cycles + self.slot_jitter > self.frame_cycles:
            # A stage's slot (worst-case jittered) must end before its
            # own next-frame slot begins, or one initiator would emit
            # time-overlapping packets -- physically impossible traffic
            # that double-counts busy cycles in comm/wo.
            raise ConfigurationError(
                f"slot_cycles + slot_jitter ({self.slot_cycles} + "
                f"{self.slot_jitter}) must fit within frame_cycles "
                f"({self.frame_cycles})"
            )
        if self.packet_words < 1:
            raise ConfigurationError("packet_words must be >= 1")
        _check_critical(self.critical_targets, self.num_targets)


def generate_pipeline_trace(
    config: PipelineTrafficConfig,
    rng: Optional[random.Random] = None,
) -> TrafficTrace:
    """Generate a staged producer/consumer trace according to ``config``."""
    config.validate()
    if rng is None:
        rng = random.Random(config.seed)
    critical = set(config.critical_targets)
    packet_cost = 2 + config.packet_words
    records: List[TraceRecord] = []
    for stage in range(config.num_initiators):
        lane = random.Random(rng.randrange(1 << 30))
        target = (stage + 1) % config.num_targets
        frame_start = 0
        while frame_start < config.total_cycles:
            jitter = lane.randint(0, config.slot_jitter) if config.slot_jitter else 0
            slot_start = frame_start + stage * config.stage_lag + jitter
            slot_end = min(
                slot_start + config.slot_cycles, config.total_cycles - packet_cost
            )
            cursor = slot_start
            while cursor + packet_cost <= slot_end:
                records.append(
                    write_packet(
                        cursor, stage, target, config.packet_words,
                        target in critical,
                    )
                )
                cursor += packet_cost + config.packet_gap
            frame_start += config.frame_cycles
    return _finish_trace(
        records, config.num_initiators, config.num_targets, config.total_cycles
    )


# -- load scaling -----------------------------------------------------


def scaled_config(config, load_scale: float):
    """A copy of a profile config with its offered load scaled.

    ``load_scale`` multiplies the packet *arrival intensity*: idle gaps
    shrink by the factor (burst/hotspot/pipeline profiles) or the
    arrival rate grows by it (Poisson). ``1.0`` returns the config
    unchanged; values must be positive. The seed is preserved, so a
    scaled variant is a deterministic sibling of its parent scenario.
    """
    if load_scale <= 0.0:
        raise ConfigurationError(f"load_scale must be positive, got {load_scale}")
    if load_scale == 1.0:
        return config
    # Imported here to avoid a circular import at module load.
    from repro.traffic.synthetic import SyntheticTrafficConfig

    if isinstance(config, SyntheticTrafficConfig):
        return replace(
            config, gap_cycles=max(1, int(config.gap_cycles / load_scale))
        )
    if isinstance(config, HotspotTrafficConfig):
        return replace(config, mean_gap=max(1, int(config.mean_gap / load_scale)))
    if isinstance(config, PoissonTrafficConfig):
        return replace(config, rate=config.rate * load_scale)
    if isinstance(config, PipelineTrafficConfig):
        # Pipeline load saturates physically: a slot can grow until it
        # (plus worst-case jitter) fills the frame, after which higher
        # scales only shrink the intra-slot packet gap. Scales past both
        # limits produce identical configs -- the workload is maxed out.
        slot_limit = max(1, config.frame_cycles - config.slot_jitter)
        scaled_slot = max(1, int(config.slot_cycles * load_scale))
        return replace(
            config,
            slot_cycles=min(scaled_slot, slot_limit),
            packet_gap=max(0, int(config.packet_gap / load_scale)),
        )
    raise ConfigurationError(
        f"load scaling is not defined for {type(config).__name__}"
    )


def thin_trace(
    trace: TrafficTrace, keep_fraction: float, seed: int = 0
) -> TrafficTrace:
    """Deterministically subsample a trace to ``keep_fraction`` of packets.

    Used to derive *lighter* load variants of platform-simulated
    application traces (where re-generation is not available). Each
    record is kept independently with probability ``keep_fraction``
    drawn from ``random.Random(seed)`` over the trace's canonical record
    order, so the same (trace, fraction, seed) always yields the same
    subsample. ``keep_fraction`` of 1.0 returns the trace itself.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ConfigurationError(
            f"keep_fraction must lie in (0, 1], got {keep_fraction}"
        )
    if keep_fraction == 1.0:
        return trace
    rng = random.Random(seed)
    kept = [rec for rec in trace.records if rng.random() < keep_fraction]
    return TrafficTrace(
        kept,
        num_initiators=trace.num_initiators,
        num_targets=trace.num_targets,
        total_cycles=trace.total_cycles,
        target_names=trace.target_names,
        initiator_names=trace.initiator_names,
    )
