"""Half-open integer interval algebra.

Activity timelines are represented as lists of ``(start, end)`` tuples with
``start < end``, measured in cycles, half-open (``end`` is not included).
All functions here expect and/or produce *normalized* lists: sorted by
start, pairwise disjoint and non-adjacent (touching intervals are merged).

These primitives back the windowed traffic analysis: ``comm[i][m]`` is the
binned coverage of a target's activity, ``wo[i][j][m]`` the binned coverage
of the intersection of two targets' activities.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import TraceError

__all__ = [
    "normalize",
    "total_length",
    "intersect",
    "union",
    "clip",
    "coverage_in_windows",
    "coverage_in_bins",
]

Interval = Tuple[int, int]


def normalize(intervals: Iterable[Interval]) -> List[Interval]:
    """Sort intervals and merge any that overlap or touch.

    Empty intervals (``start == end``) are dropped; inverted intervals
    raise :class:`~repro.errors.TraceError`.
    """
    cleaned = []
    for start, end in intervals:
        if end < start:
            raise TraceError(f"inverted interval ({start}, {end})")
        if end > start:
            cleaned.append((int(start), int(end)))
    cleaned.sort()
    merged: List[Interval] = []
    for start, end in cleaned:
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def total_length(intervals: Sequence[Interval]) -> int:
    """Total number of cycles covered by a normalized interval list."""
    return sum(end - start for start, end in intervals)


def intersect(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
    """Intersection of two normalized interval lists (two-pointer merge)."""
    result: List[Interval] = []
    ia = ib = 0
    while ia < len(a) and ib < len(b):
        start = max(a[ia][0], b[ib][0])
        end = min(a[ia][1], b[ib][1])
        if start < end:
            result.append((start, end))
        if a[ia][1] <= b[ib][1]:
            ia += 1
        else:
            ib += 1
    return result


def union(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
    """Union of two normalized interval lists."""
    return normalize(list(a) + list(b))


def clip(intervals: Sequence[Interval], lo: int, hi: int) -> List[Interval]:
    """Restrict a normalized interval list to the window ``[lo, hi)``."""
    if hi < lo:
        raise TraceError(f"clip window is inverted: [{lo}, {hi})")
    clipped = []
    for start, end in intervals:
        start = max(start, lo)
        end = min(end, hi)
        if start < end:
            clipped.append((start, end))
    return clipped


def coverage_in_windows(
    intervals: Sequence[Interval],
    window_size: int,
    num_windows: int,
) -> np.ndarray:
    """Busy cycles contributed to each fixed-size window.

    Window ``m`` spans cycles ``[m * window_size, (m + 1) * window_size)``.
    Activity beyond the last window is attributed to the last window only
    if it falls inside it; otherwise it raises, since it indicates a
    mis-sized segmentation.

    Returns an ``int64`` array of length ``num_windows`` whose sum equals
    :func:`total_length` of the in-range intervals.
    """
    if window_size <= 0:
        raise TraceError(f"window size must be positive, got {window_size}")
    if num_windows <= 0:
        raise TraceError(f"number of windows must be positive, got {num_windows}")
    coverage = np.zeros(num_windows, dtype=np.int64)
    horizon = window_size * num_windows
    for start, end in intervals:
        if end > horizon:
            raise TraceError(
                f"interval ({start}, {end}) exceeds analysis horizon {horizon}"
            )
        first = start // window_size
        last = (end - 1) // window_size
        if first == last:
            coverage[first] += end - start
            continue
        coverage[first] += (first + 1) * window_size - start
        coverage[last] += end - last * window_size
        if last - first > 1:
            coverage[first + 1 : last] += window_size
    return coverage


def coverage_in_bins(
    intervals: Sequence[Interval], edges: Sequence[int]
) -> np.ndarray:
    """Busy cycles contributed to each *variable-size* bin.

    ``edges`` are strictly increasing bin boundaries; bin ``m`` spans
    ``[edges[m], edges[m + 1])``. Activity must lie within
    ``[edges[0], edges[-1])``. This is the variable-window generalization
    of :func:`coverage_in_windows` (the paper's future-work direction of
    QoS-driven variable simulation windows).
    """
    edges_array = np.asarray(edges, dtype=np.int64)
    if edges_array.ndim != 1 or edges_array.size < 2:
        raise TraceError("need at least two bin edges")
    if (np.diff(edges_array) <= 0).any():
        raise TraceError("bin edges must be strictly increasing")
    num_bins = edges_array.size - 1
    coverage = np.zeros(num_bins, dtype=np.int64)
    low, high = int(edges_array[0]), int(edges_array[-1])
    for start, end in intervals:
        if start < low or end > high:
            raise TraceError(
                f"interval ({start}, {end}) outside bin range [{low}, {high})"
            )
        first = int(np.searchsorted(edges_array, start, side="right")) - 1
        last = int(np.searchsorted(edges_array, end - 1, side="right")) - 1
        if first == last:
            coverage[first] += end - start
            continue
        coverage[first] += int(edges_array[first + 1]) - start
        coverage[last] += end - int(edges_array[last])
        for middle in range(first + 1, last):
            coverage[middle] += int(edges_array[middle + 1]) - int(
                edges_array[middle]
            )
    return coverage
