"""Traffic traces and window-based analysis.

This subpackage implements the paper's traffic-analysis layer (DATE'05,
Sections 3.2 and 5): transaction-level trace records collected from a
full-crossbar simulation, per-target activity timelines, segmentation of
the simulation period into fixed-size windows, the per-window received-data
matrix ``comm[i][m]``, the pairwise per-window overlap ``wo[i][j][m]`` and
the aggregate overlap matrix ``OM`` (Eq. 1), plus criticality annotations
for real-time streams.

A synthetic burst-traffic generator (:mod:`repro.traffic.synthetic`)
reproduces the 20-core benchmark used for the window-size and
overlap-threshold studies (paper Sections 7.2 and 7.4) without requiring a
platform simulation.
"""

from repro.traffic.events import TraceRecord, TransactionKind
from repro.traffic.trace import TrafficTrace
from repro.traffic.kernels import CompiledActivity, TraceAnalytics, warm_analytics
from repro.traffic.windows import WindowedTraffic
from repro.traffic.overlap import PairwiseOverlap
from repro.traffic.criticality import CriticalityReport, analyze_criticality
from repro.traffic.qos import phase_aligned_boundaries
from repro.traffic.synthetic import SyntheticTrafficConfig, generate_synthetic_trace
from repro.traffic.profiles import (
    HotspotTrafficConfig,
    PipelineTrafficConfig,
    PoissonTrafficConfig,
    generate_hotspot_trace,
    generate_pipeline_trace,
    generate_poisson_trace,
    scaled_config,
    thin_trace,
)
from repro.traffic.io import load_trace_jsonl, save_trace_jsonl

__all__ = [
    "TraceRecord",
    "TransactionKind",
    "TrafficTrace",
    "CompiledActivity",
    "TraceAnalytics",
    "warm_analytics",
    "WindowedTraffic",
    "PairwiseOverlap",
    "CriticalityReport",
    "analyze_criticality",
    "phase_aligned_boundaries",
    "SyntheticTrafficConfig",
    "generate_synthetic_trace",
    "HotspotTrafficConfig",
    "PoissonTrafficConfig",
    "PipelineTrafficConfig",
    "generate_hotspot_trace",
    "generate_poisson_trace",
    "generate_pipeline_trace",
    "scaled_config",
    "thin_trace",
    "save_trace_jsonl",
    "load_trace_jsonl",
]
