"""Real-time (critical) stream analysis.

The paper's pre-processing phase (Sec. 7.3) identifies critical traffic
streams that overlap in any window; the targets of such streams must be
placed on different buses so that each stream can be given a latency
guarantee. This module derives those forbidden pairs from a trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.traffic.overlap import PairwiseOverlap
from repro.traffic.windows import WindowedTraffic

__all__ = ["CriticalityReport", "analyze_criticality"]


@dataclass(frozen=True)
class CriticalityReport:
    """Outcome of the real-time stream analysis.

    Attributes
    ----------
    critical_targets:
        Targets that receive at least one critical transaction.
    conflicting_pairs:
        Target pairs whose *critical* traffic overlaps in at least one
        window; these must not share a bus (feeds conflict matrix Eq. 2).
    """

    critical_targets: Tuple[int, ...] = field(default=())
    conflicting_pairs: Tuple[Tuple[int, int], ...] = field(default=())

    @property
    def has_conflicts(self) -> bool:
        """Whether any pair of critical streams requires separation."""
        return bool(self.conflicting_pairs)


def analyze_criticality(windowed: WindowedTraffic) -> CriticalityReport:
    """Find critical targets and their overlap-induced conflicts.

    Two critical streams conflict as soon as they overlap *at all* in some
    window (threshold zero): any sharing could delay a real-time packet,
    so the paper forbids co-location outright.
    """
    trace = windowed.trace
    critical_targets = tuple(trace.critical_targets())
    if len(critical_targets) < 2:
        return CriticalityReport(critical_targets=critical_targets)
    critical_overlap = PairwiseOverlap(windowed, critical_only=True)
    conflicting: List[Tuple[int, int]] = []
    for idx, i in enumerate(critical_targets):
        for j in critical_targets[idx + 1 :]:
            if critical_overlap.max_window_overlap(i, j) > 0:
                conflicting.append((i, j))
    return CriticalityReport(
        critical_targets=critical_targets,
        conflicting_pairs=tuple(conflicting),
    )
