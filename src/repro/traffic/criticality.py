"""Real-time (critical) stream analysis.

The paper's pre-processing phase (Sec. 7.3) identifies critical traffic
streams that overlap in any window; the targets of such streams must be
placed on different buses so that each stream can be given a latency
guarantee. This module derives those forbidden pairs from a trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.traffic.overlap import PairwiseOverlap
from repro.traffic.windows import WindowedTraffic

__all__ = ["CriticalityReport", "analyze_criticality"]


@dataclass(frozen=True)
class CriticalityReport:
    """Outcome of the real-time stream analysis.

    Attributes
    ----------
    critical_targets:
        Targets that receive at least one critical transaction.
    conflicting_pairs:
        Target pairs whose *critical* traffic overlaps in at least one
        window; these must not share a bus (feeds conflict matrix Eq. 2).
    """

    critical_targets: Tuple[int, ...] = field(default=())
    conflicting_pairs: Tuple[Tuple[int, int], ...] = field(default=())

    @property
    def has_conflicts(self) -> bool:
        """Whether any pair of critical streams requires separation."""
        return bool(self.conflicting_pairs)


def analyze_criticality(windowed: WindowedTraffic) -> CriticalityReport:
    """Find critical targets and their overlap-induced conflicts.

    Two critical streams conflict as soon as they overlap *at all* in some
    window (threshold zero): any sharing could delay a real-time packet,
    so the paper forbids co-location outright.
    """
    trace = windowed.trace
    critical_targets = tuple(trace.critical_targets())
    if len(critical_targets) < 2:
        return CriticalityReport(critical_targets=critical_targets)
    critical_overlap = PairwiseOverlap(windowed, critical_only=True)
    # A pair conflicts iff its critical streams overlap in any window,
    # i.e. the aggregate overlap is positive. Targets without critical
    # traffic have empty critical timelines (zero rows), so scanning the
    # upper triangle reproduces the critical-targets pair loop exactly.
    above_diagonal = np.triu(critical_overlap.overlap_matrix, k=1)
    conflicting = tuple(
        (int(i), int(j)) for i, j in np.argwhere(above_diagonal > 0)
    )
    return CriticalityReport(
        critical_targets=critical_targets,
        conflicting_pairs=conflicting,
    )
