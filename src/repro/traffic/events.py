"""Transaction-level trace records.

One :class:`TraceRecord` is produced per bus transaction and carries the
full timing breakdown observed by the platform instrumentation:

* ``issue`` -- cycle the initiator requested the interconnect,
* ``it_grant`` / ``it_release`` -- occupancy of the initiator->target bus
  (this interval is the *traffic stream to the target* that the paper's
  windowed analysis measures),
* ``service_start`` / ``service_end`` -- the target's internal service,
* ``ti_grant`` / ``ti_release`` -- occupancy of the target->initiator bus
  for the response,
* ``complete`` -- cycle the initiator observed the response.

Packet latency is ``complete - issue``, matching the latency the paper
reports from its SystemC simulations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import TraceError

__all__ = ["TransactionKind", "TraceRecord"]


class TransactionKind(enum.Enum):
    """STbus operation classes distinguished by the timing model."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """A single completed interconnect transaction.

    Attributes
    ----------
    initiator / target:
        Indices of the communicating cores within the application's
        initiator and target lists.
    kind:
        Read or write.
    burst:
        Payload length in bus words.
    issue .. complete:
        Cycle timestamps of the transaction's phases (see module docs).
    critical:
        Whether this transaction belongs to a real-time stream (paper
        Sec. 7.3). Critical streams receive bus-separation guarantees.
    stream:
        Label of the logical traffic stream (e.g. ``"arm3->pm3"``); used
        for reporting and criticality bookkeeping.
    """

    initiator: int
    target: int
    kind: TransactionKind
    burst: int
    issue: int
    it_grant: int
    it_release: int
    service_start: int
    service_end: int
    ti_grant: int
    ti_release: int
    complete: int
    critical: bool = False
    stream: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        stamps = (
            self.issue,
            self.it_grant,
            self.it_release,
            self.service_start,
            self.service_end,
            self.ti_grant,
            self.ti_release,
            self.complete,
        )
        if any(later < earlier for earlier, later in zip(stamps, stamps[1:])):
            raise TraceError(f"non-monotonic timestamps in trace record: {stamps}")
        if self.burst < 1:
            raise TraceError(f"burst length must be >= 1, got {self.burst}")
        if self.initiator < 0 or self.target < 0:
            raise TraceError("initiator and target indices must be non-negative")

    @property
    def latency(self) -> int:
        """End-to-end packet latency in cycles (issue to completion)."""
        return self.complete - self.issue

    @property
    def it_occupancy(self) -> int:
        """Cycles the transaction held the initiator->target bus."""
        return self.it_release - self.it_grant

    @property
    def ti_occupancy(self) -> int:
        """Cycles the transaction held the target->initiator bus."""
        return self.ti_release - self.ti_grant

    @property
    def queueing_delay(self) -> int:
        """Cycles spent waiting for the first bus grant."""
        return self.it_grant - self.issue
