"""Trace persistence.

Traces are stored as JSON Lines: the first line is a header object with
the platform metadata, every following line one transaction record. The
format is self-describing, diff-friendly and stream-parseable, which suits
traces of tens of thousands of records.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import TraceError
from repro.traffic.events import TraceRecord, TransactionKind
from repro.traffic.trace import TrafficTrace

__all__ = ["save_trace_jsonl", "load_trace_jsonl"]

_FORMAT = "repro-trace-v1"

_RECORD_FIELDS = (
    "initiator",
    "target",
    "burst",
    "issue",
    "it_grant",
    "it_release",
    "service_start",
    "service_end",
    "ti_grant",
    "ti_release",
    "complete",
)


def save_trace_jsonl(trace: TrafficTrace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` in the JSONL trace format."""
    path = Path(path)
    header = {
        "format": _FORMAT,
        "num_initiators": trace.num_initiators,
        "num_targets": trace.num_targets,
        "total_cycles": trace.total_cycles,
        "target_names": trace.target_names,
        "initiator_names": trace.initiator_names,
        "num_records": len(trace),
    }
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for record in trace.records:
            row = {name: getattr(record, name) for name in _RECORD_FIELDS}
            row["kind"] = record.kind.value
            if record.critical:
                row["critical"] = True
            if record.stream:
                row["stream"] = record.stream
            handle.write(json.dumps(row) + "\n")


def load_trace_jsonl(path: Union[str, Path]) -> TrafficTrace:
    """Read a trace previously written by :func:`save_trace_jsonl`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise TraceError(f"{path} is empty")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}: malformed header: {exc}") from exc
        if header.get("format") != _FORMAT:
            raise TraceError(
                f"{path}: unsupported trace format {header.get('format')!r}"
            )
        records = []
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{line_number}: malformed record") from exc
            try:
                records.append(
                    TraceRecord(
                        kind=TransactionKind(row.pop("kind")),
                        critical=row.pop("critical", False),
                        stream=row.pop("stream", ""),
                        **{name: row[name] for name in _RECORD_FIELDS},
                    )
                )
            except (KeyError, ValueError) as exc:
                raise TraceError(
                    f"{path}:{line_number}: invalid record fields: {exc}"
                ) from exc
    expected = header.get("num_records")
    if expected is not None and expected != len(records):
        raise TraceError(
            f"{path}: header promises {expected} records, found {len(records)}"
        )
    return TrafficTrace(
        records,
        num_initiators=header["num_initiators"],
        num_targets=header["num_targets"],
        total_cycles=header["total_cycles"],
        target_names=header.get("target_names"),
        initiator_names=header.get("initiator_names"),
    )
