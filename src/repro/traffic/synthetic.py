"""Synthetic burst-traffic generation.

Reproduces the 20-core synthetic benchmark of paper Sections 7.2 and 7.4:
initiators emit *bursts* (streams of back-to-back packets) of a typical
duration -- around 1000 cycles in the paper -- separated by idle gaps.
Initiators belonging to the same *sync group* burst at nearly the same
time, creating the strong temporal overlap between their targets' streams
that the windowed methodology is designed to detect; distinct groups drift
independently.

The generator produces a full :class:`~repro.traffic.trace.TrafficTrace`
(per-packet records with complete timing breakdowns), so synthetic traces
flow through exactly the same windowing, synthesis and trace-replay
validation paths as platform-simulated traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.traffic.events import TraceRecord, TransactionKind
from repro.traffic.trace import TrafficTrace

__all__ = [
    "SyntheticTrafficConfig",
    "generate_synthetic_trace",
    "write_packet",
]


@dataclass(frozen=True)
class SyntheticTrafficConfig:
    """Parameters of the synthetic burst-traffic benchmark.

    Attributes
    ----------
    num_initiators / num_targets:
        Platform size; initiator ``i`` streams to target ``i % num_targets``
        (the private-memory pattern of the paper's MPSoCs).
    total_cycles:
        Length of the generated simulation period.
    burst_cycles:
        Typical burst duration; actual bursts are jittered by
        ``burst_jitter`` (a +/- fraction).
    gap_cycles / gap_jitter:
        Idle time separating consecutive bursts of the same group.
    packet_words / packet_gap:
        Bursts are streams of ``packet_words``-word write packets issued
        back to back with ``packet_gap`` idle cycles between them.
    sync_groups:
        Partition of initiator indices into groups that burst together;
        defaults to pairs ``(0,1), (2,3), ...``. Members of one group get
        a small random skew, so their streams overlap heavily.
    group_skew:
        Maximum per-member start skew within a group, in cycles.
    critical_targets:
        Targets whose traffic is flagged as real-time.
    seed:
        PRNG seed; generation is fully deterministic given the config.
    """

    num_initiators: int = 10
    num_targets: int = 10
    total_cycles: int = 100_000
    burst_cycles: int = 1_000
    burst_jitter: float = 0.2
    gap_cycles: int = 2_500
    gap_jitter: float = 0.4
    packet_words: int = 16
    packet_gap: int = 2
    sync_groups: Optional[Tuple[Tuple[int, ...], ...]] = None
    group_skew: int = 64
    critical_targets: Tuple[int, ...] = field(default=())
    seed: int = 1

    def resolved_groups(self) -> Tuple[Tuple[int, ...], ...]:
        """The sync-group partition, defaulting to consecutive pairs."""
        if self.sync_groups is not None:
            return self.sync_groups
        groups: List[Tuple[int, ...]] = []
        indices = list(range(self.num_initiators))
        for start in range(0, len(indices), 2):
            groups.append(tuple(indices[start : start + 2]))
        return tuple(groups)

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent parameters."""
        if self.num_initiators < 1 or self.num_targets < 1:
            raise ConfigurationError("need at least one initiator and one target")
        if self.total_cycles < self.burst_cycles:
            raise ConfigurationError(
                "total_cycles must cover at least one burst "
                f"({self.total_cycles} < {self.burst_cycles})"
            )
        if not 0 <= self.burst_jitter < 1 or not 0 <= self.gap_jitter < 1:
            raise ConfigurationError("jitter fractions must lie in [0, 1)")
        if self.packet_words < 1:
            raise ConfigurationError("packet_words must be >= 1")
        if self.packet_gap < 0 or self.group_skew < 0:
            raise ConfigurationError("packet_gap and group_skew must be >= 0")
        seen: set[int] = set()
        for group in self.resolved_groups():
            for member in group:
                if not 0 <= member < self.num_initiators:
                    raise ConfigurationError(
                        f"sync group member {member} out of range"
                    )
                if member in seen:
                    raise ConfigurationError(
                        f"initiator {member} appears in multiple sync groups"
                    )
                seen.add(member)
        for target in self.critical_targets:
            if not 0 <= target < self.num_targets:
                raise ConfigurationError(f"critical target {target} out of range")


def _jittered(rng: random.Random, base: int, jitter: float) -> int:
    """Uniformly jitter ``base`` by +/- ``jitter`` fraction (min 1)."""
    if jitter <= 0:
        return max(1, base)
    low = int(base * (1.0 - jitter))
    high = int(base * (1.0 + jitter))
    return max(1, rng.randint(low, high))


def generate_synthetic_trace(
    config: SyntheticTrafficConfig,
    rng: Optional[random.Random] = None,
) -> TrafficTrace:
    """Generate a synthetic burst trace according to ``config``.

    All randomness is drawn from ``rng`` (default: a fresh
    ``random.Random(config.seed)``) -- never from the interpreter-global
    :mod:`random` state -- so two generations from equal configs are
    record-identical regardless of what other code seeded globally.
    That stability is what keeps scenario fingerprints (and therefore
    the execution engine's result cache) valid across processes.
    """
    config.validate()
    if rng is None:
        rng = random.Random(config.seed)
    critical = set(config.critical_targets)
    records: List[TraceRecord] = []

    for group in config.resolved_groups():
        group_rng = random.Random(rng.randrange(1 << 30))
        cursor = group_rng.randint(0, max(1, config.gap_cycles // 2))
        while cursor < config.total_cycles:
            burst_len = _jittered(group_rng, config.burst_cycles, config.burst_jitter)
            for initiator in group:
                skew = group_rng.randint(0, config.group_skew)
                start = cursor + skew
                end = min(start + burst_len, config.total_cycles - 8)
                target = initiator % config.num_targets
                records.extend(
                    _burst_packets(start, end, initiator, target, config,
                                   target in critical)
                )
            cursor += burst_len + _jittered(
                group_rng, config.gap_cycles, config.gap_jitter
            )

    return TrafficTrace(
        records,
        num_initiators=config.num_initiators,
        num_targets=config.num_targets,
        total_cycles=config.total_cycles,
        target_names=[f"t{idx}" for idx in range(config.num_targets)],
        initiator_names=[f"i{idx}" for idx in range(config.num_initiators)],
    )


def write_packet(
    cursor: int,
    initiator: int,
    target: int,
    words: int,
    critical: bool = False,
) -> TraceRecord:
    """One ``words``-word write packet issued at ``cursor``.

    The timing breakdown matches the burst generator's model (header
    cycle + one cycle per word on the IT bus, single-cycle write
    acknowledge on the TI bus); every synthetic profile emits packets
    through this helper so traces from all profiles flow through the
    windowing pipeline with identical per-packet semantics.
    """
    it_release = cursor + 1 + words
    ti_release = it_release + 1  # single-cycle write acknowledge
    return TraceRecord(
        initiator=initiator,
        target=target,
        kind=TransactionKind.WRITE,
        burst=words,
        issue=cursor,
        it_grant=cursor,
        it_release=it_release,
        service_start=it_release,
        service_end=it_release,
        ti_grant=it_release,
        ti_release=ti_release,
        complete=ti_release,
        critical=critical,
        stream=f"i{initiator}->t{target}",
    )


def _burst_packets(
    start: int,
    end: int,
    initiator: int,
    target: int,
    config: SyntheticTrafficConfig,
    critical: bool,
) -> List[TraceRecord]:
    """Expand one burst window into back-to-back write packets."""
    packet_cost = 1 + config.packet_words
    records: List[TraceRecord] = []
    cursor = start
    while cursor + packet_cost <= end:
        records.append(
            write_packet(cursor, initiator, target, config.packet_words, critical)
        )
        cursor += packet_cost + config.packet_gap
    return records
