"""Pairwise temporal overlap between target traffic streams.

For every pair of targets ``(t_i, t_j)`` and window ``m`` the paper records
``wo[i][j][m]``, the number of cycles in which both streams are active
simultaneously (Definition 2), and aggregates it into the overlap matrix
``om[i][j] = sum_m wo[i][j][m]`` (Eq. 1). The pre-processing phase turns
per-window overlaps above a threshold into bus-separation conflicts, and
the binding phase minimizes the summed overlap per bus.
"""

from __future__ import annotations


import numpy as np

from repro.errors import WindowError
from repro.profiling import track_phase
from repro.traffic.intervals import intersect
from repro.traffic.kernels import TraceAnalytics
from repro.traffic.windows import WindowedTraffic

__all__ = ["PairwiseOverlap", "legacy_overlap_tensor"]


def legacy_overlap_tensor(
    windowed: WindowedTraffic, critical_only: bool = False
) -> np.ndarray:
    """Reference ``wo`` builder: per-pair two-pointer interval merges.

    The original implementation -- intersect every pair of per-target
    interval lists and bin the result. Kept as the ground truth the
    vectorized kernel (:meth:`CompiledActivity.overlap_tensor`) is
    equivalence-tested against.
    """
    trace = windowed.trace
    num_targets = trace.num_targets
    tensor = np.zeros(
        (num_targets, num_targets, windowed.num_windows), dtype=np.int64
    )
    activities = [
        trace.target_activity(idx, critical_only=critical_only)
        for idx in range(num_targets)
    ]
    for i in range(num_targets):
        if not activities[i]:
            continue
        for j in range(i + 1, num_targets):
            if not activities[j]:
                continue
            common = intersect(activities[i], activities[j])
            if not common:
                continue
            bins = windowed._bin_activity(common)
            tensor[i, j] = bins
            tensor[j, i] = bins
    return tensor


class PairwiseOverlap:
    """Computes and stores ``wo[i][j][m]`` and ``om[i][j]`` for a trace.

    The all-pairs tensor is produced by the vectorized columnar kernels
    (:mod:`repro.traffic.kernels`); the trace is compiled once and the
    result memoized per window geometry, so repeated constructions over
    the same trace (threshold sweeps, criticality analysis after the
    total-traffic overlap) cost array lookups, not interval merges.

    Parameters
    ----------
    windowed:
        The window segmentation whose geometry (WS, |W|) is reused.
    critical_only:
        Restrict the computation to critical (real-time) traffic; used to
        find overlapping real-time streams in the pre-processing phase.
    """

    def __init__(self, windowed: WindowedTraffic, critical_only: bool = False) -> None:
        self.windowed = windowed
        self.critical_only = critical_only
        with track_phase("overlap"):
            self._wo = TraceAnalytics.of(windowed.trace).wo(
                windowed.boundaries, critical_only=critical_only
            )

    @property
    def wo(self) -> np.ndarray:
        """``wo[i][j][m]``: overlap cycles of targets i and j in window m.

        Symmetric in (i, j); the diagonal is zero by convention (a stream
        trivially overlaps itself, but the paper's constraints only use
        distinct pairs).
        """
        return self._wo

    @property
    def overlap_matrix(self) -> np.ndarray:
        """``om[i][j]``: total overlap across all windows (paper Eq. 1)."""
        return self._wo.sum(axis=2)

    def max_window_overlap(self, i: int, j: int) -> int:
        """Largest single-window overlap between targets ``i`` and ``j``."""
        self._check(i)
        self._check(j)
        return int(self._wo[i, j].max(initial=0))

    def max_window_fraction(self, i: int, j: int) -> float:
        """Largest single-window overlap as a fraction of the window size."""
        return self.max_window_overlap(i, j) / float(self.windowed.window_size)

    def pairs_exceeding(self, threshold_fraction: float) -> list[tuple[int, int]]:
        """Pairs whose overlap exceeds the threshold in *any* window.

        ``threshold_fraction`` is relative to the window size; the paper
        bounds it at 0.5 because two streams overlapping more than half a
        window can never share a bus anyway (their combined demand would
        exceed the window's capacity).
        """
        if threshold_fraction < 0:
            raise WindowError(
                f"overlap threshold must be non-negative, got {threshold_fraction}"
            )
        limits = threshold_fraction * self.windowed.capacities
        num_targets = self._wo.shape[0]
        over = []
        for i in range(num_targets):
            for j in range(i + 1, num_targets):
                if (self._wo[i, j] > limits).any():
                    over.append((i, j))
        return over

    def _check(self, index: int) -> None:
        if not 0 <= index < self._wo.shape[0]:
            raise WindowError(f"target index {index} out of range")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flavor = "critical" if self.critical_only else "total"
        return (
            f"<PairwiseOverlap {flavor}, {self._wo.shape[0]} targets, "
            f"{self._wo.shape[2]} windows>"
        )
