"""Vectorized columnar traffic-analytics kernels.

The windowed traffic analysis (``comm[i][m]``, Definition 2) and the
pairwise overlap tensor (``wo[i][j][m]``) dominate every design-space
sweep: the interval-list reference implementation in
:mod:`repro.traffic.intervals` re-filters records and re-runs two-pointer
merges for every (pair, window-geometry) combination. This module
compiles a :class:`~repro.traffic.trace.TrafficTrace` **once** into a
columnar NumPy form and answers every subsequent analytics query with
``searchsorted`` / prefix-sum array operations:

* :class:`CompiledActivity` -- the normalized per-target busy intervals
  of one trace flavor (total or critical-only), stored as flat sorted
  boundary arrays plus prefix sums of the cycle occupancy.
* :class:`TraceAnalytics` -- the per-trace memo. It owns the columnar
  record arrays, compiles each flavor lazily, and caches ``comm`` / ``wo``
  results per window geometry so that sweeps over *different* window
  sizes or thresholds on the same trace share all compiled state (and,
  for identical geometries such as a threshold sweep, the results
  themselves).

The kernels are exact: results are byte-identical to the interval-list
reference path (asserted by ``tests/traffic/test_kernels.py``).

Implementation notes
--------------------
All per-target interval arrays live in a single *shifted* coordinate
space: target ``t``'s cycles are translated by ``t * (total_cycles + 1)``
so that the targets occupy disjoint ranges of one sorted axis. A single
global ``searchsorted`` then answers point-location queries for every
target at once, and the prefix sums of the shifted boundaries yield the
cycle occupancy ``F(q) = measure(activity ∩ [0, q))`` in O(log n) per
query -- ``comm[t][m]`` is just ``F`` differenced at consecutive window
edges. The overlap tensor decomposes the timeline into elementary
segments (all activity boundaries plus the window edges), builds the
boolean activity matrix ``ACT[t, segment]`` with the same global
``searchsorted``, and reduces ``wo[:, :, m]`` to one small integer
matmul per window.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from repro.errors import TraceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.traffic.trace import TrafficTrace

__all__ = ["CompiledActivity", "TraceAnalytics", "warm_analytics"]

Interval = Tuple[int, int]

_GEOMETRY_MEMO_SLOTS = 8
"""Window geometries memoized per (trace, kind); sweeps rarely revisit
more than a handful, and each entry is at most a few MB."""


def _as_edges(edges) -> np.ndarray:
    """Validate and canonicalize a window-edge array."""
    array = np.asarray(edges, dtype=np.int64)
    if array.ndim != 1 or array.size < 2:
        raise TraceError("need at least two window edges")
    if array[0] != 0:
        raise TraceError("window edges must start at cycle 0")
    if (np.diff(array) <= 0).any():
        raise TraceError("window edges must be strictly increasing")
    return array


class CompiledActivity:
    """Normalized per-target activity in columnar (structure-of-arrays) form.

    Attributes
    ----------
    starts / ends:
        Flat ``int64`` arrays of the merged busy intervals of *all*
        targets, sorted by (target, start); equivalent to running
        :func:`repro.traffic.intervals.normalize` per target.
    ptr:
        CSR-style offsets: target ``t`` owns rows ``ptr[t]:ptr[t + 1]``.
    """

    def __init__(
        self,
        targets: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        num_targets: int,
        total_cycles: int,
    ) -> None:
        if (ends < starts).any():
            raise TraceError("inverted interval in activity columns")
        self.num_targets = int(num_targets)
        self.total_cycles = int(total_cycles)
        stride = self.total_cycles + 1

        keep = ends > starts  # zero-length occupancy carries no cycles
        shifted_start = starts[keep] + targets[keep] * stride
        shifted_end = ends[keep] + targets[keep] * stride
        order = np.argsort(shifted_start, kind="stable")
        shifted_start = shifted_start[order]
        shifted_end = shifted_end[order]

        if shifted_start.size:
            # Merge overlapping/touching intervals per target in one
            # vectorized pass: a new merged run begins exactly where a
            # start exceeds the running maximum of all previous ends.
            # The stride keeps targets in disjoint ranges, so runs never
            # cross a target boundary.
            running_end = np.maximum.accumulate(shifted_end)
            new_run = np.empty(shifted_start.size, dtype=bool)
            new_run[0] = True
            new_run[1:] = shifted_start[1:] > running_end[:-1]
            run_first = np.flatnonzero(new_run)
            run_last = np.append(run_first[1:] - 1, shifted_start.size - 1)
            merged_start = shifted_start[new_run]
            merged_end = running_end[run_last]
        else:
            merged_start = shifted_start
            merged_end = shifted_end

        owner = merged_start // stride
        self.starts = merged_start - owner * stride
        self.ends = merged_end - owner * stride
        self.ptr = np.searchsorted(owner, np.arange(num_targets + 1))
        self._stride = stride
        self._shift_starts = merged_start
        self._shift_ends = merged_end
        self._cum_starts = np.concatenate(
            ([0], np.cumsum(merged_start, dtype=np.int64))
        )
        self._cum_ends = np.concatenate(
            ([0], np.cumsum(merged_end, dtype=np.int64))
        )
        self._offsets = np.arange(num_targets, dtype=np.int64) * stride

    @property
    def num_intervals(self) -> int:
        """Total merged intervals across all targets."""
        return int(self.starts.size)

    def intervals(self, target: int) -> List[Interval]:
        """Target ``target``'s normalized interval list (Python tuples)."""
        lo, hi = int(self.ptr[target]), int(self.ptr[target + 1])
        return list(
            zip(self.starts[lo:hi].tolist(), self.ends[lo:hi].tolist())
        )

    def busy_cycles(self) -> np.ndarray:
        """Per-target total busy cycles."""
        lengths = self.ends - self.starts
        totals = np.concatenate(([0], np.cumsum(lengths, dtype=np.int64)))
        return totals[self.ptr[1:]] - totals[self.ptr[:-1]]

    def _occupancy_at(self, queries: np.ndarray) -> np.ndarray:
        """``F(q)`` for shifted queries: busy cycles in ``[0, q)``.

        The per-target constant contributed by other targets' intervals
        cancels whenever ``F`` is differenced at two queries inside the
        same target's coordinate range -- which is the only way callers
        use it.
        """
        at_start = np.searchsorted(self._shift_starts, queries, side="right")
        at_end = np.searchsorted(self._shift_ends, queries, side="right")
        return (
            self._cum_ends[at_end]
            - self._cum_starts[at_start]
            + (at_start - at_end) * queries
        )

    def coverage(self, edges) -> np.ndarray:
        """Busy cycles of every target in every window: shape ``(T, M)``.

        Exactly :func:`repro.traffic.intervals.coverage_in_windows` /
        ``coverage_in_bins`` applied to each target's normalized
        activity, computed for all targets and windows at once.
        """
        edge_array = _as_edges(edges)
        clipped = np.minimum(edge_array, self.total_cycles)
        queries = clipped[None, :] + self._offsets[:, None]
        occupancy = self._occupancy_at(queries.ravel()).reshape(queries.shape)
        return np.diff(occupancy, axis=1)

    def active_matrix(self, points: np.ndarray) -> np.ndarray:
        """Boolean ``(T, len(points))``: is each target busy at cycle p?"""
        queries = (points[None, :] + self._offsets[:, None]).ravel()
        at_start = np.searchsorted(self._shift_starts, queries, side="right")
        at_end = np.searchsorted(self._shift_ends, queries, side="right")
        return (at_start - at_end).reshape(
            self.num_targets, points.size
        ).astype(bool)

    def overlap_tensor(self, edges) -> np.ndarray:
        """Pairwise per-window overlap cycles: shape ``(T, T, M)``.

        Symmetric in (i, j) with a zero diagonal -- byte-identical to
        intersecting each pair's interval lists and binning the result
        (the legacy :class:`~repro.traffic.overlap.PairwiseOverlap`
        path).
        """
        edge_array = _as_edges(edges)
        num_windows = edge_array.size - 1
        num_targets = self.num_targets
        tensor = np.zeros(
            (num_targets, num_targets, num_windows), dtype=np.int64
        )
        if self.num_intervals == 0:
            return tensor

        # Elementary segments: between consecutive boundary points every
        # target is constantly busy or idle, and no segment straddles a
        # window edge.
        clipped = np.minimum(edge_array, self.total_cycles)
        bounds = np.unique(np.concatenate((self.starts, self.ends, clipped)))
        seg_left = bounds[:-1]
        seg_len = np.diff(bounds)
        active = self.active_matrix(seg_left)
        weighted = active * seg_len  # (T, S) busy cycles per segment

        window_at = np.searchsorted(bounds, clipped)
        active_int = active.astype(np.int64)
        for window in range(num_windows):
            lo, hi = window_at[window], window_at[window + 1]
            if lo == hi:
                continue
            tensor[:, :, window] = (
                weighted[:, lo:hi] @ active_int[:, lo:hi].T
            )
        diagonal = np.arange(num_targets)
        tensor[diagonal, diagonal, :] = 0
        return tensor


class TraceAnalytics:
    """Per-trace analytics memo shared across window geometries.

    One instance is attached to each :class:`TrafficTrace` (see
    :meth:`of`); it extracts the record columns once, compiles each
    flavor (total / critical-only) lazily into a
    :class:`CompiledActivity`, and memoizes ``comm`` and ``wo`` results
    per window geometry in small LRU maps. A threshold sweep therefore
    computes the overlap tensor once for all its points, and a
    window-size sweep recompiles nothing between points.
    """

    def __init__(self, trace: "TrafficTrace") -> None:
        records = trace.records
        count = len(records)
        self.num_targets = trace.num_targets
        self.total_cycles = trace.total_cycles
        self._targets = np.fromiter(
            (record.target for record in records), np.int64, count
        )
        self._starts = np.fromiter(
            (record.it_grant for record in records), np.int64, count
        )
        self._ends = np.fromiter(
            (record.it_release for record in records), np.int64, count
        )
        self._critical = np.fromiter(
            (record.critical for record in records), bool, count
        )
        self._compiled: Dict[bool, CompiledActivity] = {}
        self._comm_memo: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._wo_memo: "OrderedDict[tuple, np.ndarray]" = OrderedDict()

    @classmethod
    def of(cls, trace: "TrafficTrace") -> "TraceAnalytics":
        """The trace's analytics memo (compiled on first use).

        The instance rides on the trace object itself, so everything
        holding the trace -- sweep drivers, pool workers, the synthesis
        flow for both crossbar sides -- shares one compiled form.
        """
        analytics = trace.__dict__.get("_analytics")
        if analytics is None:
            analytics = cls(trace)
            trace.__dict__["_analytics"] = analytics
        return analytics

    def compiled(self, critical_only: bool = False) -> CompiledActivity:
        """The columnar normalized activity of one flavor."""
        compiled = self._compiled.get(critical_only)
        if compiled is None:
            if critical_only:
                mask = self._critical
                columns = (
                    self._targets[mask],
                    self._starts[mask],
                    self._ends[mask],
                )
            else:
                columns = (self._targets, self._starts, self._ends)
            compiled = CompiledActivity(
                *columns,
                num_targets=self.num_targets,
                total_cycles=self.total_cycles,
            )
            self._compiled[critical_only] = compiled
        return compiled

    def intervals(self, target: int, critical_only: bool = False) -> List[Interval]:
        """Normalized busy intervals of one target (kernel-derived)."""
        return self.compiled(critical_only).intervals(target)

    def critical_targets(self) -> List[int]:
        """Targets receiving at least one critical transaction."""
        return np.unique(self._targets[self._critical]).tolist()

    def comm(self, edges, critical_only: bool = False) -> np.ndarray:
        """``comm[i][m]`` for the given window edges (memoized)."""
        return self._memoized(
            self._comm_memo, "coverage", edges, critical_only
        )

    def wo(self, edges, critical_only: bool = False) -> np.ndarray:
        """``wo[i][j][m]`` for the given window edges (memoized)."""
        return self._memoized(
            self._wo_memo, "overlap_tensor", edges, critical_only
        )

    def _memoized(
        self,
        memo: "OrderedDict[tuple, np.ndarray]",
        kernel: str,
        edges,
        critical_only: bool,
    ) -> np.ndarray:
        edge_array = _as_edges(edges)
        key = (bool(critical_only), edge_array.tobytes())
        cached = memo.get(key)
        if cached is None:
            cached = getattr(self.compiled(critical_only), kernel)(edge_array)
            # Shared across every consumer of this geometry: handing the
            # array out write-protected keeps memo hits allocation-free
            # while making any would-be writer fail loudly instead of
            # corrupting other consumers' results.
            cached.setflags(write=False)
            memo[key] = cached
            if len(memo) > _GEOMETRY_MEMO_SLOTS:
                memo.popitem(last=False)
        else:
            memo.move_to_end(key)
        return cached


def warm_analytics(trace: "TrafficTrace") -> None:
    """Compile a trace's columnar form up front (both crossbar sides).

    The execution engine calls this once per sweep before fanning points
    out: under ``fork`` every worker inherits the parent's compiled
    arrays, and under ``spawn`` they ship (pickled) with the trace, so
    no worker recompiles per sweep point.
    """
    TraceAnalytics.of(trace).compiled(critical_only=False)
    TraceAnalytics.of(trace.mirrored()).compiled(critical_only=False)
