"""Variable-window boundary derivation (the paper's future work).

The conclusions announce "the effect of using variable simulation window
sizes for the design for guaranteeing Quality-of-Service". The idea:
fixed windows straddle burst boundaries arbitrarily -- a window half
inside a burst dilutes its demand, a window spanning two phases blurs
their overlap. *Phase-aligned* windows instead cut the timeline where
the aggregate traffic actually changes, giving fine windows across busy
phases (tight QoS control) and coarse windows across idle stretches (no
over-design from quiet time).

:func:`phase_aligned_boundaries` derives such boundaries from a trace:

1. take the union of all target activity timelines (the system's busy
   intervals),
2. place boundaries at the edges of idle gaps at least ``min_gap``
   cycles long,
3. split any over-long segment to at most ``max_window`` cycles and
   merge over-short ones to at least ``min_window``.

The result feeds :class:`~repro.traffic.windows.WindowedTraffic` via its
``boundaries`` parameter and flows through the whole synthesis stack
(per-window capacities replace the scalar ``WS`` everywhere).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import WindowError
from repro.traffic.intervals import normalize
from repro.traffic.trace import TrafficTrace

__all__ = ["phase_aligned_boundaries"]


def phase_aligned_boundaries(
    trace: TrafficTrace,
    min_window: int = 200,
    max_window: int = 4_000,
    min_gap: int = 64,
) -> List[int]:
    """Derive variable window boundaries aligned to traffic phases.

    Returns a strictly increasing edge list starting at 0 and ending at
    ``trace.total_cycles``. Window sizes are soft-bounded: at least
    ``min_window`` (the final window may be shorter when the trace is)
    and at most ``max_window + min_window`` (phase alignment wins over
    exact equality; splitting and merging round at phase edges).
    """
    if min_window < 1 or max_window < min_window:
        raise WindowError(
            f"need 1 <= min_window <= max_window, got {min_window}, "
            f"{max_window}"
        )
    busy: List = []
    for target in range(trace.num_targets):
        busy.extend(trace.target_activity(target))
    busy = normalize(busy)

    # candidate cut points: edges of long idle gaps
    candidates = {0, trace.total_cycles}
    previous_end = 0
    for start, end in busy:
        if start - previous_end >= min_gap:
            candidates.add(previous_end)
            candidates.add(start)
        previous_end = end

    edges = sorted(c for c in candidates if 0 <= c <= trace.total_cycles)

    # split over-long windows
    split: List[int] = [edges[0]]
    for edge in edges[1:]:
        span = edge - split[-1]
        if span > max_window:
            pieces = int(np.ceil(span / max_window))
            step = span / pieces
            for piece in range(1, pieces):
                split.append(split[-1] + int(round(step)))
        split.append(edge)

    # merge over-short windows (never drop the final edge)
    merged: List[int] = [split[0]]
    for edge in split[1:-1]:
        if edge - merged[-1] >= min_window:
            merged.append(edge)
    if split[-1] - merged[-1] < min_window and len(merged) > 1:
        merged.pop()
    merged.append(split[-1])

    return merged
