"""Traffic trace container.

A :class:`TrafficTrace` is the product of Phase 1 of the design flow: the
application simulated on a *full* crossbar, where every target owns a
dedicated initiator->target bus, so each bus-occupancy interval reflects
the stream's true demand rather than contention artifacts.

The trace exposes per-target activity timelines (normalized interval
lists) for total and critical-only traffic, which the windowing and
overlap layers consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TraceError
from repro.traffic.events import TraceRecord
from repro.traffic.intervals import Interval, normalize, total_length

__all__ = ["TrafficTrace"]


class TrafficTrace:
    """An immutable collection of trace records plus platform metadata.

    Parameters
    ----------
    records:
        Completed transactions, in any order.
    num_initiators / num_targets:
        Core counts of the platform that produced the trace.
    total_cycles:
        Length of the simulation period. Must cover every record.
    target_names / initiator_names:
        Optional human-readable core names for reporting.
    """

    def __init__(
        self,
        records: Sequence[TraceRecord],
        num_initiators: int,
        num_targets: int,
        total_cycles: int,
        target_names: Optional[Sequence[str]] = None,
        initiator_names: Optional[Sequence[str]] = None,
    ) -> None:
        if num_initiators < 1 or num_targets < 1:
            raise TraceError("platform must have at least one initiator and target")
        if total_cycles < 1:
            raise TraceError(f"total_cycles must be positive, got {total_cycles}")
        for record in records:
            if record.target >= num_targets:
                raise TraceError(
                    f"record references target {record.target} but trace has "
                    f"{num_targets} targets"
                )
            if record.initiator >= num_initiators:
                raise TraceError(
                    f"record references initiator {record.initiator} but trace "
                    f"has {num_initiators} initiators"
                )
            if record.complete > total_cycles:
                raise TraceError(
                    f"record completes at {record.complete}, beyond the "
                    f"simulation period of {total_cycles} cycles"
                )
        # A *total* order (no two distinct records tie): same-cycle
        # transactions from different cores would otherwise keep the
        # arbitrary relative position their simulation's event ordering
        # happened to append them in, making the canonical record list
        # -- and everything content-addressed from it -- depend on
        # scheduling internals instead of content.
        self._records = sorted(
            records,
            key=lambda rec: (
                rec.issue,
                rec.it_grant,
                rec.initiator,
                rec.target,
                rec.complete,
            ),
        )
        self.num_initiators = num_initiators
        self.num_targets = num_targets
        self.total_cycles = int(total_cycles)
        self.target_names = list(
            target_names or (f"t{idx}" for idx in range(num_targets))
        )
        self.initiator_names = list(
            initiator_names or (f"i{idx}" for idx in range(num_initiators))
        )
        if len(self.target_names) != num_targets:
            raise TraceError("target_names length does not match num_targets")
        if len(self.initiator_names) != num_initiators:
            raise TraceError("initiator_names length does not match num_initiators")
        self._target_activity: Dict[Tuple[int, bool], List[Interval]] = {}
        self._initiator_activity: Dict[Tuple[int, bool], List[Interval]] = {}
        self._mirror: Optional["TrafficTrace"] = None
        self._critical_targets: Optional[List[int]] = None

    @property
    def records(self) -> List[TraceRecord]:
        """All trace records, sorted by issue cycle."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def records_to_target(self, target: int) -> List[TraceRecord]:
        """All records whose destination is ``target``."""
        self._check_target(target)
        return [rec for rec in self._records if rec.target == target]

    def records_from_initiator(self, initiator: int) -> List[TraceRecord]:
        """All records issued by ``initiator``."""
        self._check_initiator(initiator)
        return [rec for rec in self._records if rec.initiator == initiator]

    def target_activity(self, target: int, critical_only: bool = False) -> List[Interval]:
        """Normalized IT-bus busy intervals of the stream to ``target``.

        With ``critical_only`` the timeline is restricted to transactions
        flagged as real-time (paper Sec. 7.3).

        The timelines of *all* targets of a flavor are built in one pass
        over the records on first use (the old per-target filtering
        re-walked the whole record list once per target).
        """
        self._check_target(target)
        key = (target, critical_only)
        if key not in self._target_activity:
            grouped: List[List[Interval]] = [
                [] for _ in range(self.num_targets)
            ]
            for rec in self._records:
                if rec.critical or not critical_only:
                    grouped[rec.target].append((rec.it_grant, rec.it_release))
            for index, intervals in enumerate(grouped):
                self._target_activity[(index, critical_only)] = normalize(
                    intervals
                )
        return self._target_activity[key]

    def initiator_activity(
        self, initiator: int, critical_only: bool = False
    ) -> List[Interval]:
        """Normalized TI-bus busy intervals of responses to ``initiator``.

        This is the mirror-image timeline used to design the
        target->initiator crossbar: on that crossbar, buses are shared by
        *initiators*, so the relevant stream is the response traffic each
        initiator receives. Like :meth:`target_activity`, all initiators
        of a flavor are grouped in a single pass over the records.
        """
        self._check_initiator(initiator)
        key = (initiator, critical_only)
        if key not in self._initiator_activity:
            grouped: List[List[Interval]] = [
                [] for _ in range(self.num_initiators)
            ]
            for rec in self._records:
                if rec.critical or not critical_only:
                    grouped[rec.initiator].append(
                        (rec.ti_grant, rec.ti_release)
                    )
            for index, intervals in enumerate(grouped):
                self._initiator_activity[(index, critical_only)] = normalize(
                    intervals
                )
        return self._initiator_activity[key]

    def target_busy_cycles(self, target: int) -> int:
        """Total cycles during which ``target`` received request traffic."""
        return total_length(self.target_activity(target))

    def critical_targets(self) -> List[int]:
        """Targets that receive at least one critical transaction."""
        if self._critical_targets is None:
            self._critical_targets = sorted(
                {rec.target for rec in self._records if rec.critical}
            )
        return list(self._critical_targets)

    def latencies(self) -> List[int]:
        """Per-transaction packet latencies, in record order."""
        return [rec.latency for rec in self._records]

    def mirrored(self) -> "TrafficTrace":
        """A view of the trace with initiator and target roles swapped.

        The returned trace treats each *initiator* as a pseudo-target whose
        activity is the response traffic it receives (``ti_grant`` ..
        ``ti_release``). Feeding the mirrored trace through the same
        windowing/synthesis pipeline designs the target->initiator
        crossbar, exactly as the paper prescribes ("the target-initiator
        crossbar can be designed in a similar fashion").

        The mirror is memoized: sweeps design both crossbar sides per
        point, and rebuilding (and re-validating) every record for each
        point dominated the old sweep profile.
        """
        if self._mirror is not None:
            return self._mirror
        mirrored_records = [
            TraceRecord(
                initiator=rec.target,
                target=rec.initiator,
                kind=rec.kind,
                burst=rec.burst,
                issue=rec.issue,
                it_grant=rec.ti_grant,
                it_release=rec.ti_release,
                service_start=rec.ti_release,
                service_end=rec.ti_release,
                ti_grant=rec.ti_release,
                ti_release=rec.ti_release,
                complete=rec.complete,
                critical=rec.critical,
                stream=rec.stream,
            )
            for rec in self._records
        ]
        self._mirror = TrafficTrace(
            mirrored_records,
            num_initiators=self.num_targets,
            num_targets=self.num_initiators,
            total_cycles=self.total_cycles,
            target_names=self.initiator_names,
            initiator_names=self.target_names,
        )
        return self._mirror

    def _check_target(self, target: int) -> None:
        if not 0 <= target < self.num_targets:
            raise TraceError(
                f"target index {target} out of range [0, {self.num_targets})"
            )

    def _check_initiator(self, initiator: int) -> None:
        if not 0 <= initiator < self.num_initiators:
            raise TraceError(
                f"initiator index {initiator} out of range "
                f"[0, {self.num_initiators})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TrafficTrace {len(self._records)} records, "
            f"{self.num_initiators} initiators, {self.num_targets} targets, "
            f"{self.total_cycles} cycles>"
        )
