"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while still being
able to discriminate the failing subsystem.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "TraceError",
    "WindowError",
    "ModelError",
    "SolverError",
    "InfeasibleError",
    "UnboundedError",
    "SynthesisError",
    "ConfigurationError",
    "ValidationError",
    "ApplicationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """Raised when a simulation can make no further progress.

    This typically indicates a platform-model bug, for example a process
    waiting on an event that no other process can ever trigger.
    """


class TraceError(ReproError):
    """Raised for malformed traffic traces or trace-file I/O problems."""


class WindowError(TraceError):
    """Raised for invalid window segmentation parameters."""


class ModelError(ReproError):
    """Raised for ill-formed optimization models (bad bounds, names, ...)."""


class SolverError(ReproError):
    """Raised when an optimization solver fails for an internal reason."""


class InfeasibleError(SolverError):
    """Raised when a model is proven to admit no feasible solution."""


class UnboundedError(SolverError):
    """Raised when an optimization objective is unbounded."""


class SynthesisError(ReproError):
    """Raised when crossbar synthesis cannot produce a configuration."""


class ConfigurationError(ReproError):
    """Raised for invalid user-supplied configuration parameters."""


class ValidationError(ReproError):
    """Raised when a crossbar configuration violates design constraints."""


class ApplicationError(ReproError):
    """Raised for invalid application/benchmark descriptions."""
