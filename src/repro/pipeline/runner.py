"""The staged pipeline runner.

:class:`PipelineRunner` executes the paper's Fig. 3 flow stage by stage
through an :class:`~repro.pipeline.store.ArtifactStore`. Every stage
method first derives the output's content-addressed fingerprint (from
the upstream artifacts' fingerprints plus the configuration slice the
stage reads), then:

1. returns the in-memory artifact if the store already holds it,
2. else decodes a persisted per-stage entry when the store has a disk
   layer and the stage serializes (search/binding),
3. else executes the stage and stores the artifact in both layers.

Each path is tallied per stage in the store's
:class:`~repro.pipeline.store.StageCounters`, which is what incremental
re-synthesis tests assert on and ``--explain-cache`` prints.

Every solve entry point in the repository drives this runner:
:class:`~repro.core.synthesis.CrossbarSynthesizer` composes
``collect -> window -> conflicts -> bind`` per crossbar side, the
:class:`~repro.exec.engine.ExecutionEngine` solves sweep/batch points
through the synthesizer (so serial sweeps share windowing artifacts
across points), and the scenario suite runner keeps one runner alive
across runs so editing a suite reuses the unchanged scenarios' stages.

A process-global runner (:func:`shared_runner`) memoizes the
window/conflict *analysis* stages only: search/binding results are
deliberately recomputed there so solver-level observability (solve
counters, benchmarks) keeps meaning "this point was solved", and
collection artifacts are not retained so the global store never pins
callers' traces in memory. Callers that want binding or trace reuse --
the suite runner, or anyone constructing a :class:`PipelineRunner`
explicitly -- opt in per runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.binding import optimize_binding
from repro.core.preprocess import ConflictAnalysis, build_conflicts
from repro.core.problem import CrossbarDesignProblem
from repro.core.search import search_minimum_buses
from repro.core.spec import CrossbarDesign, SynthesisConfig
from repro.core.validate import audit_binding
from repro.pipeline.artifacts import (
    BindingArtifact,
    CollectedTraffic,
    ConflictArtifact,
    ValidatedDesign,
    WindowedAnalysis,
    binding_stage_spec,
    conflict_stage_spec,
    stage_fingerprint,
    window_stage_spec,
)
from repro.pipeline.store import ArtifactStore
from repro.profiling import track_phase
from repro.traffic.trace import TrafficTrace

__all__ = [
    "SideArtifacts",
    "PipelineDesign",
    "PipelineRunner",
    "shared_runner",
    "reset_shared_runner",
    "describe_stages",
]


@dataclass(frozen=True)
class SideArtifacts:
    """One crossbar side's stage chain (phases 2-4)."""

    windowed: WindowedAnalysis
    conflicts: ConflictArtifact
    binding: BindingArtifact


@dataclass(frozen=True)
class PipelineDesign:
    """The full staged flow's outcome for one synthesis point."""

    collected: CollectedTraffic
    it: SideArtifacts
    ti: SideArtifacts
    design: CrossbarDesign
    fingerprint: str


class PipelineRunner:
    """Executes pipeline stages through an artifact store (see module
    docstring for the lookup discipline).

    Parameters
    ----------
    store:
        The artifact store; a fresh in-memory store by default.
    memoize_bindings:
        Whether search/binding artifacts participate in store lookups.
        Window/conflict analysis stages always do.
    retain_traces:
        Whether collection artifacts (which pin the whole trace) are
        kept in the store. Downstream artifacts key off the trace's
        content fingerprint either way, so window/conflict sharing
        survives without retention -- the process-global runner turns
        this off so designing many large traces sequentially cannot
        accumulate them for the life of the process.
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        memoize_bindings: bool = True,
        retain_traces: bool = True,
    ) -> None:
        self.store = store if store is not None else ArtifactStore()
        self.memoize_bindings = memoize_bindings
        self.retain_traces = retain_traces

    @property
    def counters(self):
        """The store's per-stage execution/caching tallies."""
        return self.store.counters

    def memoized(self, stage: str, fingerprint: str, compute):
        """The store lookup discipline every in-memory stage follows:
        serve the artifact if the store holds it, else run ``compute``
        and store the result -- tallying the taken path under ``stage``.

        Public so callers can define their own stages (the suite runner
        keys trace building by scenario content through this).
        """
        cached = self.store.get(fingerprint)
        if cached is not None:
            self.counters.record_memo_hit(stage)
            return cached
        self.counters.record_computed(stage)
        artifact = compute()
        self.store.put(fingerprint, artifact)
        return artifact

    # -- phase 1: traffic collection ----------------------------------

    def collect(
        self, trace: Union[TrafficTrace, CollectedTraffic], label: str = ""
    ) -> CollectedTraffic:
        """Wrap a full-crossbar trace as the pipeline's root artifact.

        The fingerprint is the trace's record-level content hash, so
        equal traces -- however produced -- share every downstream
        artifact.
        """
        if isinstance(trace, CollectedTraffic):
            return trace
        artifact = CollectedTraffic.from_trace(trace, label=label)
        if not self.retain_traces:
            # Wrap without storing: the fingerprint (already computed)
            # keys every downstream stage, so sharing is unaffected,
            # and the store never pins the caller's trace alive.
            return artifact
        fingerprint = stage_fingerprint("collect", artifact.fingerprint, None)
        return self.memoized("collect", fingerprint, lambda: artifact)

    # -- phase 2: window segmentation / overlap extraction ------------

    def window(
        self,
        collected: CollectedTraffic,
        config: SynthesisConfig,
        window_size: int,
        mirrored: bool,
    ) -> WindowedAnalysis:
        """Segment one crossbar side into windows and extract the
        design problem (``comm``/``wo`` tensors, criticality).

        ``mirrored=True`` is the target->initiator side, analyzed on the
        mirrored trace per the paper's "designed in a similar fashion".
        """
        spec = window_stage_spec(config, window_size, mirrored)
        fingerprint = stage_fingerprint("window", collected.fingerprint, spec)

        def compute() -> WindowedAnalysis:
            trace = collected.trace.mirrored() if mirrored else collected.trace
            return WindowedAnalysis(
                problem=self._problem_for(trace, window_size, config),
                mirrored=mirrored,
                fingerprint=fingerprint,
            )

        return self.memoized("window", fingerprint, compute)

    @staticmethod
    def _problem_for(
        trace: TrafficTrace, window: int, config: SynthesisConfig
    ) -> CrossbarDesignProblem:
        if not config.variable_windows:
            return CrossbarDesignProblem.from_trace(trace, window)
        from repro.traffic.qos import phase_aligned_boundaries

        boundaries = phase_aligned_boundaries(
            trace,
            min_window=max(1, window // config.variable_window_ratio),
            max_window=window,
        )
        return CrossbarDesignProblem.from_trace_boundaries(trace, boundaries)

    # -- phase 3: conflict pre-processing -----------------------------

    def conflicts(
        self, windowed: WindowedAnalysis, config: SynthesisConfig
    ) -> ConflictArtifact:
        """Build the conflict matrix for one windowed analysis."""
        spec = conflict_stage_spec(config)
        fingerprint = stage_fingerprint(
            "conflicts", windowed.fingerprint, spec
        )
        return self.memoized(
            "conflicts",
            fingerprint,
            lambda: ConflictArtifact(
                conflicts=build_conflicts(windowed.problem, config),
                fingerprint=fingerprint,
            ),
        )

    # -- phase 4: configuration search + optimal binding --------------

    def bind(
        self,
        windowed: WindowedAnalysis,
        conflicts: ConflictArtifact,
        config: SynthesisConfig,
    ) -> BindingArtifact:
        """Search the minimum configuration and optimize the binding."""
        fingerprint = stage_fingerprint(
            "bind",
            [windowed.fingerprint, conflicts.fingerprint],
            binding_stage_spec(config),
        )
        return self._bind_at(
            "bind", fingerprint, windowed.problem, conflicts.conflicts, config
        )

    def bind_merged(
        self,
        problem: CrossbarDesignProblem,
        conflicts: ConflictAnalysis,
        config: SynthesisConfig,
        upstream: Sequence[str],
        merge_spec: Dict[str, Any],
    ) -> BindingArtifact:
        """The robust multi-scenario solve as a cacheable stage.

        ``upstream`` lists the per-scenario analysis fingerprints the
        merged problem was built from and ``merge_spec`` the merge
        policy/weights, so the fingerprint is content-addressed without
        hashing the merged tensors themselves.
        """
        fingerprint = stage_fingerprint(
            "bind-merged",
            list(upstream),
            {**binding_stage_spec(config), **merge_spec},
        )
        return self._bind_at(
            "bind-merged", fingerprint, problem, conflicts, config
        )

    def _bind_at(
        self,
        stage: str,
        fingerprint: str,
        problem: CrossbarDesignProblem,
        conflicts: ConflictAnalysis,
        config: SynthesisConfig,
    ) -> BindingArtifact:
        if self.memoize_bindings:
            cached = self.store.get(fingerprint)
            if cached is not None:
                self.counters.record_memo_hit(stage)
                return cached
            payload = self.store.get_payload(fingerprint)
            if payload is not None:
                try:
                    artifact = BindingArtifact.from_payload(
                        payload, fingerprint
                    )
                except (KeyError, TypeError, ValueError):
                    pass  # malformed persisted stage entry: recompute
                else:
                    self.counters.record_disk_hit(stage)
                    self.store.put(fingerprint, artifact)
                    return artifact
        self.counters.record_computed(stage)
        with track_phase("solve"):
            search = search_minimum_buses(problem, conflicts, config)
            binding = optimize_binding(
                problem, conflicts, search.num_buses, config
            )
            audit_binding(
                problem,
                conflicts,
                binding.binding,
                config.max_targets_per_bus,
                raise_on_violation=True,
            )
        artifact = BindingArtifact(
            search=search, binding=binding, fingerprint=fingerprint
        )
        if self.memoize_bindings:
            self.store.put(fingerprint, artifact)
            self.store.put_payload(fingerprint, artifact.to_payload())
        return artifact

    # -- composite drivers --------------------------------------------

    def design_side(
        self,
        collected: CollectedTraffic,
        config: SynthesisConfig,
        window_size: int,
        mirrored: bool,
    ) -> SideArtifacts:
        """Phases 2-4 for one crossbar side."""
        windowed = self.window(collected, config, window_size, mirrored)
        conflicts = self.conflicts(windowed, config)
        binding = self.bind(windowed, conflicts, config)
        return SideArtifacts(
            windowed=windowed, conflicts=conflicts, binding=binding
        )

    def design(
        self,
        trace: Union[TrafficTrace, CollectedTraffic],
        config: SynthesisConfig,
        window_size: int,
        label: str = "",
    ) -> PipelineDesign:
        """The full staged flow for both crossbars of one point."""
        collected = self.collect(trace, label=label)
        it = self.design_side(collected, config, window_size, mirrored=False)
        ti = self.design_side(collected, config, window_size, mirrored=True)
        design = CrossbarDesign(
            it=it.binding.binding, ti=ti.binding.binding, label="windowed"
        )
        fingerprint = stage_fingerprint(
            "design",
            [it.binding.fingerprint, ti.binding.fingerprint],
            None,
        )
        return PipelineDesign(
            collected=collected,
            it=it,
            ti=ti,
            design=design,
            fingerprint=fingerprint,
        )

    # -- validation stage ---------------------------------------------

    def validate(
        self,
        application,
        design: CrossbarDesign,
        max_cycles: int,
        source_key: str,
        label: str = "",
    ) -> ValidatedDesign:
        """Replay a design through the platform simulator.

        ``source_key`` must determine the application's workload (e.g.
        ``"app:qsort"`` plus its build parameters encoded by the caller):
        it keys the memo together with the bindings and cycle budget.
        Memory-only -- simulation results are cheap to keep and awkward
        to serialize faithfully.
        """
        fingerprint = stage_fingerprint(
            "validate",
            None,
            {
                "source": source_key,
                "it": list(design.it.binding),
                "ti": list(design.ti.binding),
                "budget": int(max_cycles),
            },
        )
        def compute() -> ValidatedDesign:
            result = application.simulate(
                design.it.as_list(), design.ti.as_list(), max_cycles
            )
            return ValidatedDesign(
                design=design,
                stats=result.latency_stats(),
                critical_stats=result.latency_stats(critical_only=True),
                finished=result.finished,
                fingerprint=fingerprint,
                label=label or source_key,
            )

        return self.memoized("validate", fingerprint, compute)


_SHARED_RUNNER: Optional[PipelineRunner] = None


def shared_runner() -> PipelineRunner:
    """The process-global analysis-stage runner (see module docstring).

    Bindings are not memoized here -- a solve requested without an
    explicit store is a solve performed, which keeps solver-level
    instrumentation and benchmarks meaningful -- and traces are not
    retained, so the global store holds only derived window/conflict
    artifacts under its LRU bound.
    """
    global _SHARED_RUNNER
    if _SHARED_RUNNER is None:
        _SHARED_RUNNER = PipelineRunner(
            store=ArtifactStore(max_memory_entries=64),
            memoize_bindings=False,
            retain_traces=False,
        )
    return _SHARED_RUNNER


def reset_shared_runner() -> None:
    """Drop the process-global runner (tests use this for isolation)."""
    global _SHARED_RUNNER
    _SHARED_RUNNER = None


def describe_stages(design: PipelineDesign) -> List[Tuple[str, str, str]]:
    """(stage, fingerprint, summary) rows for ``repro pipeline inspect``."""
    collected = design.collected
    rows: List[Tuple[str, str, str]] = [
        (
            "collect",
            collected.fingerprint,
            f"{len(collected.trace)} records, "
            f"{collected.trace.total_cycles} cycles",
        )
    ]
    for side_name, side in (("it", design.it), ("ti", design.ti)):
        rows.append(
            (
                f"window[{side_name}]",
                side.windowed.fingerprint,
                side.windowed.describe(),
            )
        )
        rows.append(
            (
                f"conflicts[{side_name}]",
                side.conflicts.fingerprint,
                side.conflicts.describe(),
            )
        )
        rows.append(
            (
                f"bind[{side_name}]",
                side.binding.fingerprint,
                side.binding.describe(),
            )
        )
    rows.append(
        (
            "design",
            design.fingerprint,
            f"{design.design.it.num_buses} IT + "
            f"{design.design.ti.num_buses} TI buses",
        )
    )
    return rows
