"""The staged pipeline runner.

:class:`PipelineRunner` executes the paper's Fig. 3 flow stage by stage
through an :class:`~repro.pipeline.store.ArtifactStore`. Every stage
method first derives the output's content-addressed fingerprint (from
the upstream artifacts' fingerprints plus the configuration slice the
stage reads), then:

1. returns the in-memory artifact if the store already holds it,
2. else decodes a persisted per-stage entry when the store has a disk
   layer and the stage serializes (search/binding),
3. else executes the stage and stores the artifact in both layers.

Each path is tallied per stage in the store's
:class:`~repro.pipeline.store.StageCounters`, which is what incremental
re-synthesis tests assert on and ``--explain-cache`` prints.

Persistence is best-effort by contract: the disk layers underneath
(:meth:`ResultCache.put_json`, :meth:`ArtifactStore.put_arrays`) retry
and then swallow storage faults, so a full disk or injected
``io.transient`` fault costs future warm starts -- the stage recomputes
next time -- never the run in flight or the correctness of its report.

Every solve entry point in the repository drives this runner:
:class:`~repro.core.synthesis.CrossbarSynthesizer` composes
``collect -> window -> conflicts -> bind`` per crossbar side, the
:class:`~repro.exec.engine.ExecutionEngine` solves sweep/batch points
through the synthesizer (so serial sweeps share windowing artifacts
across points), and the scenario suite runner keeps one runner alive
across runs so editing a suite reuses the unchanged scenarios' stages.

A process-global runner (:func:`shared_runner`) memoizes the
window/conflict *analysis* stages only: search/binding results are
deliberately recomputed there so solver-level observability (solve
counters, benchmarks) keeps meaning "this point was solved", and
collection artifacts are not retained so the global store never pins
callers' traces in memory. Callers that want binding or trace reuse --
the suite runner, or anyone constructing a :class:`PipelineRunner`
explicitly -- opt in per runner.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.binding import optimize_binding
from repro.core.preprocess import ConflictAnalysis, build_conflicts
from repro.core.problem import CrossbarDesignProblem
from repro.core.search import search_minimum_buses
from repro.core.spec import CrossbarDesign, SynthesisConfig
from repro.core.validate import audit_binding
from repro.pipeline.artifacts import (
    BindingArtifact,
    CollectedTraffic,
    ConflictArtifact,
    ReplayArtifact,
    WindowedAnalysis,
    binding_stage_spec,
    conflict_stage_spec,
    replay_stage_spec,
    stage_fingerprint,
    warm_hint_key,
    window_stage_spec,
)
from repro.errors import ConfigurationError, SynthesisError
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.pipeline import shm as _shm
from repro.pipeline.store import ArtifactStore
from repro.platform.drivers import WorkloadDriver, simulate_workload
from repro.profiling import track_phase
from repro.traffic.criticality import CriticalityReport
from repro.traffic.trace import TrafficTrace

__all__ = [
    "SideArtifacts",
    "PipelineDesign",
    "PipelineRunner",
    "shared_runner",
    "reset_shared_runner",
    "describe_stages",
]

_STAGE_SECONDS = _metrics.histogram(
    "repro_stage_seconds",
    "Wall-clock seconds per executed (non-cached) pipeline stage.",
    ("stage",),
)


def _timed_stage(stage: str, fingerprint: str, compute):
    """Run one stage compute under a ``pipeline.<stage>`` span and feed
    its duration into ``repro_stage_seconds``.

    Only *executed* stages pass through here -- cache hits stay on
    their untimed fast path, so the histogram measures real stage cost,
    not lookup cost.
    """
    begin = time.perf_counter()
    with _tracing.span(
        f"pipeline.{stage}", fingerprint=fingerprint[:12]
    ):
        artifact = compute()
    _STAGE_SECONDS.observe(time.perf_counter() - begin, stage=stage)
    return artifact


@dataclass(frozen=True)
class SideArtifacts:
    """One crossbar side's stage chain (phases 2-4)."""

    windowed: WindowedAnalysis
    conflicts: ConflictArtifact
    binding: BindingArtifact


@dataclass(frozen=True)
class PipelineDesign:
    """The full staged flow's outcome for one synthesis point."""

    collected: CollectedTraffic
    it: SideArtifacts
    ti: SideArtifacts
    design: CrossbarDesign
    fingerprint: str


class PipelineRunner:
    """Executes pipeline stages through an artifact store (see module
    docstring for the lookup discipline).

    Parameters
    ----------
    store:
        The artifact store; a fresh in-memory store by default.
    memoize_bindings:
        Whether search/binding artifacts participate in store lookups.
        Window/conflict analysis stages always do.
    retain_traces:
        Whether collection artifacts (which pin the whole trace) are
        kept in the store. Downstream artifacts key off the trace's
        content fingerprint either way, so window/conflict sharing
        survives without retention -- the process-global runner turns
        this off so designing many large traces sequentially cannot
        accumulate them for the life of the process.
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        memoize_bindings: bool = True,
        retain_traces: bool = True,
    ) -> None:
        self.store = store if store is not None else ArtifactStore()
        self.memoize_bindings = memoize_bindings
        self.retain_traces = retain_traces

    @property
    def counters(self):
        """The store's per-stage execution/caching tallies."""
        return self.store.counters

    def memoized(self, stage: str, fingerprint: str, compute):
        """The store lookup discipline every in-memory stage follows:
        serve the artifact if the store holds it, else run ``compute``
        and store the result -- tallying the taken path under ``stage``.

        Public so callers can define their own stages (the suite runner
        keys trace building by scenario content through this).
        """
        cached = self.store.get(fingerprint)
        if cached is not None:
            self.counters.record_memo_hit(stage)
            return cached
        self.counters.record_computed(stage)
        artifact = _timed_stage(stage, fingerprint, compute)
        self.store.put(fingerprint, artifact)
        return artifact

    # -- phase 1: traffic collection ----------------------------------

    def collect(
        self, trace: Union[TrafficTrace, CollectedTraffic], label: str = ""
    ) -> CollectedTraffic:
        """Wrap a full-crossbar trace as the pipeline's root artifact.

        The fingerprint is the trace's record-level content hash, so
        equal traces -- however produced -- share every downstream
        artifact.
        """
        if isinstance(trace, CollectedTraffic):
            return trace
        artifact = CollectedTraffic.from_trace(trace, label=label)
        if not self.retain_traces:
            # Wrap without storing: the fingerprint (already computed)
            # keys every downstream stage, so sharing is unaffected,
            # and the store never pins the caller's trace alive.
            return artifact
        fingerprint = stage_fingerprint("collect", artifact.fingerprint, None)
        return self.memoized("collect", fingerprint, lambda: artifact)

    # -- phase 2: window segmentation / overlap extraction ------------

    def window(
        self,
        collected: CollectedTraffic,
        config: SynthesisConfig,
        window_size: int,
        mirrored: bool,
    ) -> WindowedAnalysis:
        """Segment one crossbar side into windows and extract the
        design problem (``comm``/``wo`` tensors, criticality).

        ``mirrored=True`` is the target->initiator side, analyzed on the
        mirrored trace per the paper's "designed in a similar fashion".

        When the store has a disk layer, the windowed tensors persist as
        a compressed ``.npz`` sidecar (plus an uncompressed mmap tier):
        another process re-analyzing the same trace rebuilds the design
        problem straight from the arrays without re-windowing (or even
        holding) the trace.

        Lookup order: store memo -> shared stage plane
        (:mod:`repro.pipeline.shm` -- another store's live artifact, or
        a zero-copy view of a pool parent's published segment, tallied
        as ``shm_hits``) -> disk sidecar -> compute. Every path yields
        byte-identical tensors; the tiers differ only in cost.
        """
        spec = window_stage_spec(config, window_size, mirrored)
        fingerprint = stage_fingerprint("window", collected.fingerprint, spec)
        cached = self.store.get(fingerprint)
        if cached is not None:
            self.counters.record_memo_hit("window")
            return cached
        shared = _shm.lookup_artifact(fingerprint)
        if (
            isinstance(shared, WindowedAnalysis)
            and shared.mirrored == mirrored
        ):
            self.counters.record_shm_hit("window")
            self.store.put(fingerprint, shared)
            return shared
        arrays = _shm.lookup_arrays(fingerprint)
        if arrays is not None:
            artifact = _window_from_arrays(arrays, fingerprint, mirrored)
            if artifact is not None:
                self.counters.record_shm_hit("window")
                self.store.put(fingerprint, artifact)
                _shm.offer(
                    fingerprint, artifact, lambda: _window_arrays(artifact)
                )
                return artifact
        arrays = self.store.get_arrays(fingerprint)
        if arrays is not None:
            artifact = _window_from_arrays(arrays, fingerprint, mirrored)
            if artifact is not None:
                self.counters.record_disk_hit("window")
                self.store.put(fingerprint, artifact)
                _shm.offer(
                    fingerprint, artifact, lambda: _window_arrays(artifact)
                )
                return artifact
        self.counters.record_computed("window")

        def _compute() -> WindowedAnalysis:
            trace = (
                collected.trace.mirrored() if mirrored else collected.trace
            )
            return WindowedAnalysis(
                problem=self._problem_for(trace, window_size, config),
                mirrored=mirrored,
                fingerprint=fingerprint,
            )

        artifact = _timed_stage("window", fingerprint, _compute)
        self.store.put(fingerprint, artifact)
        _shm.offer(fingerprint, artifact, lambda: _window_arrays(artifact))
        self.store.put_arrays(fingerprint, _window_arrays(artifact))
        return artifact

    @staticmethod
    def _problem_for(
        trace: TrafficTrace, window: int, config: SynthesisConfig
    ) -> CrossbarDesignProblem:
        if not config.variable_windows:
            return CrossbarDesignProblem.from_trace(trace, window)
        from repro.traffic.qos import phase_aligned_boundaries

        boundaries = phase_aligned_boundaries(
            trace,
            min_window=max(1, window // config.variable_window_ratio),
            max_window=window,
        )
        return CrossbarDesignProblem.from_trace_boundaries(trace, boundaries)

    # -- phase 3: conflict pre-processing -----------------------------

    def conflicts(
        self, windowed: WindowedAnalysis, config: SynthesisConfig
    ) -> ConflictArtifact:
        """Build the conflict matrix for one windowed analysis."""
        spec = conflict_stage_spec(config)
        fingerprint = stage_fingerprint(
            "conflicts", windowed.fingerprint, spec
        )
        return self.memoized(
            "conflicts",
            fingerprint,
            lambda: ConflictArtifact(
                conflicts=build_conflicts(windowed.problem, config),
                fingerprint=fingerprint,
            ),
        )

    # -- phase 4: configuration search + optimal binding --------------

    def bind(
        self,
        windowed: WindowedAnalysis,
        conflicts: ConflictArtifact,
        config: SynthesisConfig,
    ) -> BindingArtifact:
        """Search the minimum configuration and optimize the binding."""
        fingerprint = stage_fingerprint(
            "bind",
            [windowed.fingerprint, conflicts.fingerprint],
            binding_stage_spec(config),
        )
        return self._bind_at(
            "bind", fingerprint, windowed.problem, conflicts.conflicts, config
        )

    def bind_merged(
        self,
        problem: CrossbarDesignProblem,
        conflicts: ConflictAnalysis,
        config: SynthesisConfig,
        upstream: Sequence[str],
        merge_spec: Dict[str, Any],
    ) -> BindingArtifact:
        """The robust multi-scenario solve as a cacheable stage.

        ``upstream`` lists the per-scenario analysis fingerprints the
        merged problem was built from and ``merge_spec`` the merge
        policy/weights, so the fingerprint is content-addressed without
        hashing the merged tensors themselves.
        """
        fingerprint = stage_fingerprint(
            "bind-merged",
            list(upstream),
            {**binding_stage_spec(config), **merge_spec},
        )
        return self._bind_at(
            "bind-merged", fingerprint, problem, conflicts, config
        )

    def _bind_at(
        self,
        stage: str,
        fingerprint: str,
        problem: CrossbarDesignProblem,
        conflicts: ConflictAnalysis,
        config: SynthesisConfig,
    ) -> BindingArtifact:
        # Warm-start slot: keyed by problem shape + binding config, NOT
        # traffic content -- so an edited suite that (correctly) misses
        # the artifact cache still seeds its re-solve with the previous
        # binding. Hints are advisory; the solver re-validates them.
        warm_key = (
            warm_hint_key(stage, problem, config)
            if self.memoize_bindings
            else None
        )
        if self.memoize_bindings:
            cached = self.store.get(fingerprint)
            if cached is not None:
                self.counters.record_memo_hit(stage)
                return cached
            payload = self.store.get_payload(fingerprint)
            if payload is not None:
                try:
                    artifact = BindingArtifact.from_payload(
                        payload, fingerprint
                    )
                except (KeyError, TypeError, ValueError):
                    pass  # malformed persisted stage entry: recompute
                else:
                    self.counters.record_disk_hit(stage)
                    self.store.put(fingerprint, artifact)
                    self.store.put_warm(warm_key, artifact.binding.binding)
                    return artifact
        warm_binding = (
            self.store.get_warm(warm_key) if warm_key is not None else None
        )
        self.counters.record_computed(stage)

        def _compute() -> BindingArtifact:
            with track_phase("solve"):
                search = search_minimum_buses(
                    problem, conflicts, config, warm_binding=warm_binding
                )
                binding = optimize_binding(
                    problem, conflicts, search.num_buses, config,
                    warm_binding=warm_binding,
                )
                audit_binding(
                    problem,
                    conflicts,
                    binding.binding,
                    config.max_targets_per_bus,
                    raise_on_violation=True,
                )
            return BindingArtifact(
                search=search, binding=binding, fingerprint=fingerprint
            )

        artifact = _timed_stage(stage, fingerprint, _compute)
        if self.memoize_bindings:
            self.store.put(fingerprint, artifact)
            self.store.put_payload(fingerprint, artifact.to_payload())
            self.store.put_warm(warm_key, artifact.binding.binding)
        return artifact

    # -- composite drivers --------------------------------------------

    def design_side(
        self,
        collected: CollectedTraffic,
        config: SynthesisConfig,
        window_size: int,
        mirrored: bool,
    ) -> SideArtifacts:
        """Phases 2-4 for one crossbar side."""
        windowed = self.window(collected, config, window_size, mirrored)
        conflicts = self.conflicts(windowed, config)
        binding = self.bind(windowed, conflicts, config)
        return SideArtifacts(
            windowed=windowed, conflicts=conflicts, binding=binding
        )

    def design_fingerprint(
        self,
        trace_digest: str,
        config: SynthesisConfig,
        window_size: int,
    ) -> str:
        """The end-to-end design fingerprint, derived without executing.

        Stage fingerprints are pure functions of the upstream
        fingerprints plus each stage's configuration slice, so the final
        design fingerprint is computable from the trace's content digest
        alone -- no windowing, no solving. This is the fingerprint-level
        lookup hook the ``repro serve`` daemon coalesces on: it lets the
        server content-address a design request (and advertise the
        fingerprint to clients) before committing any solver work. The
        value matches :attr:`PipelineDesign.fingerprint` of an executed
        flow over a trace with digest ``trace_digest``.
        """
        side_fingerprints = []
        for mirrored in (False, True):  # it side first, then ti
            windowed = stage_fingerprint(
                "window",
                trace_digest,
                window_stage_spec(config, window_size, mirrored),
            )
            conflicts = stage_fingerprint(
                "conflicts", windowed, conflict_stage_spec(config)
            )
            side_fingerprints.append(
                stage_fingerprint(
                    "bind", [windowed, conflicts], binding_stage_spec(config)
                )
            )
        return stage_fingerprint("design", side_fingerprints, None)

    def design(
        self,
        trace: Union[TrafficTrace, CollectedTraffic],
        config: SynthesisConfig,
        window_size: int,
        label: str = "",
    ) -> PipelineDesign:
        """The full staged flow for both crossbars of one point."""
        with _tracing.span(
            "pipeline.design", window=window_size, label=label
        ):
            return self._design(trace, config, window_size, label)

    def _design(
        self,
        trace: Union[TrafficTrace, CollectedTraffic],
        config: SynthesisConfig,
        window_size: int,
        label: str = "",
    ) -> PipelineDesign:
        collected = self.collect(trace, label=label)
        it = self.design_side(collected, config, window_size, mirrored=False)
        ti = self.design_side(collected, config, window_size, mirrored=True)
        design = CrossbarDesign(
            it=it.binding.binding, ti=ti.binding.binding, label="windowed"
        )
        fingerprint = stage_fingerprint(
            "design",
            [it.binding.fingerprint, ti.binding.fingerprint],
            None,
        )
        return PipelineDesign(
            collected=collected,
            it=it,
            ti=ti,
            design=design,
            fingerprint=fingerprint,
        )

    # -- latency-replay stage ------------------------------------------

    def replay_fingerprint(
        self,
        driver: WorkloadDriver,
        design: CrossbarDesign,
        max_cycles: Optional[int] = None,
    ) -> Optional[str]:
        """The replay stage's content fingerprint, or ``None`` when the
        workload cannot be content-addressed (unkeyed program drivers)."""
        budget = int(max_cycles or driver.sim_cycles)
        try:
            workload_key = driver.workload_key()
        except ConfigurationError:
            return None
        return stage_fingerprint(
            "replay", None, replay_stage_spec(workload_key, design, budget)
        )

    def lookup_replay(self, fingerprint: str) -> Optional[ReplayArtifact]:
        """A cached replay artifact from either store layer, or ``None``
        (tallied as a memo/disk hit when found)."""
        cached = self.store.get(fingerprint)
        if cached is not None:
            self.counters.record_memo_hit("replay")
            return cached
        payload = self.store.get_payload(fingerprint)
        if payload is not None:
            try:
                artifact = ReplayArtifact.from_payload(payload, fingerprint)
            except (KeyError, TypeError, ValueError):
                pass  # malformed persisted stage entry: re-simulate
            else:
                self.counters.record_disk_hit("replay")
                self.store.put(fingerprint, artifact)
                return artifact
        return None

    def record_replay(self, artifact: ReplayArtifact) -> None:
        """Account and store a replay computed outside this runner (the
        execution engine's batched replay path lands here)."""
        self.counters.record_computed("replay")
        if artifact.fingerprint:
            self.store.put(artifact.fingerprint, artifact)
            self.store.put_payload(artifact.fingerprint, artifact.to_payload())

    def replay(
        self,
        driver: WorkloadDriver,
        design: CrossbarDesign,
        max_cycles: Optional[int] = None,
        label: str = "",
    ) -> ReplayArtifact:
        """Simulate a workload on a candidate fabric, as a cached stage.

        Any :class:`~repro.platform.drivers.WorkloadDriver` replays:
        program-driven applications and trace-driven recorded workloads
        take the same path and share the same store. Content-addressed
        replays persist through the disk layer; unkeyed workloads are
        simulated but never cached.
        """
        budget = int(max_cycles or driver.sim_cycles)
        fingerprint = self.replay_fingerprint(driver, design, budget)
        if fingerprint is not None:
            cached = self.lookup_replay(fingerprint)
            if cached is not None:
                return cached
        self.counters.record_computed("replay")
        artifact = _timed_stage(
            "replay",
            fingerprint or "",
            lambda: _run_replay(
                driver, design, budget, fingerprint or "", label
            ),
        )
        if fingerprint is not None:
            self.store.put(fingerprint, artifact)
            self.store.put_payload(fingerprint, artifact.to_payload())
        return artifact


def _run_replay(
    driver: WorkloadDriver,
    design: CrossbarDesign,
    budget: int,
    fingerprint: str,
    label: str = "",
) -> ReplayArtifact:
    """Execute one replay simulation and distill the artifact."""
    result = simulate_workload(
        driver, design.it.as_list(), design.ti.as_list(), budget
    )
    return ReplayArtifact(
        stats=result.latency_stats(),
        critical_stats=result.latency_stats(critical_only=True),
        finished=result.finished,
        num_transactions=len(result.trace),
        simulated_cycles=result.simulated_cycles,
        fingerprint=fingerprint,
        label=label or driver.label,
    )


def _window_arrays(artifact: WindowedAnalysis) -> Dict[str, np.ndarray]:
    """Encode a windowed analysis as plain tensors for the npz sidecar."""
    problem = artifact.problem
    pairs = np.asarray(
        problem.criticality.conflicting_pairs, dtype=np.int64
    ).reshape(-1, 2)
    return {
        "comm": np.asarray(problem.comm, dtype=np.int64),
        "wo": np.asarray(problem.wo, dtype=np.int64),
        "capacities": np.asarray(problem.capacities, dtype=np.int64),
        "window_size": np.asarray([problem.window_size], dtype=np.int64),
        "mirrored": np.asarray([int(artifact.mirrored)], dtype=np.int64),
        "critical_targets": np.asarray(
            problem.criticality.critical_targets, dtype=np.int64
        ),
        "conflicting_pairs": pairs,
        "target_names": np.asarray(problem.target_names, dtype=np.str_),
    }


def _window_from_arrays(
    arrays: Dict[str, np.ndarray], fingerprint: str, mirrored: bool
) -> Optional[WindowedAnalysis]:
    """Rebuild a windowed analysis from a sidecar, or ``None`` when the
    arrays are malformed or belong to the other crossbar side."""
    try:
        if int(arrays["mirrored"][0]) != int(mirrored):
            return None
        criticality = CriticalityReport(
            critical_targets=tuple(
                int(target) for target in arrays["critical_targets"]
            ),
            conflicting_pairs=tuple(
                (int(i), int(j))
                for i, j in np.asarray(arrays["conflicting_pairs"]).reshape(
                    -1, 2
                )
            ),
        )
        problem = CrossbarDesignProblem(
            comm=np.asarray(arrays["comm"], dtype=np.int64),
            wo=np.asarray(arrays["wo"], dtype=np.int64),
            window_size=int(arrays["window_size"][0]),
            criticality=criticality,
            target_names=tuple(str(name) for name in arrays["target_names"]),
            capacities=np.asarray(arrays["capacities"], dtype=np.int64),
        )
    except (KeyError, IndexError, TypeError, ValueError, SynthesisError):
        return None
    return WindowedAnalysis(
        problem=problem, mirrored=mirrored, fingerprint=fingerprint
    )


_SHARED_RUNNER: Optional[PipelineRunner] = None


def shared_runner() -> PipelineRunner:
    """The process-global analysis-stage runner (see module docstring).

    Bindings are not memoized here -- a solve requested without an
    explicit store is a solve performed, which keeps solver-level
    instrumentation and benchmarks meaningful -- and traces are not
    retained, so the global store holds only derived window/conflict
    artifacts under its LRU bound.
    """
    global _SHARED_RUNNER
    if _SHARED_RUNNER is None:
        _SHARED_RUNNER = PipelineRunner(
            store=ArtifactStore(max_memory_entries=64),
            memoize_bindings=False,
            retain_traces=False,
        )
    return _SHARED_RUNNER


def reset_shared_runner() -> None:
    """Drop the process-global runner (tests use this for isolation)."""
    global _SHARED_RUNNER
    _SHARED_RUNNER = None


def describe_stages(design: PipelineDesign) -> List[Tuple[str, str, str]]:
    """(stage, fingerprint, summary) rows for ``repro pipeline inspect``."""
    collected = design.collected
    rows: List[Tuple[str, str, str]] = [
        (
            "collect",
            collected.fingerprint,
            f"{len(collected.trace)} records, "
            f"{collected.trace.total_cycles} cycles",
        )
    ]
    for side_name, side in (("it", design.it), ("ti", design.ti)):
        rows.append(
            (
                f"window[{side_name}]",
                side.windowed.fingerprint,
                side.windowed.describe(),
            )
        )
        rows.append(
            (
                f"conflicts[{side_name}]",
                side.conflicts.fingerprint,
                side.conflicts.describe(),
            )
        )
        rows.append(
            (
                f"bind[{side_name}]",
                side.binding.fingerprint,
                side.binding.describe(),
            )
        )
    rows.append(
        (
            "design",
            design.fingerprint,
            f"{design.design.it.num_buses} IT + "
            f"{design.design.ti.num_buses} TI buses",
        )
    )
    return rows
