"""The generalized per-stage artifact store.

Where :class:`repro.exec.cache.ResultCache` maps whole synthesis points
to :class:`~repro.exec.serialize.SynthesisResult` records, the
:class:`ArtifactStore` holds *stage* outputs keyed by their
content-addressed fingerprints:

* an **in-memory layer** -- an LRU map from fingerprint to the live
  artifact object (problems, conflict matrices, bindings). This is what
  makes a window-size sweep share one traffic-collection artifact
  across points, and an edited scenario suite reuse the unchanged
  scenarios' analyses.
* an optional **disk layer** -- JSON-serializable stages (today the
  search/binding stage) additionally persist through a
  :class:`ResultCache`, so solved bindings survive across processes and
  sessions. Entries are keyed ``stage-<fingerprint-prefix>`` and live in
  the same cache directory as whole-result entries (one ``prune`` /
  ``usage`` covers both).

Every lookup and store is tallied per stage in :class:`StageCounters`;
the counters are what the incremental-resynthesis tests assert on and
what ``repro scenarios run --explain-cache`` prints.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import zipfile
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.exec.cache import ResultCache
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.pipeline import shm as _shm

__all__ = [
    "StageCounters",
    "ArtifactStore",
    "STAGE_ENTRY_FORMAT",
    "WARM_HINT_FORMAT",
]

STAGE_ENTRY_FORMAT = "repro-stage-artifact-v1"

WARM_HINT_FORMAT = "repro-warm-hint-v1"

_WARM_MEMORY_SLOTS = 256
"""Warm-start hints kept in memory per store. Hints are tiny (one int
per target) so the bound is generous; it exists to keep a pathological
sweep from growing the map without limit."""

_STAGE_EVENTS = _metrics.counter(
    "repro_stage_events_total",
    "Pipeline stage outcomes (computed vs memo/disk cache hits).",
    ("stage", "kind"),
)

_DEFAULT_MEMORY_SLOTS = 128
"""In-memory artifacts kept per store before LRU eviction. Sized for the
largest realistic sweep (tens of points, a handful of artifacts each)
while bounding the tensor-heavy window artifacts a long session creates."""


class StageCounters:
    """Per-stage execution/caching tallies.

    ``computed[stage]`` counts real stage executions, ``memo_hits`` the
    in-memory reuses, ``disk_hits`` the persistent-store reuses, and
    ``shm_hits`` the reuses served by the shared stage plane
    (:mod:`repro.pipeline.shm` -- another thread's or process's
    artifact, resolved zero-copy). The sum of the four is the number of
    times the stage's output was needed.

    Counters double as the pipeline's *progress feed*: observers
    registered with :meth:`subscribe` are called synchronously on every
    tally -- ``observer(kind, stage)`` with ``kind`` one of
    ``"computed"``/``"memo_hit"``/``"disk_hit"``/``"shm_hit"`` -- which is how the
    ``repro serve`` job registry streams per-stage progress to pollers
    while a solve is still running. Tallies and snapshots are
    lock-protected, so one runner may be driven and observed from
    different threads.
    """

    def __init__(self) -> None:
        self.computed: Dict[str, int] = {}
        self.memo_hits: Dict[str, int] = {}
        self.disk_hits: Dict[str, int] = {}
        self.shm_hits: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._observers: List[Callable[[str, str], None]] = []

    def subscribe(self, observer: Callable[[str, str], None]) -> None:
        """Call ``observer(kind, stage)`` on every recorded tally.

        Observers run synchronously on the recording thread; they must
        be cheap and must not drive the pipeline themselves.
        """
        self._observers.append(observer)

    def unsubscribe(self, observer: Callable[[str, str], None]) -> None:
        """Remove a previously subscribed observer."""
        self._observers.remove(observer)

    def _bump(self, table: Dict[str, int], kind: str, stage: str) -> None:
        with self._lock:
            table[stage] = table.get(stage, 0) + 1
        # Registry mirror: process-global, monotonic, never reset by
        # per-run snapshots/deltas -- the /metrics view of stage work.
        _STAGE_EVENTS.inc(stage=stage, kind=kind)
        for observer in list(self._observers):
            observer(kind, stage)

    def record_computed(self, stage: str) -> None:
        self._bump(self.computed, "computed", stage)

    def record_memo_hit(self, stage: str) -> None:
        self._bump(self.memo_hits, "memo_hit", stage)

    def record_disk_hit(self, stage: str) -> None:
        self._bump(self.disk_hits, "disk_hit", stage)

    def record_shm_hit(self, stage: str) -> None:
        self._bump(self.shm_hits, "shm_hit", stage)

    def reset(self) -> None:
        with self._lock:
            self.computed.clear()
            self.memo_hits.clear()
            self.disk_hits.clear()
            self.shm_hits.clear()

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """A consistent copy of the tallies (for deltas around one run,
        and for progress polling from another thread)."""
        with self._lock:
            return {
                "computed": dict(self.computed),
                "memo_hits": dict(self.memo_hits),
                "disk_hits": dict(self.disk_hits),
                "shm_hits": dict(self.shm_hits),
            }

    def stages(self) -> List[str]:
        """Every stage name seen so far, sorted."""
        with self._lock:
            names = (
                set(self.computed)
                | set(self.memo_hits)
                | set(self.disk_hits)
                | set(self.shm_hits)
            )
        return sorted(names)

    def breakdown(self) -> str:
        """Human-readable per-stage hit/miss table."""
        return self.format_tables(self.snapshot())

    @staticmethod
    def delta(
        before: Dict[str, Dict[str, int]], after: Dict[str, Dict[str, int]]
    ) -> Dict[str, Dict[str, int]]:
        """Per-stage tallies accumulated between two snapshots."""
        out: Dict[str, Dict[str, int]] = {}
        for table in ("computed", "memo_hits", "disk_hits", "shm_hits"):
            diffs = {
                stage: count - before.get(table, {}).get(stage, 0)
                for stage, count in after.get(table, {}).items()
            }
            out[table] = {k: v for k, v in diffs.items() if v}
        return out

    @staticmethod
    def format_tables(tables: Dict[str, Dict[str, int]]) -> str:
        """Render snapshot/delta tables as the ``--explain-cache`` view."""
        names = sorted(
            set().union(*(tables.get(t, {}) for t in tables)) if tables else ()
        )
        lines = [
            "stage                     computed  memo-hit  disk-hit   shm-hit"
        ]
        for stage in names:
            lines.append(
                f"{stage:<25} "
                f"{tables.get('computed', {}).get(stage, 0):>8} "
                f"{tables.get('memo_hits', {}).get(stage, 0):>9} "
                f"{tables.get('disk_hits', {}).get(stage, 0):>9} "
                f"{tables.get('shm_hits', {}).get(stage, 0):>9}"
            )
        if len(lines) == 1:
            lines.append("(no stage executions recorded)")
        return "\n".join(lines)


class ArtifactStore:
    """Fingerprint-addressed store for pipeline stage artifacts.

    Parameters
    ----------
    disk:
        Optional persistent layer for JSON-serializable stages. Stage
        entries get their own :class:`ResultCache` *instance* so their
        hit/miss accounting never pollutes the whole-result statistics
        callers observe on the engine's cache.
    max_memory_entries:
        LRU bound of the in-memory layer.
    """

    def __init__(
        self,
        disk: Optional[ResultCache] = None,
        max_memory_entries: int = _DEFAULT_MEMORY_SLOTS,
    ) -> None:
        if max_memory_entries < 1:
            raise ValueError("max_memory_entries must be >= 1")
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self._warm: "OrderedDict[str, List[int]]" = OrderedDict()
        self.max_memory_entries = max_memory_entries
        self.disk = disk
        self.counters = StageCounters()
        # The LRU's mutate-and-reorder operations are not atomic on
        # their own; the lock makes one store shareable across server
        # job threads (and keeps the process-global shared runner safe).
        self._memory_lock = threading.RLock()

    # -- in-memory layer ----------------------------------------------

    def get(self, fingerprint: str) -> Optional[Any]:
        """The live artifact for ``fingerprint``, or ``None``."""
        with self._memory_lock:
            artifact = self._memory.get(fingerprint)
            if artifact is not None:
                self._memory.move_to_end(fingerprint)
            return artifact

    def put(self, fingerprint: str, artifact: Any) -> None:
        """Keep ``artifact`` in the in-memory layer (LRU-bounded)."""
        with self._memory_lock:
            self._memory[fingerprint] = artifact
            self._memory.move_to_end(fingerprint)
            while len(self._memory) > self.max_memory_entries:
                self._memory.popitem(last=False)

    def reserve(self, entries: int) -> None:
        """Grow the LRU bound to at least ``entries`` (never shrinks).

        Callers that know their working set -- e.g. the suite runner,
        whose incremental guarantee dies silently if one run's artifacts
        exceed the bound -- size the store before filling it.
        """
        with self._memory_lock:
            if entries > self.max_memory_entries:
                self.max_memory_entries = entries

    def __contains__(self, fingerprint: str) -> bool:
        with self._memory_lock:
            return fingerprint in self._memory

    def __len__(self) -> int:
        with self._memory_lock:
            return len(self._memory)

    def clear_memory(self) -> None:
        with self._memory_lock:
            self._memory.clear()

    # -- disk layer ---------------------------------------------------

    @staticmethod
    def _disk_key(fingerprint: str) -> str:
        # Prefixed so stage entries are recognizable next to whole-result
        # entries sharing the directory; the fingerprint is already a
        # collision-resistant content hash.
        return f"stage-{fingerprint}"

    def get_payload(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The persisted payload for ``fingerprint``, or ``None``."""
        if self.disk is None:
            return None
        entry = self.disk.get_json(self._disk_key(fingerprint))
        if entry is None or entry.get("format") != STAGE_ENTRY_FORMAT:
            return None
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def put_payload(self, fingerprint: str, payload: Dict[str, Any]) -> None:
        """Persist ``payload`` under ``fingerprint`` (no-op without disk)."""
        if self.disk is None:
            return
        self.disk.put_json(
            self._disk_key(fingerprint),
            {"format": STAGE_ENTRY_FORMAT, "payload": payload},
        )

    # -- warm-start hints ---------------------------------------------

    def get_warm(self, key: str) -> Optional[List[int]]:
        """The last binding solved under warm-hint slot ``key``.

        Checks the in-memory map first, then the disk layer (entries
        keyed ``warm-<key>``). Hints are advisory -- the solver
        re-validates them -- so a malformed or missing entry is simply
        a miss.
        """
        with self._memory_lock:
            hint = self._warm.get(key)
            if hint is not None:
                self._warm.move_to_end(key)
                return list(hint)
        if self.disk is None:
            return None
        entry = self.disk.get_json(f"warm-{key}")
        if entry is None or entry.get("format") != WARM_HINT_FORMAT:
            return None
        binding = entry.get("binding")
        if not isinstance(binding, list) or not all(
            isinstance(bus, int) for bus in binding
        ):
            return None
        with self._memory_lock:
            self._warm[key] = list(binding)
            self._warm.move_to_end(key)
        return list(binding)

    def put_warm(self, key: str, binding) -> None:
        """Record ``binding`` as the warm-start hint for slot ``key``.

        Unlike artifacts, hints overwrite: the slot always holds the
        most recent solve's answer, which is the best available guess
        for the next similar problem.
        """
        hint = [int(bus) for bus in binding]
        with self._memory_lock:
            self._warm[key] = hint
            self._warm.move_to_end(key)
            while len(self._warm) > _WARM_MEMORY_SLOTS:
                self._warm.popitem(last=False)
        if self.disk is not None:
            self.disk.put_json(
                f"warm-{key}", {"format": WARM_HINT_FORMAT, "binding": hint}
            )

    # -- tensor sidecars ----------------------------------------------
    #
    # Two tiers per fingerprint:
    #
    # * ``stage-<fp>.npz``  -- compressed, portable, the cold tier.
    # * ``stage-<fp>.mmap/`` -- a directory of raw ``.npy`` members,
    #   opened with ``np.load(mmap_mode="r")`` so the OS page cache
    #   holds ONE physical copy of the tensors however many processes
    #   on the box read them (the hot tier; note ``mmap_mode`` is
    #   silently ignored for ``.npz`` members, hence the split files).
    #
    # Reads prefer the hot tier and promote the cold tier on first hit;
    # writes land both. Either tier degrades independently to a miss.

    def _sidecar_path(self, fingerprint: str):
        return self.disk.cache_dir / f"{self._disk_key(fingerprint)}.npz"

    def _mmap_path(self, fingerprint: str):
        return self.disk.cache_dir / f"{self._disk_key(fingerprint)}.mmap"

    def _get_arrays_mmap(
        self, fingerprint: str
    ) -> Optional[Dict[str, np.ndarray]]:
        """Memory-mapped views of the uncompressed sidecar members, or
        ``None``. A torn member drops the whole directory so the
        compressed tier heals it on the next read."""
        path = self._mmap_path(fingerprint)
        try:
            members = sorted(path.glob("*.npy"))
        except OSError:  # pragma: no cover - unreadable cache dir
            return None
        if not members:
            return None
        arrays: Dict[str, np.ndarray] = {}
        try:
            for member in members:
                arrays[member.stem] = np.load(
                    member, mmap_mode="r", allow_pickle=False
                )
        except (OSError, ValueError, EOFError):
            shutil.rmtree(path, ignore_errors=True)
            return None
        try:
            os.utime(path)  # keep LRU pruning honest on hot-tier hits
        except OSError:  # pragma: no cover - best-effort bookkeeping
            pass
        return arrays

    def _put_arrays_mmap(
        self, fingerprint: str, arrays: Mapping[str, np.ndarray]
    ) -> bool:
        """Write the uncompressed tier atomically (tmp dir + rename);
        best-effort like every persistence path here."""
        path = self._mmap_path(fingerprint)
        if path.is_dir():
            return True
        try:
            self.disk.cache_dir.mkdir(parents=True, exist_ok=True)
            tmp = tempfile.mkdtemp(
                dir=self.disk.cache_dir, prefix=".tmp-", suffix=".mmap"
            )
        except OSError:
            return False
        try:
            for name, array in arrays.items():
                np.save(
                    os.path.join(tmp, f"{name}.npy"),
                    np.ascontiguousarray(array),
                    allow_pickle=False,
                )
            os.rename(tmp, path)
        except OSError:
            # Includes losing the rename race to a concurrent writer
            # (ENOTEMPTY): their copy of the same content wins.
            shutil.rmtree(tmp, ignore_errors=True)
            return path.is_dir()
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        return True

    def get_arrays(self, fingerprint: str) -> Optional[Dict[str, np.ndarray]]:
        """The persisted tensor sidecar for ``fingerprint`` -- hot mmap
        tier first, compressed tier as fallback -- or ``None``.

        Tensor-heavy stages (the windowed ``comm``/``wo`` analysis)
        persist as NumPy sidecars next to the JSON entries: far denser
        than JSON and loadable without rebuilding the trace. A hit on
        the compressed tier promotes it to the mmap tier and serves the
        mapped views, so subsequent readers across the whole box share
        pages. Unreadable or truncated sidecars degrade to misses,
        exactly like corrupt JSON entries.
        """
        if self.disk is None:
            return None
        if _shm.enabled():
            arrays = self._get_arrays_mmap(fingerprint)
            if arrays is not None:
                _shm.record_event("mmap_hit")
                return arrays
        path = self._sidecar_path(fingerprint)
        try:
            with np.load(path, allow_pickle=False) as data:
                arrays = {name: data[name] for name in data.files}
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
            # Corrupt sidecar: recompute and overwrite. BadZipFile is
            # what a truncated ``.npz`` (a torn write, a full disk)
            # actually raises -- it is not an OSError. Drop the bad
            # file here: ``put_arrays`` skips existing sidecars, so a
            # corrupt one must not shadow the rewrite.
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        try:
            os.utime(path)  # keep LRU pruning honest on sidecar hits
        except OSError:  # pragma: no cover - best-effort bookkeeping
            pass
        if _shm.enabled():
            with _tracing.span("shm.promote", fingerprint=fingerprint[:12]):
                promoted = self._put_arrays_mmap(fingerprint, arrays)
            if promoted:
                _shm.record_event("promote")
                mapped = self._get_arrays_mmap(fingerprint)
                if mapped is not None:
                    return mapped
        return arrays

    def put_arrays(
        self, fingerprint: str, arrays: Mapping[str, np.ndarray]
    ) -> None:
        """Persist tensors as sidecars atomically (no-op without a disk
        layer): the compressed ``.npz`` always, plus the uncompressed
        mmap tier when the shared plane is enabled.

        Sidecars are content-addressed, so when the compressed entry
        already exists the serialize/compress work is skipped entirely
        (its mtime refreshes, and a missing hot tier is backfilled) --
        warm suite re-runs stop paying ``np.savez_compressed`` for
        entries already on disk.

        Like :meth:`ResultCache.put_json`, the write is best-effort: a
        failing disk loses the sidecar (the stage recomputes next time),
        never the in-memory artifact or the run that produced it.
        """
        if self.disk is None:
            return
        path = self._sidecar_path(fingerprint)
        if path.exists():
            try:
                os.utime(path)
            except OSError:  # pragma: no cover - best-effort bookkeeping
                pass
            if _shm.enabled():
                self._put_arrays_mmap(fingerprint, arrays)
            return
        try:
            self.disk.cache_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.disk.cache_dir, prefix=".tmp-", suffix=".npz"
            )
        except OSError:
            return
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **arrays)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if _shm.enabled():
            self._put_arrays_mmap(fingerprint, arrays)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        disk = self.disk.cache_dir if self.disk is not None else None
        return f"<ArtifactStore memory={len(self._memory)} disk={disk}>"
