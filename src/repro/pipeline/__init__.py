"""The staged synthesis pipeline (paper Fig. 3 as a first-class object).

Historically every front end -- :class:`~repro.core.synthesis.CrossbarSynthesizer`,
the :class:`~repro.exec.engine.ExecutionEngine` sweeps/batches, the
scenario suite runner and the analysis sweep helpers -- re-drove the
collect/window/conflict/bind flow monolithically, and caching existed
only at whole-result granularity. This package factors the flow into
typed stage artifacts with content-addressed fingerprints
(:mod:`~repro.pipeline.artifacts`), a generalized per-stage artifact
store (:mod:`~repro.pipeline.store`) and one
:class:`~repro.pipeline.runner.PipelineRunner` every front end drives,
so intermediate artifacts are reused wherever their fingerprints match:
across the points of a sweep, across the scenarios of a suite, and
across edits of a suite (incremental re-synthesis).
"""

from repro.pipeline.artifacts import (
    STAGE_SCHEMA_VERSION,
    BindingArtifact,
    CollectedTraffic,
    ConflictArtifact,
    ReplayArtifact,
    WindowedAnalysis,
    stage_fingerprint,
)
from repro.pipeline.runner import (
    PipelineDesign,
    PipelineRunner,
    SideArtifacts,
    describe_stages,
    reset_shared_runner,
    shared_runner,
)
from repro.pipeline.store import ArtifactStore, StageCounters

__all__ = [
    "STAGE_SCHEMA_VERSION",
    "CollectedTraffic",
    "WindowedAnalysis",
    "ConflictArtifact",
    "BindingArtifact",
    "ReplayArtifact",
    "stage_fingerprint",
    "PipelineRunner",
    "PipelineDesign",
    "SideArtifacts",
    "shared_runner",
    "reset_shared_runner",
    "describe_stages",
    "ArtifactStore",
    "StageCounters",
]
