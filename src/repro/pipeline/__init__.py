"""The staged synthesis pipeline (paper Fig. 3 as a first-class object).

Historically every front end -- :class:`~repro.core.synthesis.CrossbarSynthesizer`,
the :class:`~repro.exec.engine.ExecutionEngine` sweeps/batches, the
scenario suite runner and the analysis sweep helpers -- re-drove the
collect/window/conflict/bind flow monolithically, and caching existed
only at whole-result granularity. This package factors the flow into
typed stage artifacts with content-addressed fingerprints
(:mod:`~repro.pipeline.artifacts`), a generalized per-stage artifact
store (:mod:`~repro.pipeline.store`) and one
:class:`~repro.pipeline.runner.PipelineRunner` every front end drives,
so intermediate artifacts are reused wherever their fingerprints match:
across the points of a sweep, across the scenarios of a suite, and
across edits of a suite (incremental re-synthesis).

Contracts
---------
* **Content addressing.** Every stage output's fingerprint is a
  SHA-256 over its upstream artifacts' fingerprints plus *only* the
  configuration fields that stage reads (schema-versioned via
  :data:`STAGE_SCHEMA_VERSION`). Fingerprints are derivable without
  executing (:meth:`~repro.pipeline.runner.PipelineRunner.design_fingerprint`),
  which is what lets the ``repro serve`` daemon content-address a
  request before committing solver work.
* **Caching.** Live artifacts memoize in the
  :class:`~repro.pipeline.store.ArtifactStore`'s LRU; JSON-serializable
  stages (bindings, replays) and windowed tensors (``.npz`` sidecars)
  additionally persist through a
  :class:`~repro.exec.cache.ResultCache` directory shared with
  whole-result entries. A stale hit is impossible: any input change
  changes the fingerprint.
* **Determinism.** Stages are pure functions of their fingerprinted
  inputs. A warm rerun reproduces a cold run byte for byte, and the
  store may be driven from multiple threads (tallies and LRU
  operations are lock-protected).
"""

from repro.pipeline.artifacts import (
    STAGE_SCHEMA_VERSION,
    BindingArtifact,
    CollectedTraffic,
    ConflictArtifact,
    ReplayArtifact,
    WindowedAnalysis,
    stage_fingerprint,
)
from repro.pipeline.runner import (
    PipelineDesign,
    PipelineRunner,
    SideArtifacts,
    describe_stages,
    reset_shared_runner,
    shared_runner,
)
from repro.pipeline.store import ArtifactStore, StageCounters

__all__ = [
    "STAGE_SCHEMA_VERSION",
    "CollectedTraffic",
    "WindowedAnalysis",
    "ConflictArtifact",
    "BindingArtifact",
    "ReplayArtifact",
    "stage_fingerprint",
    "PipelineRunner",
    "PipelineDesign",
    "SideArtifacts",
    "shared_runner",
    "reset_shared_runner",
    "describe_stages",
    "ArtifactStore",
    "StageCounters",
]
