"""The zero-copy shared stage plane for windowed tensors.

Window stages dominate warm synthesis cost, and every execution context
used to pay them separately: each pool worker re-memoized windowing in
its own :func:`~repro.pipeline.runner.shared_runner`, and each ``repro
serve`` job thread rebuilt the same tensors through its own
:class:`~repro.pipeline.store.ArtifactStore`. This module makes a
windowed analysis computed *anywhere* in the process tree visible
*everywhere*, without copying tensor bytes:

* an **offers registry** -- a process-local, LRU-bounded map from stage
  fingerprint to the live artifact. Server job threads (and fork
  workers, which inherit it copy-on-write) resolve window stages from
  here at pointer cost.
* a **segment plane** -- before pool fan-out the parent packs offered
  tensors into :class:`multiprocessing.shared_memory.SharedMemory`
  segments and exports a manifest through the ``REPRO_SHM`` environment
  variable (mirroring ``REPRO_TRACE``/``REPRO_FAULTS``, so fork *and*
  spawn workers inherit it). Workers attach read-only ``np.ndarray``
  views over the segment buffer: one physical copy of the tensors per
  box, however many workers map it.

Failure discipline: every attach/parse problem -- missing segment, torn
manifest, truncated member, a platform without ``/dev/shm`` -- records a
``fallback`` event and degrades to the next tier (disk sidecar, then
recompute). The plane is an accelerator, never a correctness layer;
reports must be byte-identical with it enabled, disabled, or mid-fall
back, which is what the chaos suite asserts.

Lifecycle rules that keep this crash-safe:

* Segments are refcounted across in-flight fan-outs and unlinked by the
  creating process only (``atexit`` + pid guard, so fork children never
  reap the parent's plane).
* Workers never ``close()`` an attached segment while the process
  lives: numpy views into the buffer would be left dangling (SIGBUS).
  Attachments are cached for process lifetime; the OS reclaims the
  mappings at exit.
* Attaching registers the segment with the resource tracker on CPython
  < 3.13 as if the worker owned it (bpo-39959). Attachments use
  ``track=False`` where available; on older Pythons the stray
  registration is tolerated instead of unregistered -- workers are
  always descendants of the publisher, so they share its tracker
  daemon, which dedupes by name, and unregistering would strip the
  owner's own registration.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from collections import Counter, OrderedDict
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing

__all__ = [
    "SHM_ENV_VAR",
    "SHM_DISABLE_ENV_VAR",
    "enabled",
    "set_enabled",
    "record_event",
    "offer",
    "lookup_artifact",
    "lookup_arrays",
    "attach_from_env",
    "propagate_plane",
    "plane_summary",
    "reset_plane",
]

SHM_ENV_VAR = "REPRO_SHM"
"""Environment handshake carrying the segment manifest to workers."""

SHM_DISABLE_ENV_VAR = "REPRO_SHM_DISABLE"
"""Set to ``1`` (by ``--no-shm``) to turn the whole plane off; exported
so pool workers of every start method inherit the decision."""

_OFFER_SLOTS = 32
"""Live window artifacts the registry pins. Window artifacts are the
only tensors offered and a sweep touches a handful of distinct specs;
the bound exists so a long-lived server cannot grow the plane without
limit."""

_SEGMENT_SLOTS = 16
"""Shared-memory segments kept published at once (LRU). Eviction dooms
a segment still referenced by an in-flight fan-out; it is destroyed
when the last fan-out releases it."""

_MAX_SEGMENT_BYTES = 256 * 1024 * 1024
"""Per-segment ceiling. Anything larger is better served by the mmap
sidecar tier, where the page cache pays only for the pages touched."""

_ALIGN = 64

_SHM_EVENTS = _metrics.counter(
    "repro_shm_events_total",
    "Shared stage plane outcomes (publish/attach/hits/fallback/promote).",
    ("event",),
)


class _Offer:
    __slots__ = ("artifact", "encode")

    def __init__(
        self, artifact: Any, encode: Callable[[], Mapping[str, np.ndarray]]
    ) -> None:
        self.artifact = artifact
        self.encode = encode


class _Segment:
    __slots__ = ("shm", "entry", "nbytes", "refs", "doomed")

    def __init__(
        self, shm: shared_memory.SharedMemory, entry: Dict[str, Any],
        nbytes: int,
    ) -> None:
        self.shm = shm
        self.entry = entry
        self.nbytes = nbytes
        self.refs = 0
        self.doomed = False


_LOCK = threading.RLock()
_ENABLED: Optional[bool] = None
_TALLY: "Counter[str]" = Counter()

# publisher side (the process that computed the tensors)
_OFFERS: "OrderedDict[str, _Offer]" = OrderedDict()
_SEGMENTS: "OrderedDict[str, _Segment]" = OrderedDict()
_OWNER_PID: Optional[int] = None
_SEGMENTS_BROKEN = False

# attacher side (pool workers; pid-guarded so fork children re-resolve)
_ATTACHED: Dict[str, Optional[shared_memory.SharedMemory]] = {}
_MANIFEST: Optional[Dict[str, Any]] = None
_MANIFEST_RAW: Optional[str] = None
_MANIFEST_PID: Optional[int] = None


def enabled() -> bool:
    """Whether the plane participates in lookups (lazily resolved from
    the environment, so spawn workers follow the parent's decision)."""
    global _ENABLED
    with _LOCK:
        if _ENABLED is None:
            _ENABLED = os.environ.get(SHM_DISABLE_ENV_VAR) != "1"
        return _ENABLED


def set_enabled(flag: bool, export_env: bool = True) -> None:
    """Turn the plane on or off; with ``export_env`` the decision is
    mirrored into :data:`SHM_DISABLE_ENV_VAR` so pool workers of either
    start method inherit it (the ``--no-shm`` wiring)."""
    global _ENABLED
    with _LOCK:
        _ENABLED = bool(flag)
    if export_env:
        if flag:
            os.environ.pop(SHM_DISABLE_ENV_VAR, None)
        else:
            os.environ[SHM_DISABLE_ENV_VAR] = "1"


def record_event(event: str) -> None:
    """Tally one plane event into ``repro_shm_events_total`` (and the
    local summary the server's ``/v1/stats`` exposes)."""
    _SHM_EVENTS.inc(event=event)
    with _LOCK:
        _TALLY[event] += 1


# -- publisher side ----------------------------------------------------


def offer(
    fingerprint: str,
    artifact: Any,
    encode: Callable[[], Mapping[str, np.ndarray]],
) -> None:
    """Register a live artifact with the plane.

    ``encode`` produces the plain-tensor form on demand -- it is only
    called if a fan-out actually publishes the segment, so offering is
    pointer-cheap on hot paths.
    """
    if not enabled():
        return
    with _LOCK:
        fresh = fingerprint not in _OFFERS
        _OFFERS[fingerprint] = _Offer(artifact, encode)
        _OFFERS.move_to_end(fingerprint)
        while len(_OFFERS) > _OFFER_SLOTS:
            _OFFERS.popitem(last=False)
    if fresh:
        record_event("offer")


def lookup_artifact(fingerprint: str) -> Optional[Any]:
    """The live offered artifact for ``fingerprint``, or ``None``.

    This is the cross-thread (server jobs) and fork-inheritance path:
    the artifact object itself is shared, so the hit is zero-copy by
    construction. Callers must treat it as immutable.
    """
    if not enabled():
        return None
    with _LOCK:
        entry = _OFFERS.get(fingerprint)
        if entry is None:
            return None
        _OFFERS.move_to_end(fingerprint)
        artifact = entry.artifact
    record_event("local_hit")
    return artifact


def _publish_segment(arrays: Mapping[str, np.ndarray]) -> Optional[_Segment]:
    """Pack ``arrays`` into one shared-memory segment; ``None`` when the
    payload exceeds the per-segment ceiling. Raises ``OSError`` where
    the platform cannot provide shared memory."""
    specs: List[Dict[str, Any]] = []
    payload = []
    offset = 0
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        offset = -(-offset // _ALIGN) * _ALIGN
        specs.append(
            {
                "name": name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
            }
        )
        payload.append((arr, offset))
        offset += arr.nbytes
    nbytes = max(offset, 1)
    if nbytes > _MAX_SEGMENT_BYTES:
        return None
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    for arr, off in payload:
        if arr.nbytes == 0:
            continue
        view = np.ndarray(
            arr.shape, dtype=arr.dtype, buffer=segment.buf, offset=off
        )
        view[...] = arr
        del view
    return _Segment(
        shm=segment,
        entry={"name": segment.name, "arrays": specs},
        nbytes=nbytes,
    )


def _destroy_segment(segment: _Segment) -> None:
    try:
        segment.shm.close()
    except (OSError, BufferError):  # pragma: no cover - platform paths
        pass
    try:
        segment.shm.unlink()
    except (OSError, FileNotFoundError):  # pragma: no cover
        pass


def _evict_segments_locked() -> None:
    while len(_SEGMENTS) > _SEGMENT_SLOTS:
        _fp, segment = _SEGMENTS.popitem(last=False)
        record_event("evict")
        if segment.refs > 0:
            segment.doomed = True  # reaped when its fan-out releases it
        else:
            _destroy_segment(segment)


@contextmanager
def propagate_plane():
    """Publish the current offers as shared-memory segments and export
    the manifest through ``REPRO_SHM`` for the duration of a fan-out
    (the ``multiprocessing`` analogue of
    :func:`repro.obs.tracing.propagate_context` -- wrap pool fan-outs
    in both).

    Segments persist across fan-outs (publishing is idempotent per
    fingerprint); the environment manifest is scoped to the block and
    the previous value restored, and each published segment is
    refcounted so LRU eviction can never unlink a segment a live worker
    may still attach.
    """
    global _OWNER_PID, _SEGMENTS_BROKEN
    if not enabled():
        yield
        return
    published: List[_Segment] = []
    manifest: Dict[str, Any] = {}
    with _LOCK:
        for fingerprint, entry in list(_OFFERS.items()):
            segment = _SEGMENTS.get(fingerprint)
            if segment is None and not _SEGMENTS_BROKEN:
                try:
                    with _tracing.span(
                        "shm.publish", fingerprint=fingerprint[:12]
                    ):
                        segment = _publish_segment(dict(entry.encode()))
                except (OSError, ValueError, MemoryError):
                    # No /dev/shm, exhausted shm quota, un-encodable
                    # payload: stop trying for this process lifetime.
                    _SEGMENTS_BROKEN = True
                    record_event("fallback")
                    segment = None
                if segment is not None:
                    _OWNER_PID = os.getpid()
                    _SEGMENTS[fingerprint] = segment
                    record_event("publish")
                    _evict_segments_locked()
            if segment is not None and not segment.doomed:
                _SEGMENTS.move_to_end(fingerprint)
                segment.refs += 1
                published.append(segment)
                manifest[fingerprint] = segment.entry
    if not manifest:
        yield
        return
    previous = os.environ.get(SHM_ENV_VAR)
    os.environ[SHM_ENV_VAR] = json.dumps(
        {"version": 1, "segments": manifest}, sort_keys=True
    )
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(SHM_ENV_VAR, None)
        else:
            os.environ[SHM_ENV_VAR] = previous
        with _LOCK:
            for segment in published:
                segment.refs -= 1
                if segment.doomed and segment.refs <= 0:
                    _destroy_segment(segment)


def _cleanup_at_exit() -> None:
    # Only the creating process may unlink: fork children inherit this
    # hook (and the segment table) and must not reap the parent's plane.
    if _OWNER_PID != os.getpid():
        return
    with _LOCK:
        for segment in _SEGMENTS.values():
            _destroy_segment(segment)
        _SEGMENTS.clear()


atexit.register(_cleanup_at_exit)


# -- attacher side -----------------------------------------------------


def _resolve_manifest() -> Optional[Dict[str, Any]]:
    """The fingerprint -> segment manifest from the environment, cached
    per (value, pid) so fork children re-resolve and a torn manifest is
    charged one fallback, not one per lookup."""
    global _MANIFEST, _MANIFEST_RAW, _MANIFEST_PID
    raw = os.environ.get(SHM_ENV_VAR)
    if not raw:
        return None
    with _LOCK:
        if _MANIFEST_RAW == raw and _MANIFEST_PID == os.getpid():
            return _MANIFEST
        _MANIFEST_RAW = raw
        _MANIFEST_PID = os.getpid()
        try:
            segments = json.loads(raw)["segments"]
            if not isinstance(segments, dict):
                raise TypeError("manifest segments must be a mapping")
        except (ValueError, KeyError, TypeError):
            record_event("fallback")
            _MANIFEST = None
        else:
            _MANIFEST = segments
        return _MANIFEST


def _attach_segment(name: str) -> Optional[shared_memory.SharedMemory]:
    """Attach (and cache for process lifetime) one named segment.

    Failures cache as ``None``: a segment the parent already unlinked
    stays a miss without re-probing on every lookup.
    """
    with _LOCK:
        if name in _ATTACHED:
            return _ATTACHED[name]
    try:
        with _tracing.span("shm.attach", segment=name):
            try:
                segment = shared_memory.SharedMemory(name=name, track=False)
            except TypeError:
                # track= is 3.13+; earlier Pythons also register the
                # attach with the resource tracker (bpo-39959). Within
                # this design that is harmless: segments are only ever
                # attached by descendants of the publishing process, so
                # fork and spawn workers alike share the parent's
                # tracker daemon, whose per-name set dedupes the extra
                # registration. Unregistering here would be wrong -- it
                # strips the *owner's* registration from the shared
                # tracker and makes the owner's later unlink complain.
                segment = shared_memory.SharedMemory(name=name)
    except (OSError, ValueError):
        record_event("fallback")
        segment = None
    else:
        record_event("attach")
    with _LOCK:
        _ATTACHED[name] = segment
    return segment


def lookup_arrays(fingerprint: str) -> Optional[Dict[str, np.ndarray]]:
    """Read-only zero-copy views of the published tensors for
    ``fingerprint``, or ``None`` (miss or fallback).

    Views alias the shared segment directly -- no bytes move. The
    creating process answers ``None`` for its own segments (it serves
    in-process lookups from the offers registry; views into its own
    buffer would pin the segment against destruction).
    """
    if not enabled():
        return None
    manifest = _resolve_manifest()
    if manifest is None:
        return None
    entry = manifest.get(fingerprint)
    if entry is None:
        return None
    with _LOCK:
        if _OWNER_PID == os.getpid() and fingerprint in _SEGMENTS:
            return None
    try:
        segment = _attach_segment(entry["name"])
        if segment is None:
            return None
        arrays: Dict[str, np.ndarray] = {}
        for spec in entry["arrays"]:
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(dim) for dim in spec["shape"])
            offset = int(spec["offset"])
            nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
            if offset < 0 or offset + nbytes > segment.size:
                raise ValueError("segment shorter than manifest claims")
            view = np.ndarray(
                shape, dtype=dtype, buffer=segment.buf, offset=offset
            )
            view.flags.writeable = False
            arrays[str(spec["name"])] = view
    except (KeyError, TypeError, ValueError, OSError):
        record_event("fallback")
        return None
    record_event("segment_hit")
    return arrays


def attach_from_env() -> int:
    """Eagerly attach every manifest segment (pool-worker initializer
    probe); returns the number attached. Failures degrade per segment."""
    if not enabled():
        return 0
    manifest = _resolve_manifest()
    if not manifest:
        return 0
    count = 0
    for entry in manifest.values():
        name = entry.get("name") if isinstance(entry, dict) else None
        if isinstance(name, str) and _attach_segment(name) is not None:
            count += 1
    return count


# -- introspection / lifecycle ----------------------------------------


def plane_summary() -> Dict[str, Any]:
    """The plane's state for ``/v1/stats`` and ``--explain-cache``."""
    with _LOCK:
        return {
            "enabled": enabled(),
            "offers": len(_OFFERS),
            "segments": len(_SEGMENTS),
            "segment_bytes": sum(
                segment.nbytes for segment in _SEGMENTS.values()
            ),
            "attached": sum(
                1 for segment in _ATTACHED.values() if segment is not None
            ),
            "events": dict(_TALLY),
        }


def reset_plane() -> None:
    """Drop offers, destroy owned segments, and forget attachments
    (test isolation; also safe between independent benchmark runs)."""
    global _OWNER_PID, _SEGMENTS_BROKEN
    global _MANIFEST, _MANIFEST_RAW, _MANIFEST_PID
    with _LOCK:
        _OFFERS.clear()
        if _OWNER_PID == os.getpid():
            for segment in _SEGMENTS.values():
                if segment.refs > 0:
                    segment.doomed = True
                else:
                    _destroy_segment(segment)
        _SEGMENTS.clear()
        _OWNER_PID = None
        _SEGMENTS_BROKEN = False
        for segment in _ATTACHED.values():
            if segment is not None:
                try:
                    segment.close()
                except (OSError, BufferError):
                    pass  # live views keep the mapping; freed at exit
        _ATTACHED.clear()
        _MANIFEST = None
        _MANIFEST_RAW = None
        _MANIFEST_PID = None
        _TALLY.clear()
