"""Typed per-stage artifacts of the staged synthesis pipeline.

The paper's methodology (Fig. 3) is an explicit staged flow::

    traffic collection -> window segmentation -> conflict pre-processing
        -> binding search -> validation

Each stage's output is wrapped in a small frozen dataclass carrying a
*content-addressed fingerprint*: a SHA-256 over the fingerprints of the
stage's upstream artifacts plus the canonical encoding of exactly the
configuration fields that stage consumes. Two consequences follow:

* equal inputs always produce equal fingerprints, across processes and
  Python versions (the encoding reuses
  :func:`repro.exec.fingerprint.canonical_json`), so artifacts are
  cacheable and shareable;
* a configuration change only invalidates the stages that read the
  changed field -- re-running a threshold sweep re-windows nothing, and
  editing one scenario of a suite re-collects nothing else.

The artifact types mirror the paper's stages one-to-one:

=====================  ==============================================
:class:`CollectedTraffic`   Phase 1 -- the full-crossbar traffic trace
:class:`WindowedAnalysis`   Phase 2 -- one side's windowed design problem
:class:`ConflictArtifact`   Phase 3 -- the conflict matrix
:class:`BindingArtifact`    Phase 4 -- configuration search + binding
:class:`ReplayArtifact`     Phase 4' -- a workload replayed on the design
=====================  ==============================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.core.preprocess import ConflictAnalysis
from repro.core.problem import CrossbarDesignProblem
from repro.core.search import SearchOutcome
from repro.core.spec import BusBinding, CrossbarDesign, SynthesisConfig
from repro.exec.fingerprint import canonical_json, sha256_hex, trace_fingerprint
from repro.platform.metrics import LatencyStats
from repro.traffic.trace import TrafficTrace

__all__ = [
    "STAGE_SCHEMA_VERSION",
    "stage_fingerprint",
    "window_stage_spec",
    "conflict_stage_spec",
    "binding_stage_spec",
    "warm_hint_key",
    "replay_stage_spec",
    "CollectedTraffic",
    "WindowedAnalysis",
    "ConflictArtifact",
    "BindingArtifact",
    "ReplayArtifact",
]

STAGE_SCHEMA_VERSION = 1
"""Bump to invalidate every persisted stage artifact on format changes."""


def stage_fingerprint(stage: str, upstream, spec: Any) -> str:
    """Content hash of one stage execution.

    ``upstream`` is the fingerprint (or fingerprint list) of the
    artifacts the stage consumes; ``spec`` is a JSON-encodable record of
    the configuration fields the stage reads -- *only* those fields, so
    unrelated configuration changes never invalidate the stage.
    """
    payload = {
        "schema": STAGE_SCHEMA_VERSION,
        "stage": stage,
        "upstream": upstream,
        "spec": spec,
    }
    return sha256_hex(canonical_json(payload))


def window_stage_spec(
    config: SynthesisConfig, window_size: int, mirrored: bool
) -> Dict[str, Any]:
    """The configuration slice the window-segmentation stage reads."""
    return {
        "window_size": int(window_size),
        "mirrored": bool(mirrored),
        "variable_windows": config.variable_windows,
        "variable_window_ratio": config.variable_window_ratio,
    }


def conflict_stage_spec(config: SynthesisConfig) -> Dict[str, Any]:
    """The configuration slice the conflict pre-processing stage reads."""
    return {
        "overlap_threshold": config.overlap_threshold,
        "use_criticality": config.use_criticality,
    }


def binding_stage_spec(config: SynthesisConfig) -> Dict[str, Any]:
    """The configuration slice the search/binding stage reads.

    ``milp_backend`` is *deliberately absent*: every MILP backend is
    exact and the binding layer canonicalizes optimal solutions, so the
    artifact content is backend-independent by construction. Keying it
    would split the cache by a knob that cannot change the bytes --
    switching backends (or racing them) must keep reusing the same
    solved bindings.
    """
    return {
        "backend": config.backend,
        "lp_engine": config.lp_engine,
        "max_targets_per_bus": config.max_targets_per_bus,
        "node_limit": config.node_limit,
    }


def warm_hint_key(
    stage: str, problem: CrossbarDesignProblem, config: SynthesisConfig
) -> str:
    """Content key for the binding stage's warm-start hint slot.

    Deliberately *coarser* than the stage fingerprint: it hashes the
    problem's shape (target count, window size) and the binding-stage
    configuration slice, but not the traffic content. An edited suite
    perturbs the traffic -- missing the artifact cache, which is
    correct, the answer may change -- while still hitting this slot, so
    the previous solve's binding seeds the new solve. Hints are
    advisory and re-validated by the solver, which is what makes this
    coarseness safe.
    """
    payload = {
        "kind": "warm-hint",
        "schema": STAGE_SCHEMA_VERSION,
        "stage": stage,
        "targets": int(problem.num_targets),
        "window_size": int(problem.window_size),
        "spec": binding_stage_spec(config),
    }
    return sha256_hex(canonical_json(payload))


def replay_stage_spec(
    workload_key: Dict[str, Any], design: CrossbarDesign, budget: int
) -> Dict[str, Any]:
    """What determines a latency replay: workload + fabric + budget.

    ``workload_key`` is the driver's content key
    (:meth:`repro.platform.drivers.WorkloadDriver.workload_key`), which
    covers the stimulus *and* the platform it runs on; the design enters
    through its raw bindings so equal fabrics share replays whatever
    their labels.
    """
    return {
        "workload": workload_key,
        "it": list(design.it.binding),
        "ti": list(design.ti.binding),
        "budget": int(budget),
    }


@dataclass(frozen=True)
class CollectedTraffic:
    """Phase 1 output: a full-crossbar traffic trace, content-addressed.

    ``fingerprint`` is the trace's record-level content hash
    (:func:`repro.exec.fingerprint.trace_fingerprint`), so two traces
    with equal records share every downstream artifact regardless of how
    they were produced.
    """

    trace: TrafficTrace
    fingerprint: str
    label: str = ""

    @classmethod
    def from_trace(
        cls, trace: TrafficTrace, label: str = ""
    ) -> "CollectedTraffic":
        return cls(trace=trace, fingerprint=trace_fingerprint(trace), label=label)


@dataclass(frozen=True)
class WindowedAnalysis:
    """Phase 2 output: one crossbar side's windowed design problem.

    ``mirrored`` distinguishes the target->initiator side (designed on
    the mirrored trace) from the initiator->target side.
    """

    problem: CrossbarDesignProblem
    mirrored: bool
    fingerprint: str

    def describe(self) -> str:
        return self.problem.describe()


@dataclass(frozen=True)
class ConflictArtifact:
    """Phase 3 output: the conflict matrix for one windowed analysis."""

    conflicts: ConflictAnalysis
    fingerprint: str

    def describe(self) -> str:
        return f"{self.conflicts.num_conflicts} conflicting pairs"


@dataclass(frozen=True)
class BindingArtifact:
    """Phase 4 output: the configuration search and optimized binding."""

    search: SearchOutcome
    binding: BusBinding
    fingerprint: str

    def describe(self) -> str:
        return (
            f"{self.binding.num_buses} buses, "
            f"{len(self.search.probes)} probes, "
            f"maxov {self.binding.max_bus_overlap}"
        )

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready encoding for the persistent stage store."""
        return {
            "search": {
                "num_buses": self.search.num_buses,
                "feasible_binding": list(self.search.feasible_binding),
                "lower_bound": self.search.lower_bound,
                "probes": {str(k): v for k, v in self.search.probes.items()},
            },
            "binding": {
                "binding": list(self.binding.binding),
                "num_buses": self.binding.num_buses,
                "max_bus_overlap": self.binding.max_bus_overlap,
                "optimal": self.binding.optimal,
            },
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], fingerprint: str
    ) -> "BindingArtifact":
        """Decode a payload written by :meth:`to_payload`.

        Raises ``KeyError``/``TypeError``/``ValueError`` on malformed
        payloads; the store treats those as misses.
        """
        search_payload = payload["search"]
        binding_payload = payload["binding"]
        search = SearchOutcome(
            num_buses=int(search_payload["num_buses"]),
            feasible_binding=tuple(search_payload["feasible_binding"]),
            lower_bound=int(search_payload["lower_bound"]),
            probes={
                int(k): bool(v) for k, v in search_payload["probes"].items()
            },
        )
        binding = BusBinding(
            binding=tuple(binding_payload["binding"]),
            num_buses=int(binding_payload["num_buses"]),
            max_bus_overlap=int(binding_payload["max_bus_overlap"]),
            optimal=bool(binding_payload["optimal"]),
        )
        return cls(search=search, binding=binding, fingerprint=fingerprint)


def _stats_payload(stats: LatencyStats) -> Dict[str, Any]:
    return {
        "count": stats.count,
        "mean": stats.mean,
        "maximum": stats.maximum,
        "minimum": stats.minimum,
        "p95": stats.p95,
    }


def _stats_from_payload(payload: Dict[str, Any]) -> LatencyStats:
    return LatencyStats(
        count=int(payload["count"]),
        mean=float(payload["mean"]),
        maximum=int(payload["maximum"]),
        minimum=int(payload["minimum"]),
        p95=float(payload["p95"]),
    )


@dataclass(frozen=True)
class ReplayArtifact:
    """Latency-replay stage output: one workload simulated on one fabric.

    The artifact carries only the observed statistics -- never the live
    design or trace objects -- so it round-trips through JSON and
    persists in the artifact store's disk layer: suite re-runs and
    cross-process reruns reuse simulated latencies instead of
    re-simulating.
    """

    stats: LatencyStats
    critical_stats: LatencyStats
    finished: bool
    num_transactions: int
    simulated_cycles: int
    fingerprint: str
    label: str = ""

    def describe(self) -> str:
        mean = self.stats.mean if self.stats.count else 0.0
        return (
            f"{self.num_transactions} packets, avg latency {mean:.1f} cy, "
            f"{'finished' if self.finished else 'budget-capped'}"
        )

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready encoding for the persistent stage store."""
        return {
            "stats": _stats_payload(self.stats),
            "critical_stats": _stats_payload(self.critical_stats),
            "finished": self.finished,
            "num_transactions": self.num_transactions,
            "simulated_cycles": self.simulated_cycles,
            "label": self.label,
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], fingerprint: str
    ) -> "ReplayArtifact":
        """Decode a payload written by :meth:`to_payload`.

        Raises ``KeyError``/``TypeError``/``ValueError`` on malformed
        payloads; the store treats those as misses.
        """
        return cls(
            stats=_stats_from_payload(payload["stats"]),
            critical_stats=_stats_from_payload(payload["critical_stats"]),
            finished=bool(payload["finished"]),
            num_transactions=int(payload["num_transactions"]),
            simulated_cycles=int(payload["simulated_cycles"]),
            fingerprint=fingerprint,
            label=str(payload.get("label", "")),
        )
