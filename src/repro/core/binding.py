"""Optimal (and random) binding of targets onto a chosen configuration.

Second step of the paper's Sec. 6 algorithm: with the minimum bus count
fixed, bind targets to buses minimizing the maximum per-bus summed
traffic overlap (MILP2 / Eq. 11). Lower overlap on every bus directly
lowers average and peak packet latency -- Sec. 7.3 measures a 2.1x
average-latency gap between random and optimal bindings, which
``random_feasible_binding`` exists to reproduce.

Backend equivalence
-------------------
The MILP path may run on any of the :mod:`repro.milp` backends
(reference B&B, native HiGHS, or the racing portfolio). All are exact,
so they agree on the optimal *objective* -- but not necessarily on
which optimal *point* they return when the optimum is degenerate.
Reports and artifacts must be byte-identical regardless of backend, so
once a solve proves the optimal objective ``V``, the returned binding
is re-derived canonically: a deterministic assignment DFS
(:func:`repro.core.assignment.solve_assignment` with
``overlap_budget=V``) finds the first binding of overlap ``<= V`` in a
fixed search order. The backend's own solution vector only surfaces
when the solve was *not* proven optimal (limit-degraded incumbents) or
the canonical search exhausts its node budget. The DFS doubles as an
oracle cross-check: a proven-optimal objective the DFS cannot realize
means two exact solvers disagree, which is raised, not papered over.
"""

from __future__ import annotations

import random

from repro.core.assignment import solve_assignment
from repro.core.formulation import build_binding_model
from repro.core.instrumentation import record_solve
from repro.core.preprocess import ConflictAnalysis
from repro.core.problem import CrossbarDesignProblem
from repro.core.spec import BusBinding, SynthesisConfig
from repro.errors import SolverError, SynthesisError
from repro.milp import BranchBoundOptions, solve_milp

__all__ = [
    "optimize_binding",
    "random_feasible_binding",
    "binding_overlap_objective",
    "milp_solver_options",
]


def milp_solver_options(
    config: SynthesisConfig, feasibility_only: bool = False
) -> BranchBoundOptions:
    """The :func:`solve_milp` options a synthesis config translates to."""
    return BranchBoundOptions(
        lp_engine=config.lp_engine,
        node_limit=config.node_limit,
        feasibility_only=feasibility_only,
        backend=config.milp_backend,
    )


def binding_overlap_objective(
    problem: CrossbarDesignProblem, binding
) -> int:
    """Evaluate Eq. 11's objective: max per-bus summed pairwise overlap."""
    overlap = problem.overlap_matrix
    num_buses = max(binding) + 1
    worst = 0
    for bus in range(num_buses):
        members = [t for t, b in enumerate(binding) if b == bus]
        total = 0
        for position, i in enumerate(members):
            for j in members[position + 1 :]:
                total += int(overlap[i, j])
        worst = max(worst, total)
    return worst


def _canonical_optimal_binding(
    problem: CrossbarDesignProblem,
    conflicts: ConflictAnalysis,
    num_buses: int,
    config: SynthesisConfig,
    objective: int,
    crossbar_model,
    solution,
):
    """The deterministic optimal binding realizing a proven objective.

    See the module docstring: every exact backend funnels through this
    budget-bounded DFS so degenerate ties resolve identically. Falls
    back to the backend's own point only when the DFS runs out of node
    budget; raises when the DFS *proves* the objective unrealizable.
    """
    try:
        result = solve_assignment(
            problem,
            conflicts,
            num_buses,
            max_targets_per_bus=config.max_targets_per_bus,
            optimize=False,
            node_limit=config.node_limit,
            overlap_budget=objective,
        )
    except SolverError:
        return crossbar_model.extract_binding(solution)
    if not result.is_feasible:
        raise SynthesisError(
            f"MILP proved binding objective {objective} for {num_buses} "
            f"buses but the assignment oracle finds no such binding -- "
            f"solver disagreement"
        )
    return result.binding


def optimize_binding(
    problem: CrossbarDesignProblem,
    conflicts: ConflictAnalysis,
    num_buses: int,
    config: SynthesisConfig,
    warm_binding=None,
) -> BusBinding:
    """Solve MILP2: the overlap-minimizing binding for ``num_buses``.

    ``warm_binding`` is an optional target->bus tuple from a previous
    solve of a similar problem (the pipeline's warm-hint store); the
    MILP backends use it as an advisory initial incumbent. Warm or
    cold, proven-optimal results return the same canonical binding.
    """
    if config.backend == "milp":
        options = milp_solver_options(config)
        record_solve("binding", backend=options.resolve_backend())
        crossbar_model = build_binding_model(
            problem, conflicts, num_buses, config.max_targets_per_bus
        )
        warm_values = None
        if warm_binding is not None and len(warm_binding) == problem.num_targets:
            warm_values = crossbar_model.warm_values(
                warm_binding,
                objective=binding_overlap_objective(problem, warm_binding),
            )
        solution = solve_milp(
            crossbar_model.model, options, warm_values=warm_values
        )
        if not solution.is_feasible:
            raise SynthesisError(
                f"binding MILP infeasible for {num_buses} buses (configuration "
                f"search and binding disagree)"
            )
        optimal = solution.status.value == "optimal"
        if optimal:
            binding = _canonical_optimal_binding(
                problem, conflicts, num_buses, config,
                int(round(solution.objective)), crossbar_model, solution,
            )
        else:
            binding = crossbar_model.extract_binding(solution)
        return BusBinding(
            binding=binding,
            num_buses=max(binding) + 1,
            max_bus_overlap=binding_overlap_objective(problem, binding),
            optimal=optimal,
        )
    record_solve("binding")
    result = solve_assignment(
        problem,
        conflicts,
        num_buses,
        max_targets_per_bus=config.max_targets_per_bus,
        optimize=True,
        node_limit=config.node_limit,
    )
    if not result.is_feasible:
        raise SynthesisError(
            f"binding search infeasible for {num_buses} buses (configuration "
            f"search and binding disagree)"
        )
    return BusBinding(
        binding=result.binding,
        num_buses=result.buses_used,
        max_bus_overlap=int(result.objective),
        optimal=result.status == "optimal",
    )


def random_feasible_binding(
    problem: CrossbarDesignProblem,
    conflicts: ConflictAnalysis,
    num_buses: int,
    config: SynthesisConfig,
    seed: int = 0,
) -> BusBinding:
    """A random binding satisfying Eqs. 3-9 (the Sec. 7.3 baseline)."""
    result = solve_assignment(
        problem,
        conflicts,
        num_buses,
        max_targets_per_bus=config.max_targets_per_bus,
        optimize=False,
        node_limit=config.node_limit,
        rng=random.Random(seed),
    )
    if not result.is_feasible:
        raise SynthesisError(
            f"no feasible binding exists for {num_buses} buses"
        )
    return BusBinding(
        binding=result.binding,
        num_buses=result.buses_used,
        max_bus_overlap=binding_overlap_objective(problem, result.binding),
        optimal=False,
    )
