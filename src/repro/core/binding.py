"""Optimal (and random) binding of targets onto a chosen configuration.

Second step of the paper's Sec. 6 algorithm: with the minimum bus count
fixed, bind targets to buses minimizing the maximum per-bus summed
traffic overlap (MILP2 / Eq. 11). Lower overlap on every bus directly
lowers average and peak packet latency -- Sec. 7.3 measures a 2.1x
average-latency gap between random and optimal bindings, which
``random_feasible_binding`` exists to reproduce.
"""

from __future__ import annotations

import random

from repro.core.assignment import solve_assignment
from repro.core.formulation import build_binding_model
from repro.core.instrumentation import record_solve
from repro.core.preprocess import ConflictAnalysis
from repro.core.problem import CrossbarDesignProblem
from repro.core.spec import BusBinding, SynthesisConfig
from repro.errors import SynthesisError
from repro.milp import BranchBoundOptions, solve_milp

__all__ = ["optimize_binding", "random_feasible_binding", "binding_overlap_objective"]


def binding_overlap_objective(
    problem: CrossbarDesignProblem, binding
) -> int:
    """Evaluate Eq. 11's objective: max per-bus summed pairwise overlap."""
    overlap = problem.overlap_matrix
    num_buses = max(binding) + 1
    worst = 0
    for bus in range(num_buses):
        members = [t for t, b in enumerate(binding) if b == bus]
        total = 0
        for position, i in enumerate(members):
            for j in members[position + 1 :]:
                total += int(overlap[i, j])
        worst = max(worst, total)
    return worst


def optimize_binding(
    problem: CrossbarDesignProblem,
    conflicts: ConflictAnalysis,
    num_buses: int,
    config: SynthesisConfig,
) -> BusBinding:
    """Solve MILP2: the overlap-minimizing binding for ``num_buses``."""
    record_solve("binding")
    if config.backend == "milp":
        crossbar_model = build_binding_model(
            problem, conflicts, num_buses, config.max_targets_per_bus
        )
        solution = solve_milp(
            crossbar_model.model,
            BranchBoundOptions(
                lp_engine=config.lp_engine, node_limit=config.node_limit
            ),
        )
        if not solution.is_feasible:
            raise SynthesisError(
                f"binding MILP infeasible for {num_buses} buses (configuration "
                f"search and binding disagree)"
            )
        binding = crossbar_model.extract_binding(solution)
        return BusBinding(
            binding=binding,
            num_buses=max(binding) + 1,
            max_bus_overlap=binding_overlap_objective(problem, binding),
            optimal=solution.status.value == "optimal",
        )
    result = solve_assignment(
        problem,
        conflicts,
        num_buses,
        max_targets_per_bus=config.max_targets_per_bus,
        optimize=True,
        node_limit=config.node_limit,
    )
    if not result.is_feasible:
        raise SynthesisError(
            f"binding search infeasible for {num_buses} buses (configuration "
            f"search and binding disagree)"
        )
    return BusBinding(
        binding=result.binding,
        num_buses=result.buses_used,
        max_bus_overlap=int(result.objective),
        optimal=result.status == "optimal",
    )


def random_feasible_binding(
    problem: CrossbarDesignProblem,
    conflicts: ConflictAnalysis,
    num_buses: int,
    config: SynthesisConfig,
    seed: int = 0,
) -> BusBinding:
    """A random binding satisfying Eqs. 3-9 (the Sec. 7.3 baseline)."""
    result = solve_assignment(
        problem,
        conflicts,
        num_buses,
        max_targets_per_bus=config.max_targets_per_bus,
        optimize=False,
        node_limit=config.node_limit,
        rng=random.Random(seed),
    )
    if not result.is_feasible:
        raise SynthesisError(
            f"no feasible binding exists for {num_buses} buses"
        )
    return BusBinding(
        binding=result.binding,
        num_buses=result.buses_used,
        max_bus_overlap=binding_overlap_objective(problem, result.binding),
        optimal=False,
    )
