"""Post-synthesis audit of a binding against the design constraints.

Every designed binding is re-checked against the paper's constraint set
(Eqs. 3, 4, 7, 8) directly from the problem data -- an independent path
from both solvers, used by the synthesis flow as a safety net and by the
test suite as an oracle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.preprocess import ConflictAnalysis
from repro.core.problem import CrossbarDesignProblem
from repro.errors import ValidationError

__all__ = ["audit_binding"]


def audit_binding(
    problem: CrossbarDesignProblem,
    conflicts: ConflictAnalysis,
    binding: Sequence[int],
    max_targets_per_bus: Optional[int] = None,
    raise_on_violation: bool = False,
) -> List[str]:
    """Check a binding against Eqs. 3-9; return violation descriptions.

    With ``raise_on_violation`` a non-empty result raises
    :class:`~repro.errors.ValidationError` instead.
    """
    violations: List[str] = []
    num_targets = problem.num_targets

    if len(binding) != num_targets:
        violations.append(
            f"binding covers {len(binding)} targets, problem has {num_targets}"
        )
    else:
        num_buses = max(binding) + 1
        # Eq. 3 is structural (one bus per target) given the list shape;
        # dense numbering is required by the platform.
        if set(binding) != set(range(num_buses)):
            violations.append(f"bus numbering not dense: {tuple(binding)}")

        # Eq. 4: window bandwidth per bus (per-window capacities).
        for bus in range(num_buses):
            members = [t for t, b in enumerate(binding) if b == bus]
            load = problem.comm[members].sum(axis=0)
            overflow = load > problem.capacities
            if overflow.any():
                worst = int(np.argmax(load - problem.capacities))
                violations.append(
                    f"bus {bus} carries {int(load[worst])} cycles in window "
                    f"{worst} of capacity {int(problem.capacities[worst])} "
                    f"(targets {members})"
                )

        # Eq. 7: conflicts separated.
        for (i, j) in conflicts.reasons:
            if binding[i] == binding[j]:
                rules = ",".join(sorted(conflicts.reasons[i, j]))
                violations.append(
                    f"conflicting targets {i} and {j} share bus {binding[i]} "
                    f"({rules})"
                )

        # Eq. 8: maxtb.
        if max_targets_per_bus is not None:
            for bus in range(num_buses):
                size = sum(1 for b in binding if b == bus)
                if size > max_targets_per_bus:
                    violations.append(
                        f"bus {bus} holds {size} targets "
                        f"(maxtb={max_targets_per_bus})"
                    )

    if violations and raise_on_violation:
        raise ValidationError("; ".join(violations))
    return violations
