"""Lightweight instrumentation of the solver entry points.

The execution engine's cache (:mod:`repro.exec`) promises that a warm
cache performs *zero* solves. That guarantee is only testable if the
solver layer is observable, so the two solver entry points --
feasibility probes in :mod:`repro.core.search` and binding optimization
in :mod:`repro.core.binding` -- report every invocation here.

The counter is process-local: work fanned out to pool workers is counted
in the workers, not the parent. That is exactly what cache tests want --
a warm-cache run in the parent must record zero local solves. Every
recording is also mirrored into the :mod:`repro.obs` registry
(``repro_solves_total{kind=...}``), which is process-global and
monotonic -- the ``/metrics`` view -- while the counter itself stays the
resettable per-run view.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from repro.obs import metrics as _metrics
from repro.profiling import PHASE_TIMER, PhaseTimer, track_phase

__all__ = [
    "SolveCounter",
    "SOLVE_COUNTER",
    "record_solve",
    # Phase wall-clock accounting lives in :mod:`repro.profiling` (below
    # the traffic layer, to avoid import cycles) and is re-exported here
    # alongside the solver counter it mirrors.
    "PhaseTimer",
    "PHASE_TIMER",
    "track_phase",
]

_SOLVES_TOTAL = _metrics.counter(
    "repro_solves_total",
    "Solver invocations by kind (feasibility probe / binding MILP) "
    "and solver backend.",
    ("kind", "backend"),
)


class SolveCounter:
    """Counts solver invocations; supports observer callbacks.

    Attributes
    ----------
    feasibility:
        Number of feasibility probes (MILP1 / assignment feasibility).
    binding:
        Number of binding optimizations (MILP2).

    Updates are lock-protected and :meth:`snapshot` is the atomic read:
    the server's stats endpoint consumes that instead of reading the
    fields one by one while solver threads are writing them.
    """

    def __init__(self) -> None:
        self.feasibility = 0
        self.binding = 0
        self.by_backend: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._observers: List[Callable[[str], None]] = []

    @property
    def total(self) -> int:
        """All solver invocations since the last :meth:`reset`."""
        with self._lock:
            return self.feasibility + self.binding

    def reset(self) -> None:
        """Zero both counters (observers stay registered; the registry
        mirror is monotonic and is deliberately left alone)."""
        with self._lock:
            self.feasibility = 0
            self.binding = 0
            self.by_backend.clear()

    def snapshot(self) -> Dict[str, object]:
        """Both counters (plus the per-backend split) in one read."""
        with self._lock:
            return {
                "feasibility": self.feasibility,
                "binding": self.binding,
                "total": self.feasibility + self.binding,
                "by_backend": dict(self.by_backend),
            }

    def subscribe(self, observer: Callable[[str], None]) -> None:
        """Call ``observer(kind)`` on every recorded solve."""
        self._observers.append(observer)

    def unsubscribe(self, observer: Callable[[str], None]) -> None:
        """Remove a previously subscribed observer."""
        self._observers.remove(observer)

    def record(self, kind: str, backend: str = "assignment") -> None:
        """Record one solver invocation of ``kind`` on ``backend``.

        ``backend`` names the solver tier that ran: ``"assignment"``
        (the specialized solver, default) or a MILP backend
        (``reference`` / ``highs`` / ``portfolio``).
        """
        if kind not in ("feasibility", "binding"):
            raise ValueError(f"unknown solve kind {kind!r}")
        with self._lock:
            if kind == "feasibility":
                self.feasibility += 1
            else:
                self.binding += 1
            self.by_backend[backend] = self.by_backend.get(backend, 0) + 1
        _SOLVES_TOTAL.inc(kind=kind, backend=backend)
        # Observers run outside the lock: they may be arbitrary user
        # code (progress feeds) and must not serialize solver threads.
        for observer in self._observers:
            observer(kind)


SOLVE_COUNTER = SolveCounter()
"""The process-global counter the solver entry points report to."""


def record_solve(
    kind: str,
    backend: str = "assignment",
    counter: Optional[SolveCounter] = None,
) -> None:
    """Report one solver invocation (module-level convenience hook)."""
    (counter or SOLVE_COUNTER).record(kind, backend=backend)
