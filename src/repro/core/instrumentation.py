"""Lightweight instrumentation of the solver entry points.

The execution engine's cache (:mod:`repro.exec`) promises that a warm
cache performs *zero* solves. That guarantee is only testable if the
solver layer is observable, so the two solver entry points --
feasibility probes in :mod:`repro.core.search` and binding optimization
in :mod:`repro.core.binding` -- report every invocation here.

The counter is process-local: work fanned out to pool workers is counted
in the workers, not the parent. That is exactly what cache tests want --
a warm-cache run in the parent must record zero local solves.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.profiling import PHASE_TIMER, PhaseTimer, track_phase

__all__ = [
    "SolveCounter",
    "SOLVE_COUNTER",
    "record_solve",
    # Phase wall-clock accounting lives in :mod:`repro.profiling` (below
    # the traffic layer, to avoid import cycles) and is re-exported here
    # alongside the solver counter it mirrors.
    "PhaseTimer",
    "PHASE_TIMER",
    "track_phase",
]


class SolveCounter:
    """Counts solver invocations; supports observer callbacks.

    Attributes
    ----------
    feasibility:
        Number of feasibility probes (MILP1 / assignment feasibility).
    binding:
        Number of binding optimizations (MILP2).
    """

    def __init__(self) -> None:
        self.feasibility = 0
        self.binding = 0
        self._observers: List[Callable[[str], None]] = []

    @property
    def total(self) -> int:
        """All solver invocations since the last :meth:`reset`."""
        return self.feasibility + self.binding

    def reset(self) -> None:
        """Zero both counters (observers stay registered)."""
        self.feasibility = 0
        self.binding = 0

    def subscribe(self, observer: Callable[[str], None]) -> None:
        """Call ``observer(kind)`` on every recorded solve."""
        self._observers.append(observer)

    def unsubscribe(self, observer: Callable[[str], None]) -> None:
        """Remove a previously subscribed observer."""
        self._observers.remove(observer)

    def record(self, kind: str) -> None:
        """Record one solver invocation of ``kind``."""
        if kind == "feasibility":
            self.feasibility += 1
        elif kind == "binding":
            self.binding += 1
        else:
            raise ValueError(f"unknown solve kind {kind!r}")
        for observer in self._observers:
            observer(kind)


SOLVE_COUNTER = SolveCounter()
"""The process-global counter the solver entry points report to."""


def record_solve(kind: str, counter: Optional[SolveCounter] = None) -> None:
    """Report one solver invocation (module-level convenience hook)."""
    (counter or SOLVE_COUNTER).record(kind)
