"""Synthesis configuration and result objects."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["SynthesisConfig", "BusBinding", "CrossbarDesign"]


@dataclass(frozen=True)
class SynthesisConfig:
    """Tunable parameters of the design methodology (paper Sec. 7.4).

    Attributes
    ----------
    window_size:
        Analysis window ``WS`` in cycles; ``None`` uses the application's
        recommended window. Small windows approach peak-bandwidth design,
        a window covering the whole simulation degenerates to
        average-traffic design (paper Sec. 2).
    overlap_threshold:
        Fraction of ``WS``; target pairs whose overlap exceeds it in
        *any* window are forced onto different buses. The useful range
        ends at 0.5 (Sec. 7.4). Aggressive designs use ~0.1,
        conservative ~0.3-0.4.
    max_targets_per_bus:
        The paper's ``maxtb`` (Eq. 8), bounding worst-case serialization
        latency. ``None`` disables the limit.
    backend:
        ``"assignment"`` (specialized exact solver, default) or
        ``"milp"`` (the literal Eq. 3-11 formulation via
        :mod:`repro.milp`).
    lp_engine:
        LP relaxation engine for the MILP backend.
    milp_backend:
        MILP solver tier used when ``backend="milp"``: ``"reference"``
        (pure-Python branch and bound, the correctness oracle),
        ``"highs"`` (native HiGHS MIP via scipy), ``"portfolio"``
        (both raced, first proof wins), or ``None`` to resolve
        ``REPRO_MILP_BACKEND`` at solve time. All tiers are exact, so
        the choice never changes reported designs -- only how fast
        they arrive (it is deliberately excluded from pipeline stage
        fingerprints for the same reason).
    use_criticality:
        Whether overlapping real-time streams force conflicts.
    node_limit:
        Search-node budget per solve; exceeding it raises unless a
        feasible incumbent exists (reported as non-optimal).
    variable_windows:
        Use phase-aligned variable-size windows instead of uniform ones
        (the paper's QoS future-work direction,
        :mod:`repro.traffic.qos`). The nominal window size then acts as
        the *maximum* window; windows shrink to track traffic phases
        down to ``window_size / variable_window_ratio``.
    variable_window_ratio:
        Maximum-to-minimum window size ratio for variable windows.
    """

    window_size: Optional[int] = None
    overlap_threshold: float = 0.3
    max_targets_per_bus: Optional[int] = 4
    backend: str = "assignment"
    lp_engine: str = "scipy"
    use_criticality: bool = True
    node_limit: int = 2_000_000
    variable_windows: bool = False
    variable_window_ratio: int = 5
    milp_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.window_size is not None and self.window_size < 1:
            raise ConfigurationError("window_size must be >= 1 or None")
        if not 0.0 <= self.overlap_threshold <= 0.5:
            raise ConfigurationError(
                "overlap_threshold must lie in [0, 0.5]: beyond 0.5 the "
                "window bandwidth constraint is violated anyway (Sec. 7.4)"
            )
        if self.max_targets_per_bus is not None and self.max_targets_per_bus < 1:
            raise ConfigurationError("max_targets_per_bus must be >= 1 or None")
        if self.backend not in ("assignment", "milp"):
            raise ConfigurationError(
                f"backend must be 'assignment' or 'milp', got {self.backend!r}"
            )
        if self.milp_backend is not None and self.milp_backend not in (
            "reference", "highs", "portfolio",
        ):
            raise ConfigurationError(
                "milp_backend must be 'reference', 'highs', 'portfolio' "
                f"or None, got {self.milp_backend!r}"
            )
        if self.node_limit < 1:
            raise ConfigurationError("node_limit must be positive")
        if self.variable_window_ratio < 1:
            raise ConfigurationError("variable_window_ratio must be >= 1")


@dataclass(frozen=True)
class BusBinding:
    """One designed crossbar side: the target -> bus assignment.

    Attributes
    ----------
    binding:
        ``binding[i]`` is the bus index of target ``i`` (dense, so
        ``max + 1`` equals :attr:`num_buses`).
    num_buses:
        Bus count of this crossbar.
    max_bus_overlap:
        The optimized objective: the largest per-bus summed pairwise
        overlap (Eq. 11's ``maxov``), in cycles.
    optimal:
        Whether the binding was proven optimal (False when a node budget
        stopped the search with an incumbent).
    """

    binding: Tuple[int, ...]
    num_buses: int
    max_bus_overlap: int = 0
    optimal: bool = True

    def __post_init__(self) -> None:
        if self.num_buses < 1:
            raise ConfigurationError("a crossbar needs at least one bus")
        if len(self.binding) < self.num_buses:
            raise ConfigurationError(
                f"{self.num_buses} buses for only {len(self.binding)} targets"
            )
        used = set(self.binding)
        if used != set(range(self.num_buses)):
            raise ConfigurationError(
                f"binding {self.binding} does not use buses 0..{self.num_buses - 1} "
                f"densely"
            )

    def targets_on_bus(self, bus: int) -> Tuple[int, ...]:
        """Targets assigned to ``bus``."""
        return tuple(t for t, b in enumerate(self.binding) if b == bus)

    def as_list(self) -> list:
        """The binding as a plain list (for :class:`repro.platform.SoC`)."""
        return list(self.binding)


@dataclass(frozen=True)
class CrossbarDesign:
    """A complete design: both crossbars of one application.

    ``it`` binds targets to initiator->target buses; ``ti`` binds
    initiators to target->initiator buses.
    """

    it: BusBinding
    ti: BusBinding
    label: str = "windowed"

    @property
    def bus_count(self) -> int:
        """Total buses across both crossbars (the paper's size metric)."""
        return self.it.num_buses + self.ti.num_buses

    def size_ratio_vs(self, other: "CrossbarDesign") -> float:
        """This design's bus count relative to another design's."""
        return other.bus_count / self.bus_count if self.bus_count else float("inf")
