"""Pre-processing phase: the conflict matrix (paper Eq. 2).

Three rules forbid a pair of targets from sharing a bus:

* **threshold** -- their overlap exceeds ``overlap_threshold * WS`` in at
  least one window (Sec. 5); separating such pairs cuts worst-case
  latency and prunes the configuration search,
* **bandwidth** -- their combined demand exceeds ``WS`` in some window,
  so no bus could carry both (the Sec. 7.4 observation that overlap
  beyond 50% of a window is infeasible outright is the special case of
  this rule),
* **real-time** -- both carry critical streams that overlap in some
  window (Sec. 7.3); separation is what makes latency guarantees
  possible.

The resulting conflict graph also yields a clique-based lower bound on
the bus count, which tightens the binary search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

import networkx as nx
import numpy as np

from repro.core.problem import CrossbarDesignProblem
from repro.core.spec import SynthesisConfig
from repro.profiling import track_phase

__all__ = ["ConflictAnalysis", "build_conflicts"]


@dataclass(frozen=True)
class ConflictAnalysis:
    """The conflict matrix plus provenance of every conflict pair.

    Attributes
    ----------
    matrix:
        Boolean symmetric ``(T, T)`` array; ``True`` forbids sharing.
    reasons:
        Maps each conflicting (ordered) pair to the rule names that
        produced it (``"threshold"``, ``"bandwidth"``, ``"real-time"``).
    """

    matrix: np.ndarray
    reasons: Dict[Tuple[int, int], FrozenSet[str]]

    @property
    def num_conflicts(self) -> int:
        """Number of conflicting pairs."""
        return len(self.reasons)

    def conflicting_pairs(self) -> List[Tuple[int, int]]:
        """All conflicting pairs, ordered."""
        return sorted(self.reasons)

    def clique_lower_bound(self) -> int:
        """Bus-count lower bound: size of the largest mutual-conflict
        clique (each member needs its own bus)."""
        num_targets = self.matrix.shape[0]
        if not self.reasons:
            return 1
        graph = nx.Graph()
        graph.add_nodes_from(range(num_targets))
        graph.add_edges_from(self.reasons)
        best = 1
        for clique in nx.find_cliques(graph):
            best = max(best, len(clique))
        return best


def build_conflicts(
    problem: CrossbarDesignProblem, config: SynthesisConfig
) -> ConflictAnalysis:
    """Run the pre-processing phase on a design problem.

    Both windowed rules are evaluated as whole-tensor array operations
    (one comparison over ``wo`` and one over the pairwise demand sums)
    instead of a Python loop over target pairs; only the resulting
    conflict pairs are walked to record provenance.
    """
    num_targets = problem.num_targets
    capacities = problem.capacities
    matrix = np.zeros((num_targets, num_targets), dtype=bool)
    reasons: Dict[Tuple[int, int], set] = {}

    def mark(i: int, j: int, rule: str) -> None:
        pair = (min(i, j), max(i, j))
        matrix[i, j] = matrix[j, i] = True
        reasons.setdefault(pair, set()).add(rule)

    with track_phase("conflicts"):
        threshold_cycles = config.overlap_threshold * capacities
        over_threshold = (problem.wo > threshold_cycles).any(axis=2)
        combined = problem.comm[:, None, :] + problem.comm[None, :, :]
        over_bandwidth = (combined > capacities).any(axis=2)
        candidates = np.triu(over_threshold | over_bandwidth, k=1)
        for i, j in np.argwhere(candidates):
            i, j = int(i), int(j)
            if over_threshold[i, j]:
                mark(i, j, "threshold")
            if over_bandwidth[i, j]:
                mark(i, j, "bandwidth")

        if config.use_criticality:
            for i, j in problem.criticality.conflicting_pairs:
                mark(i, j, "real-time")

    return ConflictAnalysis(
        matrix=matrix,
        reasons={pair: frozenset(rules) for pair, rules in reasons.items()},
    )
