"""The literal MILP formulation of the paper (Eqs. 3-11).

These builders transcribe Section 5 of the paper onto :mod:`repro.milp`
models, variable for variable:

* ``x[i][k]`` -- binding variables (Definition 3, Eq. 3, Eq. 9),
* window bandwidth constraints (Eq. 4),
* ``sb[i][j][k]`` / ``s[i][j]`` -- sharing variables with the
  linearized product constraints (Definition 4, Eqs. 5-6),
* conflict exclusions ``c[i][j] * s[i][j] = 0`` (Eq. 7),
* ``maxtb`` (Eq. 8),
* the binding objective ``min maxov`` (Eq. 11).

The paper sums ``om[i][j] * sb[i][j][k]`` over *all* ordered pairs; we
sum unordered pairs (``i < j``), which scales the objective by exactly 2
and does not change the argmin. Sharing variables are only materialized
for pairs with non-zero total overlap or a conflict -- for any other pair
they would be unconstrained and objective-free, so dropping them leaves
the model equivalent (the test suite checks this against brute force).

The specialized solver in :mod:`repro.core.assignment` answers the same
models faster; this module exists to keep the reproduction faithful and
to cross-validate the specialized solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.preprocess import ConflictAnalysis
from repro.core.problem import CrossbarDesignProblem
from repro.milp import LinExpr, Model, Variable

__all__ = ["CrossbarModel", "build_feasibility_model", "build_binding_model"]


@dataclass
class CrossbarModel:
    """A built MILP plus handles to its decision variables."""

    model: Model
    x: List[List[Variable]]  # x[i][k]: target i on bus k
    maxov: Optional[Variable] = None
    sb: Dict[Tuple[int, int, int], Variable] = field(default_factory=dict)

    def warm_values(
        self,
        binding: Optional[Sequence[int]],
        objective: Optional[float] = None,
    ) -> Optional[Dict[Variable, float]]:
        """Translate a cached binding into a warm-start hint.

        Returns a full variable assignment (one-hot ``x``, consistent
        ``sb`` products, ``maxov`` at ``objective``) or ``None`` when
        the binding cannot possibly fit this model (wrong target count,
        bus index out of range, or a binding model with no objective in
        hand). The hint is *advisory*: the solver re-validates it
        against all constraints, so a stale binding that no longer
        satisfies e.g. the conflict rows is simply discarded there.
        """
        if binding is None or len(binding) != len(self.x):
            return None
        num_buses = len(self.x[0]) if self.x else 0
        if any(bus < 0 or bus >= num_buses for bus in binding):
            return None
        if self.maxov is not None and objective is None:
            return None
        values: Dict[Variable, float] = {}
        for i, row in enumerate(self.x):
            for k, var in enumerate(row):
                values[var] = 1.0 if binding[i] == k else 0.0
        for (i, j, k), var in self.sb.items():
            values[var] = 1.0 if binding[i] == k == binding[j] else 0.0
        if self.maxov is not None:
            values[self.maxov] = float(objective)
        return values

    def extract_binding(self, solution) -> Tuple[int, ...]:
        """Read the target->bus assignment out of a MILP solution."""
        binding = []
        for row in self.x:
            bus = next(
                (k for k, var in enumerate(row) if solution.value(var) > 0.5),
                0,
            )
            binding.append(bus)
        return _renumber_dense(tuple(binding))


def _renumber_dense(binding: Tuple[int, ...]) -> Tuple[int, ...]:
    """Renumber buses densely in order of first appearance."""
    mapping: Dict[int, int] = {}
    dense = []
    for bus in binding:
        if bus not in mapping:
            mapping[bus] = len(mapping)
        dense.append(mapping[bus])
    return tuple(dense)


def _build_common(
    problem: CrossbarDesignProblem,
    conflicts: ConflictAnalysis,
    num_buses: int,
    max_targets_per_bus: Optional[int],
    with_sharing: bool,
    name: str,
) -> CrossbarModel:
    model = Model(name)
    num_targets = problem.num_targets

    x = [
        [model.binary_var(f"x_{i}_{k}") for k in range(num_buses)]
        for i in range(num_targets)
    ]

    # Eq. 3: each target on exactly one bus.
    for i in range(num_targets):
        model.add(LinExpr.total(x[i]) == 1, name=f"one-bus[{i}]")

    # Eq. 4: per-window, per-bus bandwidth (per-window capacity for
    # variable windows).
    comm = problem.comm
    capacities = problem.capacities
    for k in range(num_buses):
        for m in range(problem.num_windows):
            demand = LinExpr.total(
                int(comm[i, m]) * x[i][k]
                for i in range(num_targets)
                if comm[i, m]
            )
            if demand.terms:
                model.add(
                    demand <= int(capacities[m]), name=f"bw[{k},{m}]"
                )

    # Eq. 8: bounded targets per bus.
    if max_targets_per_bus is not None:
        for k in range(num_buses):
            model.add(
                LinExpr.total(x[i][k] for i in range(num_targets))
                <= max_targets_per_bus,
                name=f"maxtb[{k}]",
            )

    maxov = None
    sb: Dict[Tuple[int, int, int], Variable] = {}
    overlap = problem.overlap_matrix
    interesting_pairs = [
        (i, j)
        for i in range(num_targets)
        for j in range(i + 1, num_targets)
        if overlap[i, j] or (i, j) in conflicts.reasons
    ]

    if with_sharing and interesting_pairs:
        # Definition 4 / Eqs. 5-6: sharing variables and linearization.
        for (i, j) in interesting_pairs:
            for k in range(num_buses):
                var = model.binary_var(f"sb_{i}_{j}_{k}")
                sb[i, j, k] = var
                model.add(x[i][k] + x[j][k] - 1 <= var, name=f"sb-lb[{i},{j},{k}]")
                model.add(
                    0.5 * x[i][k] + 0.5 * x[j][k] >= var,
                    name=f"sb-ub[{i},{j},{k}]",
                )
        # Eq. 7 via Eq. 6: conflicting pairs must share no bus.
        for (i, j) in conflicts.reasons:
            if (i, j, 0) in sb:
                model.add(
                    LinExpr.total(sb[i, j, k] for k in range(num_buses)) <= 0,
                    name=f"conflict[{i},{j}]",
                )
        # Eq. 11: minimize the maximum per-bus summed overlap.
        maxov = model.continuous_var("maxov", lower=0.0)
        for k in range(num_buses):
            bus_overlap = LinExpr.total(
                int(overlap[i, j]) * sb[i, j, k]
                for (i, j) in interesting_pairs
                if overlap[i, j]
            )
            if bus_overlap.terms:
                model.add(bus_overlap <= maxov, name=f"maxov[{k}]")
        model.minimize(maxov)
    else:
        # Feasibility flavour: Eq. 7 enforced directly on x without the
        # sharing machinery (equivalent and much smaller).
        for (i, j) in conflicts.reasons:
            for k in range(num_buses):
                model.add(
                    x[i][k] + x[j][k] <= 1, name=f"conflict[{i},{j},{k}]"
                )

    return CrossbarModel(model=model, x=x, maxov=maxov, sb=sb)


def build_feasibility_model(
    problem: CrossbarDesignProblem,
    conflicts: ConflictAnalysis,
    num_buses: int,
    max_targets_per_bus: Optional[int] = None,
) -> CrossbarModel:
    """MILP1 (Eq. 10): pure feasibility, no objective."""
    return _build_common(
        problem, conflicts, num_buses, max_targets_per_bus,
        with_sharing=False, name=f"feasibility-{num_buses}buses",
    )


def build_binding_model(
    problem: CrossbarDesignProblem,
    conflicts: ConflictAnalysis,
    num_buses: int,
    max_targets_per_bus: Optional[int] = None,
) -> CrossbarModel:
    """MILP2 (Eq. 11): optimal binding minimizing ``maxov``."""
    return _build_common(
        problem, conflicts, num_buses, max_targets_per_bus,
        with_sharing=True, name=f"binding-{num_buses}buses",
    )
