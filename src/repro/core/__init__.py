"""Application-specific STbus crossbar synthesis (the paper's contribution).

The design flow (paper Fig. 3) is implemented end to end:

1. **Traffic collection** -- simulate the application on a full crossbar
   (:mod:`repro.platform`) and window the trace (:mod:`repro.traffic`).
2. **Pre-processing** (:mod:`repro.core.preprocess`) -- build the conflict
   matrix (Eq. 2) from the overlap threshold and overlapping real-time
   streams.
3. **Configuration search** (:mod:`repro.core.search`) -- binary-search
   the minimum bus count whose feasibility problem (Eqs. 3-9 / MILP1,
   Eq. 10) admits a solution.
4. **Optimal binding** (:mod:`repro.core.binding`) -- minimize the
   maximum per-bus traffic overlap (MILP2, Eq. 11).

Two interchangeable exact solvers answer the feasibility/binding
problems: a specialized branch-and-bound assignment solver
(:mod:`repro.core.assignment`, the fast default) and the literal MILP
formulation (:mod:`repro.core.formulation`) solved with
:mod:`repro.milp`. Baseline design styles from prior work (average-traffic
and contention-free peak design, random binding) live in
:mod:`repro.core.baselines`.
"""

from repro.core.instrumentation import SOLVE_COUNTER, SolveCounter
from repro.core.spec import BusBinding, CrossbarDesign, SynthesisConfig
from repro.core.problem import CrossbarDesignProblem
from repro.core.preprocess import ConflictAnalysis, build_conflicts
from repro.core.search import search_minimum_buses
from repro.core.binding import optimize_binding, random_feasible_binding
from repro.core.synthesis import CrossbarSynthesizer, SynthesisReport
from repro.core.multi import (
    MERGE_POLICIES,
    RobustSynthesisReport,
    RobustSynthesizer,
    merge_conflict_analyses,
    merge_criticality,
    merge_problems,
)
from repro.core.baselines import (
    average_traffic_design,
    full_crossbar_design,
    peak_bandwidth_design,
    shared_bus_design,
)
from repro.core.validate import audit_binding

__all__ = [
    "SynthesisConfig",
    "BusBinding",
    "CrossbarDesign",
    "CrossbarDesignProblem",
    "ConflictAnalysis",
    "build_conflicts",
    "search_minimum_buses",
    "optimize_binding",
    "random_feasible_binding",
    "CrossbarSynthesizer",
    "SynthesisReport",
    "MERGE_POLICIES",
    "RobustSynthesizer",
    "RobustSynthesisReport",
    "merge_problems",
    "merge_conflict_analyses",
    "merge_criticality",
    "average_traffic_design",
    "peak_bandwidth_design",
    "full_crossbar_design",
    "shared_bus_design",
    "audit_binding",
    "SOLVE_COUNTER",
    "SolveCounter",
]
