"""The crossbar design problem instance.

A :class:`CrossbarDesignProblem` packages everything Phase 2 extracts
from the full-crossbar trace for *one* crossbar side: the per-window
received-data matrix ``comm[i][m]`` (Definition 2), the per-window
pairwise overlap ``wo[i][j][m]``, the aggregate overlap matrix ``om``
(Eq. 1), and the criticality report. Designing the target->initiator
crossbar uses the same class on the mirrored trace.

Windows may have unequal sizes (the paper's variable-window future-work
direction): ``capacities[m]`` carries each window's cycle budget, and
every constraint that the uniform formulation writes against ``WS``
evaluates against its own window's capacity instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import SynthesisError
from repro.traffic.criticality import CriticalityReport, analyze_criticality
from repro.traffic.overlap import PairwiseOverlap
from repro.traffic.trace import TrafficTrace
from repro.traffic.windows import WindowedTraffic

__all__ = ["CrossbarDesignProblem"]


@dataclass(frozen=True)
class CrossbarDesignProblem:
    """Windowed traffic data for one crossbar side.

    Attributes
    ----------
    comm:
        ``int64`` array of shape ``(T, W)``: busy cycles per target and
        window.
    wo:
        ``int64`` array of shape ``(T, T, W)``: pairwise overlap cycles.
    window_size:
        ``WS`` in cycles; for variable windows, the largest capacity.
    criticality:
        Real-time stream analysis (overlapping critical pairs).
    target_names:
        For reporting.
    capacities:
        Per-window cycle budgets; defaults to ``window_size`` everywhere
        (the paper's uniform case).
    """

    comm: np.ndarray
    wo: np.ndarray
    window_size: int
    criticality: CriticalityReport
    target_names: Tuple[str, ...]
    capacities: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.comm.ndim != 2:
            raise SynthesisError("comm must be a (targets, windows) matrix")
        num_targets, num_windows = self.comm.shape
        if self.wo.shape != (num_targets, num_targets, num_windows):
            raise SynthesisError(
                f"wo shape {self.wo.shape} inconsistent with comm "
                f"{self.comm.shape}"
            )
        if self.capacities is None:
            object.__setattr__(
                self,
                "capacities",
                np.full(num_windows, self.window_size, dtype=np.int64),
            )
        else:
            capacities = np.asarray(self.capacities, dtype=np.int64)
            if capacities.shape != (num_windows,):
                raise SynthesisError(
                    f"capacities shape {capacities.shape} does not match "
                    f"{num_windows} windows"
                )
            if (capacities < 1).any():
                raise SynthesisError("every window capacity must be >= 1")
            if int(capacities.max(initial=1)) != self.window_size:
                raise SynthesisError(
                    "window_size must equal the largest window capacity"
                )
            object.__setattr__(self, "capacities", capacities)
        if (self.comm > self.capacities).any():
            raise SynthesisError("comm entries exceed their window capacity")
        if len(self.target_names) != num_targets:
            raise SynthesisError("target_names length mismatch")

    @classmethod
    def from_trace(
        cls, trace: TrafficTrace, window_size: int
    ) -> "CrossbarDesignProblem":
        """Phase-2 data collection with uniform windows."""
        windowed = WindowedTraffic(trace, window_size=window_size)
        return cls.from_windowed(windowed)

    @classmethod
    def from_trace_boundaries(
        cls, trace: TrafficTrace, boundaries: Sequence[int]
    ) -> "CrossbarDesignProblem":
        """Phase-2 data collection with explicit variable windows."""
        windowed = WindowedTraffic(trace, boundaries=boundaries)
        return cls.from_windowed(windowed)

    @classmethod
    def from_windowed(cls, windowed: WindowedTraffic) -> "CrossbarDesignProblem":
        """Build from an existing window segmentation."""
        overlap = PairwiseOverlap(windowed)
        return cls(
            comm=windowed.comm,
            wo=overlap.wo,
            window_size=windowed.window_size,
            criticality=analyze_criticality(windowed),
            target_names=tuple(windowed.trace.target_names),
            capacities=windowed.capacities,
        )

    @property
    def num_targets(self) -> int:
        """``|T|``."""
        return self.comm.shape[0]

    @property
    def num_windows(self) -> int:
        """``|W|``."""
        return self.comm.shape[1]

    @property
    def overlap_matrix(self) -> np.ndarray:
        """``om[i][j]`` -- total overlap across windows (Eq. 1)."""
        return self.wo.sum(axis=2)

    def bandwidth_lower_bound(self) -> int:
        """Min buses needed by window bandwidth alone (ceil of peak)."""
        demand = self.comm.sum(axis=0)
        if demand.size == 0:
            return 1
        return max(
            1, int(np.ceil(demand / self.capacities.astype(float)).max())
        )

    def total_busy(self) -> np.ndarray:
        """Per-target total busy cycles (used for search ordering)."""
        return self.comm.sum(axis=1)

    def restricted_to(self, targets: Sequence[int]) -> "CrossbarDesignProblem":
        """Sub-problem over a subset of targets (index order preserved)."""
        index = list(targets)
        return CrossbarDesignProblem(
            comm=self.comm[index],
            wo=self.wo[np.ix_(index, index)],
            window_size=self.window_size,
            criticality=CriticalityReport(),  # criticality is re-derived upstream
            target_names=tuple(self.target_names[i] for i in index),
            capacities=self.capacities,
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.num_targets} targets x {self.num_windows} windows of "
            f"{self.window_size} cycles; bandwidth LB = "
            f"{self.bandwidth_lower_bound()}"
        )
