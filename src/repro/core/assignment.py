"""Specialized exact solver for the crossbar binding problem.

Solves exactly the model of paper Eqs. 3-9 (feasibility) and Eq. 11
(minimize the maximum per-bus summed overlap), but as a dedicated
branch-and-bound over target-to-bus assignments rather than a generic
MILP -- the structure (one bus per target, symmetric bus labels) makes
this orders of magnitude faster while provably returning the same
answers, which the test suite checks against the literal MILP.

Search design:

* targets are placed in decreasing order of total traffic (first-fail),
* bus labels are symmetric, so only the first *empty* bus is ever tried
  (classic symmetry breaking; also guarantees dense bus numbering),
* a placement is pruned if it violates the per-window bandwidth of the
  bus (Eq. 4), a conflict (Eq. 7), or ``maxtb`` (Eq. 8),
* a global bound prunes nodes where the *remaining* demand cannot fit in
  the residual capacity of all buses,
* in optimization mode, a node is pruned when its max per-bus overlap
  already reaches the incumbent objective (the objective only grows as
  targets are added).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.preprocess import ConflictAnalysis
from repro.core.problem import CrossbarDesignProblem
from repro.errors import SolverError

__all__ = ["AssignmentResult", "solve_assignment"]


@dataclass(frozen=True)
class AssignmentResult:
    """Outcome of one assignment solve.

    ``status`` is ``"optimal"`` (proven), ``"feasible"`` (budget hit with
    an incumbent; optimization mode only) or ``"infeasible"`` (proven).
    """

    status: str
    binding: Optional[Tuple[int, ...]] = None
    objective: Optional[int] = None
    buses_used: int = 0
    nodes: int = 0

    @property
    def is_feasible(self) -> bool:
        """Whether a binding is available."""
        return self.binding is not None


class _BudgetExceeded(Exception):
    pass


def solve_assignment(
    problem: CrossbarDesignProblem,
    conflicts: ConflictAnalysis,
    num_buses: int,
    max_targets_per_bus: Optional[int] = None,
    optimize: bool = False,
    node_limit: int = 2_000_000,
    rng: Optional[random.Random] = None,
    overlap_budget: Optional[int] = None,
) -> AssignmentResult:
    """Find a feasible (or overlap-optimal) binding into ``num_buses``.

    With ``optimize`` the solver minimizes the maximum per-bus summed
    pairwise overlap (Eq. 11); otherwise it stops at the first feasible
    binding (the paper's MILP1 feasibility check). Passing ``rng``
    randomizes placement order and bus choice, producing the *random
    feasible binding* baseline of Sec. 7.3.

    ``overlap_budget`` bounds the maximum per-bus summed overlap of any
    returned binding: placements that would exceed it are pruned, and
    candidate buses are tried in increasing overlap-delta order so the
    search is deterministic. Feasibility mode with the budget set to a
    known optimal objective therefore returns one *canonical* optimal
    binding -- the device :mod:`repro.core.binding` uses to keep reports
    byte-identical no matter which MILP backend proved the objective.
    """
    num_targets = problem.num_targets
    if num_buses < 1:
        raise SolverError(f"num_buses must be >= 1, got {num_buses}")
    capacities = problem.capacities
    maxtb = max_targets_per_bus or num_targets
    comm = problem.comm
    overlap = problem.overlap_matrix

    order = sorted(
        range(num_targets), key=lambda t: (-int(comm[t].sum()), t)
    )
    if rng is not None:
        rng.shuffle(order)

    # conflict bitmasks: bit u set in conflict_bits[t] if t conflicts with u
    conflict_bits = [0] * num_targets
    for (i, j) in conflicts.reasons:
        conflict_bits[i] |= 1 << j
        conflict_bits[j] |= 1 << i

    # residual-demand bound: demand of targets not yet placed
    suffix_demand = np.zeros((num_targets + 1, problem.num_windows), dtype=np.int64)
    for depth in range(num_targets - 1, -1, -1):
        suffix_demand[depth] = suffix_demand[depth + 1] + comm[order[depth]]

    loads = np.zeros((num_buses, problem.num_windows), dtype=np.int64)
    total_load = np.zeros(problem.num_windows, dtype=np.int64)
    bus_members: List[List[int]] = [[] for _ in range(num_buses)]
    bus_bits = [0] * num_buses
    bus_overlap = [0] * num_buses
    assignment = [-1] * num_targets

    best_binding: Optional[List[int]] = None
    best_objective: Optional[int] = None
    nodes = 0

    def capacity_bound_violated(depth: int) -> bool:
        residual = num_buses * capacities - total_load
        return bool((suffix_demand[depth] > residual).any())

    def search(depth: int, used: int, current_max: int) -> bool:
        """DFS; returns True to stop the whole search (feasibility mode)."""
        nonlocal best_binding, best_objective, nodes, total_load
        nodes += 1
        if nodes > node_limit:
            raise _BudgetExceeded
        if depth == num_targets:
            best_binding = list(assignment)
            best_objective = current_max
            return not optimize
        if capacity_bound_violated(depth):
            return False
        target = order[depth]
        candidates = list(range(min(used + 1, num_buses)))
        if rng is not None:
            rng.shuffle(candidates)
        elif optimize or overlap_budget is not None:
            candidates.sort(
                key=lambda b: sum(overlap[target, u] for u in bus_members[b])
            )
        for bus in candidates:
            if len(bus_members[bus]) >= maxtb:
                continue
            if conflict_bits[target] & bus_bits[bus]:
                continue
            if ((loads[bus] + comm[target]) > capacities).any():
                continue
            delta = int(sum(overlap[target, u] for u in bus_members[bus]))
            new_bus_overlap = bus_overlap[bus] + delta
            new_max = max(current_max, new_bus_overlap)
            if overlap_budget is not None and new_max > overlap_budget:
                continue
            if (
                optimize
                and best_objective is not None
                and new_max >= best_objective
            ):
                continue
            # apply
            assignment[target] = bus
            bus_members[bus].append(target)
            bus_bits[bus] |= 1 << target
            bus_overlap[bus] = new_bus_overlap
            loads[bus] += comm[target]
            total_load += comm[target]
            stop = search(
                depth + 1, max(used, bus + 1), new_max
            )
            # undo
            loads[bus] -= comm[target]
            total_load -= comm[target]
            bus_overlap[bus] = new_bus_overlap - delta
            bus_bits[bus] &= ~(1 << target)
            bus_members[bus].pop()
            assignment[target] = -1
            if stop:
                return True
        return False

    budget_hit = False
    try:
        search(0, 0, 0)
    except _BudgetExceeded:
        budget_hit = True

    if best_binding is None:
        if budget_hit:
            raise SolverError(
                f"assignment search exhausted {node_limit} nodes without "
                f"an answer for {num_buses} buses"
            )
        return AssignmentResult(status="infeasible", nodes=nodes)

    buses_used = max(best_binding) + 1
    status = "feasible" if (budget_hit and optimize) else "optimal"
    return AssignmentResult(
        status=status,
        binding=tuple(best_binding),
        objective=int(best_objective),
        buses_used=buses_used,
        nodes=nodes,
    )
