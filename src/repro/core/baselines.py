"""Baseline design styles the paper compares against.

* :func:`average_traffic_design` -- prior work ([18], [19], [15] in the
  paper): size and bind by the *average* bandwidth over the whole run.
  Implemented by collapsing the analysis to a single window spanning the
  simulation and disabling overlap machinery -- the degenerate point of
  the window-size spectrum the paper describes in Sec. 2.
* :func:`peak_bandwidth_design` -- the other extreme ([4], Ho-Pinkston):
  eliminate contention outright by separating every pair of streams that
  ever overlaps; faithful to "even a small amount of overlap between two
  traffic streams would result in the need for separate communication
  resources".
* :func:`shared_bus_design` / :func:`full_crossbar_design` -- the fixed
  reference points of Table 1.
"""

from __future__ import annotations


from repro.core.binding import optimize_binding
from repro.core.preprocess import build_conflicts
from repro.core.problem import CrossbarDesignProblem
from repro.core.search import search_minimum_buses
from repro.core.spec import BusBinding, CrossbarDesign, SynthesisConfig
from repro.traffic.trace import TrafficTrace

__all__ = [
    "average_traffic_design",
    "peak_bandwidth_design",
    "shared_bus_design",
    "full_crossbar_design",
]


def _design_both_sides(
    trace: TrafficTrace, window_size: int, config: SynthesisConfig, label: str
) -> CrossbarDesign:
    sides = []
    for side_trace in (trace, trace.mirrored()):
        problem = CrossbarDesignProblem.from_trace(side_trace, window_size)
        conflicts = build_conflicts(problem, config)
        search = search_minimum_buses(problem, conflicts, config)
        binding = optimize_binding(problem, conflicts, search.num_buses, config)
        sides.append(binding)
    return CrossbarDesign(it=sides[0], ti=sides[1], label=label)


def average_traffic_design(trace: TrafficTrace) -> CrossbarDesign:
    """Design from whole-run average bandwidth (prior-work baseline).

    One window covering the entire simulation period, no overlap
    threshold conflicts, no criticality separation, no per-bus target
    cap: the design minimizes bus count against average bandwidth only,
    then binds (the overlap objective is degenerate since a single
    window's overlap carries no locality information).
    """
    config = SynthesisConfig(
        window_size=trace.total_cycles,
        overlap_threshold=0.5,  # pairs above 50% cannot share regardless
        max_targets_per_bus=None,
        use_criticality=False,
    )
    return _design_both_sides(
        trace, trace.total_cycles, config, label="average-traffic"
    )


def peak_bandwidth_design(
    trace: TrafficTrace, window_size: int = 1_000
) -> CrossbarDesign:
    """Contention-elimination design (Ho-Pinkston-style baseline).

    Any two streams that overlap at all in some window are forced onto
    different buses (overlap threshold zero), over-sizing the crossbar
    exactly the way the paper criticizes in Sec. 2.
    """
    config = SynthesisConfig(
        window_size=window_size,
        overlap_threshold=0.0,
        max_targets_per_bus=None,
        use_criticality=False,
    )
    return _design_both_sides(trace, window_size, config, label="peak-bandwidth")


def shared_bus_design(trace: TrafficTrace) -> CrossbarDesign:
    """One bus per direction: the paper's 'shared' reference point."""
    it = BusBinding(binding=(0,) * trace.num_targets, num_buses=1)
    ti = BusBinding(binding=(0,) * trace.num_initiators, num_buses=1)
    return CrossbarDesign(it=it, ti=ti, label="shared")


def full_crossbar_design(trace: TrafficTrace) -> CrossbarDesign:
    """One bus per core: the paper's 'full' reference point."""
    it = BusBinding(
        binding=tuple(range(trace.num_targets)), num_buses=trace.num_targets
    )
    ti = BusBinding(
        binding=tuple(range(trace.num_initiators)),
        num_buses=trace.num_initiators,
    )
    return CrossbarDesign(it=it, ti=ti, label="full")
