"""End-to-end crossbar synthesis flow (paper Fig. 3).

:class:`CrossbarSynthesizer` drives all four phases for both crossbars of
an application:

1. full-crossbar simulation (traffic collection),
2. window segmentation + overlap/criticality extraction,
3. pre-processing into the conflict matrix,
4. configuration search + optimal binding, then a validation simulation
   on the designed crossbar.

The target->initiator crossbar is designed by running the identical
pipeline on the mirrored trace (responses to initiators), per the
paper's "designed in a similar fashion".

Since the staged-pipeline refactor the synthesizer is a thin driver
over :class:`repro.pipeline.PipelineRunner`: each phase is a pipeline
stage with a content-addressed artifact, so repeated designs over the
same trace (sweeps, suite replays) share the collection/windowing/
conflict artifacts instead of recomputing them. Outputs are unchanged
-- a :class:`SynthesisReport` is assembled from the stage artifacts
exactly as the monolithic flow produced it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.descriptor import Application
from repro.core.preprocess import ConflictAnalysis
from repro.core.problem import CrossbarDesignProblem
from repro.core.search import SearchOutcome
from repro.core.spec import BusBinding, CrossbarDesign, SynthesisConfig
from repro.platform.soc import SimulationResult
from repro.traffic.trace import TrafficTrace

__all__ = ["SideReport", "SynthesisReport", "CrossbarSynthesizer"]


@dataclass(frozen=True)
class SideReport:
    """Diagnostics of one crossbar side's synthesis."""

    problem: CrossbarDesignProblem
    conflicts: ConflictAnalysis
    search: SearchOutcome
    binding: BusBinding


@dataclass(frozen=True)
class SynthesisReport:
    """Complete record of one synthesis run."""

    design: CrossbarDesign
    it_report: SideReport
    ti_report: SideReport
    trace: TrafficTrace
    config: SynthesisConfig

    def to_result(self):
        """Distill this report into a portable
        :class:`~repro.exec.serialize.SynthesisResult` (the record the
        execution engine caches and the CLI/report layer renders)."""
        from repro.exec.serialize import SynthesisResult

        return SynthesisResult.from_report(self)

    def summary(self) -> str:
        """Human-readable multi-line description of the outcome."""
        lines = [
            f"designed crossbar: {self.design.it.num_buses} IT buses + "
            f"{self.design.ti.num_buses} TI buses = {self.design.bus_count}",
            f"  window size: {self.it_report.problem.window_size} cycles, "
            f"overlap threshold: {self.config.overlap_threshold:.0%}",
            f"  IT conflicts: {self.it_report.conflicts.num_conflicts}, "
            f"search probes: {self.it_report.search.probes}",
            f"  TI conflicts: {self.ti_report.conflicts.num_conflicts}, "
            f"search probes: {self.ti_report.search.probes}",
            f"  max bus overlap (IT/TI): {self.design.it.max_bus_overlap}"
            f"/{self.design.ti.max_bus_overlap} cycles",
        ]
        return "\n".join(lines)


def _side_report(side) -> SideReport:
    """Assemble the classic per-side diagnostics from stage artifacts."""
    return SideReport(
        problem=side.windowed.problem,
        conflicts=side.conflicts.conflicts,
        search=side.binding.search,
        binding=side.binding.binding,
    )


class CrossbarSynthesizer:
    """The paper's design methodology, bundled behind one entry point.

    Example
    -------
    >>> from repro.apps import build_application
    >>> from repro.core import CrossbarSynthesizer, SynthesisConfig
    >>> app = build_application("mat2")
    >>> synthesizer = CrossbarSynthesizer(SynthesisConfig())
    >>> report = synthesizer.design(app)          # doctest: +SKIP
    >>> report.design.bus_count                   # doctest: +SKIP
    6
    """

    def __init__(
        self,
        config: Optional[SynthesisConfig] = None,
        pipeline=None,
    ) -> None:
        self.config = config or SynthesisConfig()
        # The pipeline import is deferred: repro.pipeline depends on the
        # core solver modules, so importing it at module scope here
        # would be circular.
        if pipeline is None:
            from repro.pipeline.runner import shared_runner

            pipeline = shared_runner()
        self.pipeline = pipeline

    def design(
        self,
        application: Application,
        trace: Optional[TrafficTrace] = None,
    ) -> SynthesisReport:
        """Run the full four-phase flow for an application.

        ``trace`` short-circuits Phase 1 when a full-crossbar trace is
        already available (e.g. the synthetic benchmark).
        """
        if trace is None:
            trace = application.simulate_full_crossbar().trace
        window = self.config.window_size or application.default_window
        return self.design_from_trace(trace, window)

    def design_from_trace(
        self, trace: TrafficTrace, window_size: Optional[int] = None
    ) -> SynthesisReport:
        """Phases 2-4 for both crossbars, from a full-crossbar trace.

        With ``config.variable_windows`` the analysis uses phase-aligned
        variable windows (the nominal window as the maximum size); the
        mirrored trace gets its own boundaries, since response phases
        need not line up with request phases.
        """
        window = window_size or self.config.window_size or 1_000
        outcome = self.pipeline.design(trace, self.config, window)
        return SynthesisReport(
            design=outcome.design,
            it_report=_side_report(outcome.it),
            ti_report=_side_report(outcome.ti),
            trace=trace,
            config=self.config,
        )

    def validate(
        self,
        application: Application,
        design: CrossbarDesign,
        max_cycles: Optional[int] = None,
    ) -> SimulationResult:
        """Phase 4's closing step: simulate the app on the designed
        crossbar."""
        return application.simulate(
            design.it.as_list(), design.ti.as_list(), max_cycles
        )
