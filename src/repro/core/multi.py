"""Robust multi-scenario crossbar synthesis.

The paper designs one crossbar per application; a shipping SoC fabric
must serve *every* use-case of the chip. This module merges the
per-scenario analyses into a single design problem so the unchanged
search/binding machinery (:func:`~repro.core.search.search_minimum_buses`
and :func:`~repro.core.binding.optimize_binding`) produces one crossbar
meeting all scenarios at once.

Merge policies
--------------
``union``
    Per-scenario windows are *concatenated* into one problem: every
    scenario's window-bandwidth constraint (Eq. 4) is enforced exactly,
    and the conflict matrix is the union of the per-scenario matrices.
    This is the exact robust formulation -- a binding feasible for the
    merged problem is feasible for each scenario individually.
``worst-case``
    An *envelope* problem: windows are aligned by index (zero-padded to
    the longest scenario) and ``comm``/``wo`` take the element-wise
    maximum across scenarios. More conservative than ``union`` (it can
    combine demands no single scenario produces) but keeps the window
    count of a single scenario, which the MILP backend appreciates.
``weighted``
    Bandwidth constraints as in ``union``; threshold/real-time conflict
    pairs are kept only when the scenarios exhibiting them carry at
    least ``min_weight`` of the total scenario weight. Rarely-exercised
    use-cases then stop forcing extra buses; capacity safety is
    unaffected (the solver enforces Eq. 4 regardless of the conflict
    matrix), only latency-isolation separations are relaxed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.binding import binding_overlap_objective, optimize_binding
from repro.core.preprocess import ConflictAnalysis, build_conflicts
from repro.core.problem import CrossbarDesignProblem
from repro.core.search import SearchOutcome, search_minimum_buses
from repro.core.spec import BusBinding, CrossbarDesign, SynthesisConfig
from repro.core.validate import audit_binding
from repro.errors import ConfigurationError
from repro.traffic.criticality import CriticalityReport
from repro.traffic.trace import TrafficTrace

__all__ = [
    "MERGE_POLICIES",
    "merge_criticality",
    "merge_problems",
    "merge_conflict_analyses",
    "ScenarioSideCheck",
    "RobustSideReport",
    "RobustSynthesisReport",
    "RobustSynthesizer",
]

MERGE_POLICIES = ("union", "worst-case", "weighted")


def _check_policy(policy: str) -> None:
    if policy not in MERGE_POLICIES:
        known = ", ".join(MERGE_POLICIES)
        raise ConfigurationError(
            f"unknown merge policy {policy!r}; available: {known}"
        )


def merge_criticality(reports: Sequence[CriticalityReport]) -> CriticalityReport:
    """Union of critical targets and forbidden pairs across scenarios."""
    targets: Set[int] = set()
    pairs: Set[Tuple[int, int]] = set()
    for report in reports:
        targets.update(report.critical_targets)
        pairs.update(report.conflicting_pairs)
    return CriticalityReport(
        critical_targets=tuple(sorted(targets)),
        conflicting_pairs=tuple(sorted(pairs)),
    )


def _check_shapes(problems: Sequence[CrossbarDesignProblem]) -> int:
    if not problems:
        raise ConfigurationError("need at least one scenario problem to merge")
    num_targets = problems[0].num_targets
    for problem in problems[1:]:
        if problem.num_targets != num_targets:
            raise ConfigurationError(
                "scenario problems disagree on the target count "
                f"({problem.num_targets} vs {num_targets}); a shared "
                "crossbar needs one platform shape across scenarios"
            )
    return num_targets


def merge_problems(
    problems: Sequence[CrossbarDesignProblem],
    policy: str = "union",
) -> CrossbarDesignProblem:
    """Fuse per-scenario design problems into one robust problem.

    ``union``/``weighted`` concatenate the scenarios' windows (each
    window keeps its own capacity, so scenarios with different analysis
    windows merge exactly); ``worst-case`` builds the element-wise
    maximum envelope over index-aligned, zero-padded windows.
    """
    _check_policy(policy)
    num_targets = _check_shapes(problems)
    criticality = merge_criticality([p.criticality for p in problems])
    names = problems[0].target_names

    if policy in ("union", "weighted"):
        comm = np.concatenate([p.comm for p in problems], axis=1)
        wo = np.concatenate([p.wo for p in problems], axis=2)
        capacities = np.concatenate([p.capacities for p in problems])
        return CrossbarDesignProblem(
            comm=comm,
            wo=wo,
            window_size=int(capacities.max()),
            criticality=criticality,
            target_names=names,
            capacities=capacities,
        )

    # worst-case envelope: align windows by index, pad tails with zeros
    num_windows = max(p.num_windows for p in problems)
    comm = np.zeros((num_targets, num_windows), dtype=np.int64)
    wo = np.zeros((num_targets, num_targets, num_windows), dtype=np.int64)
    capacities = np.ones(num_windows, dtype=np.int64)
    for problem in problems:
        width = problem.num_windows
        np.maximum(comm[:, :width], problem.comm, out=comm[:, :width])
        np.maximum(wo[:, :, :width], problem.wo, out=wo[:, :, :width])
        np.maximum(capacities[:width], problem.capacities, out=capacities[:width])
    # The envelope can pair one scenario's peak demand with another's
    # capacity; clamping to the per-window capacity keeps the problem
    # well-formed (comm <= capacity) while staying conservative.
    comm = np.minimum(comm, capacities[None, :])
    wo = np.minimum(wo, capacities[None, None, :])
    return CrossbarDesignProblem(
        comm=comm,
        wo=wo,
        window_size=int(capacities.max()),
        criticality=criticality,
        target_names=names,
        capacities=capacities,
    )


def merge_conflict_analyses(
    analyses: Sequence[ConflictAnalysis],
    policy: str = "union",
    weights: Optional[Sequence[float]] = None,
    min_weight: float = 0.5,
) -> ConflictAnalysis:
    """Merge per-scenario conflict matrices under a policy.

    ``union`` (and ``worst-case``, identical at the matrix level) keeps
    a pair that conflicts in *any* scenario -- the merged matrix
    dominates every input matrix element-wise. ``weighted`` keeps a pair
    only when the total weight of the scenarios exhibiting it reaches
    ``min_weight`` of the summed weights.
    """
    _check_policy(policy)
    if not analyses:
        raise ConfigurationError("need at least one conflict analysis to merge")
    num_targets = analyses[0].matrix.shape[0]
    for analysis in analyses[1:]:
        if analysis.matrix.shape[0] != num_targets:
            raise ConfigurationError(
                "conflict analyses disagree on the target count"
            )
    if weights is None:
        weights = [1.0] * len(analyses)
    if len(weights) != len(analyses):
        raise ConfigurationError(
            f"{len(weights)} weights for {len(analyses)} analyses"
        )
    if any(w < 0 for w in weights) or sum(weights) <= 0:
        raise ConfigurationError("weights must be non-negative with a positive sum")
    if not 0.0 < min_weight <= 1.0:
        raise ConfigurationError("min_weight must lie in (0, 1]")

    total_weight = float(sum(weights))
    pair_weight: Dict[Tuple[int, int], float] = {}
    pair_rules: Dict[Tuple[int, int], Set[str]] = {}
    for analysis, weight in zip(analyses, weights):
        for pair, rules in analysis.reasons.items():
            pair_weight[pair] = pair_weight.get(pair, 0.0) + weight
            pair_rules.setdefault(pair, set()).update(rules)

    matrix = np.zeros((num_targets, num_targets), dtype=bool)
    reasons: Dict[Tuple[int, int], frozenset] = {}
    for pair, weight in pair_weight.items():
        if policy == "weighted" and weight / total_weight < min_weight:
            continue
        i, j = pair
        matrix[i, j] = matrix[j, i] = True
        reasons[pair] = frozenset(pair_rules[pair])
    return ConflictAnalysis(matrix=matrix, reasons=reasons)


@dataclass(frozen=True)
class ScenarioSideCheck:
    """Replay of the shared binding against one scenario's own problem.

    ``capacity_violations`` lists Eq. 4 overflows (must be empty under
    the ``union`` policy -- the merged problem enforced every scenario's
    windows); ``separation_violations`` lists per-scenario conflict
    pairs the shared binding co-locates (possible under ``weighted``);
    ``max_bus_overlap`` is Eq. 11's objective evaluated on this
    scenario (the worst-case serialization-latency proxy).
    """

    name: str
    capacity_violations: Tuple[str, ...]
    separation_violations: Tuple[str, ...]
    max_bus_overlap: int

    @property
    def clean(self) -> bool:
        return not self.capacity_violations and not self.separation_violations


@dataclass(frozen=True)
class RobustSideReport:
    """One crossbar side of a robust synthesis run."""

    problem: CrossbarDesignProblem
    conflicts: ConflictAnalysis
    search: SearchOutcome
    binding: BusBinding
    scenario_checks: Tuple[ScenarioSideCheck, ...]
    stage_fingerprint: str = ""
    """Content fingerprint of the ``bind-merged`` pipeline stage that
    produced this side's solve (set by :meth:`design_from_artifacts`;
    empty when the solve did not run through the pipeline)."""

    @property
    def worst_case_overlap(self) -> int:
        """Largest per-scenario Eq. 11 objective under the shared binding."""
        if not self.scenario_checks:
            return self.binding.max_bus_overlap
        return max(check.max_bus_overlap for check in self.scenario_checks)


@dataclass(frozen=True)
class RobustSynthesisReport:
    """Complete record of one robust multi-scenario synthesis."""

    design: CrossbarDesign
    it_report: RobustSideReport
    ti_report: RobustSideReport
    policy: str
    scenario_names: Tuple[str, ...]

    @property
    def total_violations(self) -> int:
        """Violations across all scenarios and both crossbar sides."""
        return sum(
            len(check.capacity_violations) + len(check.separation_violations)
            for report in (self.it_report, self.ti_report)
            for check in report.scenario_checks
        )

    def summary(self) -> str:
        """Human-readable multi-line description of the outcome."""
        lines = [
            f"robust crossbar over {len(self.scenario_names)} scenarios "
            f"({self.policy} policy): {self.design.it.num_buses} IT buses + "
            f"{self.design.ti.num_buses} TI buses = {self.design.bus_count}",
            f"  merged IT conflicts: {self.it_report.conflicts.num_conflicts}, "
            f"TI conflicts: {self.ti_report.conflicts.num_conflicts}",
            f"  replay violations: {self.total_violations}",
        ]
        return "\n".join(lines)


def _empty_conflicts(num_targets: int) -> ConflictAnalysis:
    return ConflictAnalysis(
        matrix=np.zeros((num_targets, num_targets), dtype=bool), reasons={}
    )


class RobustSynthesizer:
    """Design one crossbar that serves every scenario of a suite.

    Phase 2 runs per scenario (each trace is windowed with its own
    analysis window), the merge policy fuses the per-scenario problems
    and conflict matrices, and phases 3-4 run once on the merged
    problem. The resulting shared binding is then *replayed* against
    every scenario's own problem (capacity audit + per-scenario conflict
    separation + Eq. 11 objective), so the report carries a per-scenario
    verdict, not just the merged one.
    """

    def __init__(
        self,
        config: Optional[SynthesisConfig] = None,
        policy: str = "union",
        min_weight: float = 0.5,
    ) -> None:
        _check_policy(policy)
        self.config = config or SynthesisConfig()
        self.policy = policy
        self.min_weight = min_weight

    def design(
        self,
        traces: Sequence[TrafficTrace],
        window_sizes: Sequence[int],
        names: Optional[Sequence[str]] = None,
        weights: Optional[Sequence[float]] = None,
    ) -> RobustSynthesisReport:
        """Run the robust flow over per-scenario full-crossbar traces."""
        if not traces:
            raise ConfigurationError("need at least one scenario trace")
        if len(window_sizes) != len(traces):
            raise ConfigurationError(
                f"{len(window_sizes)} windows for {len(traces)} traces"
            )
        return self.design_from_problems(
            [
                CrossbarDesignProblem.from_trace(trace, window)
                for trace, window in zip(traces, window_sizes)
            ],
            [
                CrossbarDesignProblem.from_trace(trace.mirrored(), window)
                for trace, window in zip(traces, window_sizes)
            ],
            names=names,
            weights=weights,
        )

    def design_from_problems(
        self,
        it_problems: Sequence[CrossbarDesignProblem],
        ti_problems: Sequence[CrossbarDesignProblem],
        names: Optional[Sequence[str]] = None,
        weights: Optional[Sequence[float]] = None,
    ) -> RobustSynthesisReport:
        """Robust phases 3-4 from pre-built per-scenario problems.

        ``it_problems[k]`` and ``ti_problems[k]`` are the two crossbar
        sides of scenario ``k`` (callers that already windowed every
        trace -- e.g. the suite runner -- skip the duplicate Phase 2).
        """
        if not it_problems or len(it_problems) != len(ti_problems):
            raise ConfigurationError(
                "need matching non-empty IT and TI problem lists"
            )
        names = self._check_names(names, len(it_problems))
        it_report = self._design_side(list(it_problems), names, weights)
        ti_report = self._design_side(list(ti_problems), names, weights)
        return self._assemble(it_report, ti_report, names)

    def design_from_artifacts(
        self,
        pipeline,
        it_sides: Sequence[tuple],
        ti_sides: Sequence[tuple],
        names: Optional[Sequence[str]] = None,
        weights: Optional[Sequence[float]] = None,
    ) -> RobustSynthesisReport:
        """The incremental robust path, from cached pipeline artifacts.

        ``it_sides[k]`` / ``ti_sides[k]`` are this side's
        ``(WindowedAnalysis, ConflictArtifact)`` pair for scenario ``k``
        (see :class:`repro.pipeline.PipelineRunner`). The per-scenario
        conflict matrices are *not* recomputed -- they come from the
        artifacts, which an unchanged scenario serves from cache -- and
        the merged search/binding solve runs through the pipeline's
        ``bind-merged`` stage, content-addressed by the per-scenario
        analysis fingerprints: re-running an unchanged suite performs
        zero solves, and editing one scenario re-solves only the merge.
        The cache hit/miss breakdown lands in the pipeline's stage
        counters (``pipeline.counters``).
        """
        if not it_sides or len(it_sides) != len(ti_sides):
            raise ConfigurationError(
                "need matching non-empty IT and TI artifact lists"
            )
        names = self._check_names(names, len(it_sides))
        reports = []
        for sides in (it_sides, ti_sides):
            windows = [windowed for windowed, _conflicts in sides]
            conflict_artifacts = [conflicts for _windowed, conflicts in sides]
            upstream = [w.fingerprint for w in windows] + [
                c.fingerprint for c in conflict_artifacts
            ]
            merge_spec = self._merge_spec(weights)
            solved_fingerprints: List[str] = []

            def solver(
                problem,
                conflicts,
                _upstream=upstream,
                _spec=merge_spec,
                _solved=solved_fingerprints,
            ):
                artifact = pipeline.bind_merged(
                    problem, conflicts, self.config, _upstream, _spec
                )
                _solved.append(artifact.fingerprint)
                return artifact.search, artifact.binding

            report = self._design_side(
                [w.problem for w in windows],
                names,
                weights,
                per_scenario_conflicts=[
                    c.conflicts for c in conflict_artifacts
                ],
                solver=solver,
            )
            if solved_fingerprints:
                report = replace(
                    report, stage_fingerprint=solved_fingerprints[-1]
                )
            reports.append(report)
        return self._assemble(reports[0], reports[1], names)

    def _merge_spec(self, weights: Optional[Sequence[float]]) -> dict:
        """The merge-stage configuration slice for content addressing."""
        spec: dict = {"policy": self.policy}
        if self.policy == "weighted":
            spec["weights"] = None if weights is None else list(weights)
            spec["min_weight"] = self.min_weight
        if self.policy == "worst-case":
            # The envelope derives its conflicts from the merged problem,
            # so the conflict-stage knobs re-enter the key here.
            spec["overlap_threshold"] = self.config.overlap_threshold
            spec["use_criticality"] = self.config.use_criticality
        return spec

    @staticmethod
    def _check_names(
        names: Optional[Sequence[str]], count: int
    ) -> Sequence[str]:
        if names is None:
            names = [f"scenario-{index}" for index in range(count)]
        if len(names) != count:
            raise ConfigurationError(
                f"{len(names)} names for {count} scenarios"
            )
        return names

    def _assemble(
        self,
        it_report: RobustSideReport,
        ti_report: RobustSideReport,
        names: Sequence[str],
    ) -> RobustSynthesisReport:
        design = CrossbarDesign(
            it=it_report.binding,
            ti=ti_report.binding,
            label=f"robust-{self.policy}",
        )
        return RobustSynthesisReport(
            design=design,
            it_report=it_report,
            ti_report=ti_report,
            policy=self.policy,
            scenario_names=tuple(names),
        )

    def _design_side(
        self,
        problems: List[CrossbarDesignProblem],
        names: Sequence[str],
        weights: Optional[Sequence[float]],
        per_scenario_conflicts: Optional[List[ConflictAnalysis]] = None,
        solver=None,
    ) -> RobustSideReport:
        if per_scenario_conflicts is None:
            per_scenario_conflicts = [
                build_conflicts(problem, self.config) for problem in problems
            ]
        merged_problem = merge_problems(problems, self.policy)
        if self.policy == "worst-case":
            # The envelope problem has its own (stronger) window data, so
            # its conflicts are derived from the envelope directly.
            merged_conflicts = build_conflicts(merged_problem, self.config)
        else:
            merged_conflicts = merge_conflict_analyses(
                per_scenario_conflicts,
                policy=self.policy,
                weights=weights,
                min_weight=self.min_weight,
            )
        if solver is not None:
            # The incremental path: the solve is a content-addressed
            # pipeline stage (audited at compute time, reused otherwise).
            search, binding = solver(merged_problem, merged_conflicts)
        else:
            search = search_minimum_buses(
                merged_problem, merged_conflicts, self.config
            )
            binding = optimize_binding(
                merged_problem, merged_conflicts, search.num_buses, self.config
            )
            audit_binding(
                merged_problem,
                merged_conflicts,
                binding.binding,
                self.config.max_targets_per_bus,
                raise_on_violation=True,
            )
        checks = tuple(
            self._check_scenario(name, problem, conflicts, binding)
            for name, problem, conflicts in zip(
                names, problems, per_scenario_conflicts
            )
        )
        return RobustSideReport(
            problem=merged_problem,
            conflicts=merged_conflicts,
            search=search,
            binding=binding,
            scenario_checks=checks,
        )

    def _check_scenario(
        self,
        name: str,
        problem: CrossbarDesignProblem,
        conflicts: ConflictAnalysis,
        binding: BusBinding,
    ) -> ScenarioSideCheck:
        # The two violation classes are computed separately (rather than
        # parsed out of one audit's message strings): capacity comes
        # from a conflict-free audit (Eq. 3/4 only; maxtb is audited on
        # the merged problem), separation directly from this scenario's
        # conflict pairs.
        capacity = tuple(
            audit_binding(
                problem,
                _empty_conflicts(problem.num_targets),
                binding.binding,
                max_targets_per_bus=None,
            )
        )
        separation = tuple(
            f"conflicting targets {i} and {j} share bus {binding.binding[i]} "
            f"({','.join(sorted(conflicts.reasons[i, j]))})"
            for (i, j) in conflicts.conflicting_pairs()
            if binding.binding[i] == binding.binding[j]
        )
        return ScenarioSideCheck(
            name=name,
            capacity_violations=capacity,
            separation_violations=separation,
            max_bus_overlap=binding_overlap_objective(problem, binding.binding),
        )
