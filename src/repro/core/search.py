"""Crossbar configuration search (paper Sec. 6, first step).

The minimum feasible bus count is located by binary search over
configurations, testing each candidate with the feasibility problem
(MILP1 / the assignment solver). Feasibility is monotone in the bus
count -- any binding into ``k`` buses is also a binding into ``k + 1`` --
so binary search is exact.

The search range is tightened from below by two bounds computed in the
earlier phases: the window bandwidth bound (``ceil`` of peak aggregate
demand) and the conflict-clique bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.assignment import solve_assignment
from repro.core.formulation import build_feasibility_model
from repro.core.instrumentation import record_solve
from repro.core.preprocess import ConflictAnalysis
from repro.core.problem import CrossbarDesignProblem
from repro.core.spec import SynthesisConfig
from repro.errors import SynthesisError
from repro.milp import BranchBoundOptions, SolveStatus, solve_milp

__all__ = ["SearchOutcome", "search_minimum_buses"]


@dataclass(frozen=True)
class SearchOutcome:
    """Result of the configuration search.

    Attributes
    ----------
    num_buses:
        The minimum feasible bus count.
    feasible_binding:
        The witness binding found at ``num_buses`` (not yet
        overlap-optimized).
    lower_bound:
        The analytic lower bound the search started from.
    probes:
        Map of candidate bus count -> feasibility verdict, recording the
        binary-search trajectory.
    """

    num_buses: int
    feasible_binding: tuple
    lower_bound: int
    probes: Dict[int, bool]


def _is_feasible(
    problem: CrossbarDesignProblem,
    conflicts: ConflictAnalysis,
    num_buses: int,
    config: SynthesisConfig,
):
    """Feasibility check; returns a witness binding or None."""
    record_solve("feasibility")
    if config.backend == "milp":
        crossbar_model = build_feasibility_model(
            problem, conflicts, num_buses, config.max_targets_per_bus
        )
        solution = solve_milp(
            crossbar_model.model,
            BranchBoundOptions(
                lp_engine=config.lp_engine,
                feasibility_only=True,
                node_limit=config.node_limit,
            ),
        )
        if solution.status is SolveStatus.NODE_LIMIT:
            raise SynthesisError(
                f"MILP feasibility check for {num_buses} buses exhausted the "
                f"node budget"
            )
        if solution.is_feasible:
            return crossbar_model.extract_binding(solution)
        return None
    result = solve_assignment(
        problem,
        conflicts,
        num_buses,
        max_targets_per_bus=config.max_targets_per_bus,
        optimize=False,
        node_limit=config.node_limit,
    )
    return result.binding if result.is_feasible else None


def search_minimum_buses(
    problem: CrossbarDesignProblem,
    conflicts: ConflictAnalysis,
    config: SynthesisConfig,
) -> SearchOutcome:
    """Binary-search the minimum feasible crossbar configuration."""
    num_targets = problem.num_targets
    lower = max(
        problem.bandwidth_lower_bound(),
        conflicts.clique_lower_bound(),
    )
    if config.max_targets_per_bus is not None:
        lower = max(
            lower,
            -(-num_targets // config.max_targets_per_bus),  # ceil division
        )
    lower = min(lower, num_targets)
    probes: Dict[int, bool] = {}
    witnesses: Dict[int, tuple] = {}

    def probe(k: int) -> bool:
        witness = _is_feasible(problem, conflicts, k, config)
        probes[k] = witness is not None
        if witness is not None:
            witnesses[k] = witness
        return witness is not None

    if not probe(num_targets):
        raise SynthesisError(
            "even the full crossbar is infeasible: a single target exceeds "
            "the window bandwidth or conflicts with itself -- check the "
            "window size"
        )
    low, high = lower, num_targets  # invariant: high is feasible
    if probe(low):
        high = low
    else:
        while high - low > 1:
            mid = (low + high) // 2
            if probe(mid):
                high = mid
            else:
                low = mid
    binding = witnesses[high]
    return SearchOutcome(
        num_buses=high,
        feasible_binding=tuple(binding),
        lower_bound=lower,
        probes=dict(sorted(probes.items())),
    )
