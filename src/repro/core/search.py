"""Crossbar configuration search (paper Sec. 6, first step).

The minimum feasible bus count is located by binary search over
configurations, testing each candidate with the feasibility problem
(MILP1 / the assignment solver). Feasibility is monotone in the bus
count -- any binding into ``k`` buses is also a binding into ``k + 1`` --
so binary search is exact.

The search range is tightened from below by two bounds computed in the
earlier phases: the window bandwidth bound (``ceil`` of peak aggregate
demand) and the conflict-clique bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.assignment import solve_assignment
from repro.core.formulation import build_feasibility_model
from repro.core.instrumentation import record_solve
from repro.core.preprocess import ConflictAnalysis
from repro.core.problem import CrossbarDesignProblem
from repro.core.spec import SynthesisConfig
from repro.errors import SolverError, SynthesisError
from repro.milp import SolveStatus, solve_milp

__all__ = ["SearchOutcome", "search_minimum_buses"]


@dataclass(frozen=True)
class SearchOutcome:
    """Result of the configuration search.

    Attributes
    ----------
    num_buses:
        The minimum feasible bus count.
    feasible_binding:
        The witness binding found at ``num_buses`` (not yet
        overlap-optimized).
    lower_bound:
        The analytic lower bound the search started from.
    probes:
        Map of candidate bus count -> feasibility verdict, recording the
        binary-search trajectory.
    """

    num_buses: int
    feasible_binding: tuple
    lower_bound: int
    probes: Dict[int, bool]


def _canonical_witness(
    problem: CrossbarDesignProblem,
    conflicts: ConflictAnalysis,
    num_buses: int,
    config: SynthesisConfig,
    crossbar_model,
    solution,
):
    """Re-derive a MILP feasibility witness deterministically.

    Exact MILP backends agree that a witness *exists* but not on which
    one they find, and the witness is serialized into binding
    artifacts -- so byte-identity across backends (and across warm vs
    cold solves) requires deriving it from the verdict, not the solve:
    the same deterministic assignment DFS the default backend runs.
    Falls back to the backend's own witness if the DFS exhausts its
    node budget; a DFS *proof* of infeasibility contradicting the MILP
    verdict is a solver bug and raises.
    """
    try:
        result = solve_assignment(
            problem,
            conflicts,
            num_buses,
            max_targets_per_bus=config.max_targets_per_bus,
            optimize=False,
            node_limit=config.node_limit,
        )
    except SolverError:
        return crossbar_model.extract_binding(solution)
    if not result.is_feasible:
        raise SynthesisError(
            f"MILP found {num_buses} buses feasible but the assignment "
            f"oracle proves them infeasible -- solver disagreement"
        )
    return result.binding


def _is_feasible(
    problem: CrossbarDesignProblem,
    conflicts: ConflictAnalysis,
    num_buses: int,
    config: SynthesisConfig,
    warm_binding=None,
):
    """Feasibility check; returns a witness binding or None.

    ``warm_binding`` is an advisory hint: when it still satisfies the
    current model it short-circuits the MILP probe (a valid binding
    *is* a feasibility proof); when stale it is rejected during
    validation and the probe runs cold. Either way the returned witness
    is canonical, so search outcomes stay byte-identical.
    """
    if config.backend == "milp":
        from repro.core.binding import milp_solver_options

        options = milp_solver_options(config, feasibility_only=True)
        record_solve("feasibility", backend=options.resolve_backend())
        crossbar_model = build_feasibility_model(
            problem, conflicts, num_buses, config.max_targets_per_bus
        )
        warm_values = None
        if warm_binding is not None and len(warm_binding) == problem.num_targets:
            warm_values = crossbar_model.warm_values(warm_binding)
        solution = solve_milp(
            crossbar_model.model, options, warm_values=warm_values
        )
        if solution.status is SolveStatus.NODE_LIMIT:
            raise SynthesisError(
                f"MILP feasibility check for {num_buses} buses exhausted the "
                f"node budget"
            )
        if solution.is_feasible:
            return _canonical_witness(
                problem, conflicts, num_buses, config, crossbar_model, solution
            )
        return None
    record_solve("feasibility")
    result = solve_assignment(
        problem,
        conflicts,
        num_buses,
        max_targets_per_bus=config.max_targets_per_bus,
        optimize=False,
        node_limit=config.node_limit,
    )
    return result.binding if result.is_feasible else None


def search_minimum_buses(
    problem: CrossbarDesignProblem,
    conflicts: ConflictAnalysis,
    config: SynthesisConfig,
    warm_binding=None,
) -> SearchOutcome:
    """Binary-search the minimum feasible crossbar configuration.

    ``warm_binding`` (a cached binding from a similar earlier problem)
    is forwarded to every feasibility probe as an advisory warm start;
    it can only accelerate probes whose bus count covers it and whose
    constraints it still satisfies -- verdicts, and therefore the
    outcome, never depend on it.
    """
    num_targets = problem.num_targets
    lower = max(
        problem.bandwidth_lower_bound(),
        conflicts.clique_lower_bound(),
    )
    if config.max_targets_per_bus is not None:
        lower = max(
            lower,
            -(-num_targets // config.max_targets_per_bus),  # ceil division
        )
    lower = min(lower, num_targets)
    probes: Dict[int, bool] = {}
    witnesses: Dict[int, tuple] = {}

    def probe(k: int) -> bool:
        witness = _is_feasible(problem, conflicts, k, config, warm_binding)
        probes[k] = witness is not None
        if witness is not None:
            witnesses[k] = witness
        return witness is not None

    if not probe(num_targets):
        raise SynthesisError(
            "even the full crossbar is infeasible: a single target exceeds "
            "the window bandwidth or conflicts with itself -- check the "
            "window size"
        )
    low, high = lower, num_targets  # invariant: high is feasible
    if probe(low):
        high = low
    else:
        while high - low > 1:
            mid = (low + high) // 2
            if probe(mid):
                high = mid
            else:
                low = mid
    binding = witnesses[high]
    return SearchOutcome(
        num_buses=high,
        feasible_binding=tuple(binding),
        lower_bound=lower,
        probes=dict(sorted(probes.items())),
    )
