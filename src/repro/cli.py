"""Command-line interface.

The CLI wraps the library's main entry points for quick exploration::

    python -m repro list
    python -m repro design mat2 --window 1000 --threshold 0.3
    python -m repro compare des --jobs 4 --trace spans.jsonl
    python -m repro trace mat2 -o mat2.jsonl
    python -m repro trace spans.jsonl --export-chrome spans.json
    python -m repro sweep-window --burst 1000 --jobs 4 --cache-dir .cache
    python -m repro scenarios list
    python -m repro scenarios run smoke --jobs 4 --report suite.json
    python -m repro scenarios run smoke --replay-latency --explain-cache
    python -m repro scenarios export mixed -o mixed.json
    python -m repro pipeline inspect mat2 --cache-dir .cache
    python -m repro pipeline inspect mixed --cache-dir .cache
    python -m repro cache stats .cache
    python -m repro cache prune .cache --max-bytes 1000000

All commands print plain-text tables (see :mod:`repro.analysis.report`).
Commands that solve or simulate independent points accept ``--jobs``
(process-pool fan-out) and ``--cache-dir`` (content-addressed result
cache, reused across invocations) and route through
:class:`repro.exec.ExecutionEngine`. The same commands accept
``--profile``, which prints a per-phase wall-clock breakdown
(windowing / overlap / conflicts / solve) plus the per-stage pipeline
timings the metrics registry recorded during the run, and ``--trace
FILE``, which arms span tracing around the command and writes the
captured spans as JSONL -- feed that file back to ``repro trace`` for
an indented tree or a Chrome/Perfetto export.

``repro trace`` is dual-mode on its positional argument: an
application name dumps its traffic trace as JSONL (``-o`` required),
an existing span-JSONL file renders the span tree (optionally
``--export-chrome``).
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import List, Optional

from repro.analysis import (
    compare_designs,
    format_synthesis_result,
    format_table,
    window_size_sweep,
)
from repro.apps import APPLICATIONS, build_application
from repro.apps.synthetic import synthetic_trace
from repro.core import (
    SynthesisConfig,
    average_traffic_design,
    full_crossbar_design,
    shared_bus_design,
)
from repro.errors import ReproError
from repro.exec import ExecutionEngine
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.profiling import PHASE_TIMER
from repro.traffic import save_trace_jsonl

__all__ = ["main", "build_parser"]


def _add_engine_options(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent points "
        "(1 = serial, 0 = one per CPU)",
    )
    subparser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache; repeated runs skip "
        "already-solved points",
    )
    subparser.add_argument(
        "--profile", action="store_true",
        help="print a per-phase timing breakdown (windowing / overlap / "
        "conflicts / solve) and the per-stage pipeline timings after "
        "the run",
    )
    subparser.add_argument(
        "--trace", dest="trace_out", default=None, metavar="FILE",
        help="arm span tracing for this run and write the captured "
        "spans as JSONL to FILE (inspect with 'repro trace FILE')",
    )
    subparser.add_argument(
        "--no-shm", action="store_true",
        help="disable the shared stage plane (mmap sidecar tier + "
        "shared-memory window tensors published to pool workers); "
        "results are identical either way",
    )


def _stage_seconds_snapshot():
    """``{stage: (count, seconds)}`` from the pipeline stage histogram."""
    hist = _metrics.REGISTRY.get("repro_stage_seconds")
    if hist is None:
        return {}
    return {
        key[0]: (child.count, child.total)
        for key, child in hist.collect().items()
    }


def _counter_snapshot(name):
    """``{label_tuple: value}`` for a labelled counter family."""
    counter = _metrics.REGISTRY.get(name)
    if counter is None:
        return {}
    return dict(counter.collect())


class _PhaseProfile:
    """Collects and prints the per-phase breakdown around one command.

    Phases are timed by the process-global
    :data:`repro.profiling.PHASE_TIMER`; with ``--jobs`` > 1 the
    synthesis work runs in pool workers whose timers this process cannot
    see, so the report warns when most phases recorded nothing.

    Pipeline stage timings come from the (monotonic) metrics registry,
    so the run's share is the difference between the snapshot taken
    here and the one taken at :meth:`report` -- the registry itself is
    never reset outside tests.
    """

    def __init__(self, enabled: bool, jobs: int) -> None:
        self.enabled = enabled
        self.jobs = jobs
        if enabled:
            PHASE_TIMER.reset()
            self._stages_begin = _stage_seconds_snapshot()
            self._solves_begin = _counter_snapshot("repro_solves_total")
            self._races_begin = _counter_snapshot("repro_race_wins_total")
        self._begin = time.perf_counter()

    def report(self) -> None:
        if not self.enabled:
            return
        elapsed = time.perf_counter() - self._begin
        print()
        print(PHASE_TIMER.format_report(total_elapsed=elapsed))
        rows = []
        for stage, (count, seconds) in sorted(
            _stage_seconds_snapshot().items()
        ):
            before_count, before_seconds = self._stages_begin.get(
                stage, (0, 0.0)
            )
            if count > before_count:
                rows.append(
                    [stage, count - before_count,
                     f"{(seconds - before_seconds) * 1e3:.1f}"]
                )
        if rows:
            print()
            print(
                format_table(
                    ["stage", "computed", "total ms"],
                    rows,
                    title="pipeline stages (this run)",
                )
            )
        solve_rows = []
        for key, value in sorted(
            _counter_snapshot("repro_solves_total").items()
        ):
            delta = value - self._solves_begin.get(key, 0)
            if delta:
                kind, backend = key
                solve_rows.append([kind, backend, int(delta)])
        for key, value in sorted(
            _counter_snapshot("repro_race_wins_total").items()
        ):
            delta = value - self._races_begin.get(key, 0)
            if delta:
                solve_rows.append(["race win", key[0], int(delta)])
        if solve_rows:
            print()
            print(
                format_table(
                    ["solve", "backend", "count"],
                    solve_rows,
                    title="solver backends (this run)",
                )
            )
        if self.jobs > 1 and not PHASE_TIMER.totals:
            print(
                "note: with --jobs > 1 synthesis phases run in worker "
                "processes and are timed there, not here"
            )


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Application-specific STbus crossbar generation "
        "(Murali & De Micheli, DATE 2005).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the bundled benchmark applications")

    design = sub.add_parser(
        "design", help="run the synthesis flow on an application"
    )
    design.add_argument("app", help="application name (see 'list')")
    design.add_argument(
        "--window", type=int, default=None,
        help="analysis window in cycles (default: app-specific)",
    )
    design.add_argument(
        "--threshold", type=float, default=0.3,
        help="overlap threshold as a fraction of the window (0..0.5)",
    )
    design.add_argument(
        "--maxtb", type=int, default=4,
        help="max targets per bus (0 disables the limit)",
    )
    design.add_argument(
        "--backend", choices=("assignment", "milp"), default="assignment",
        help="feasibility/binding solver backend",
    )
    design.add_argument(
        "--milp-backend", choices=("reference", "highs", "portfolio"),
        default=None,
        help="MILP solver tier for --backend milp (default: "
        "$REPRO_MILP_BACKEND, else the pure-Python reference solver)",
    )
    design.add_argument(
        "--validate", action="store_true",
        help="re-simulate the designed crossbar and report latency",
    )
    _add_engine_options(design)

    compare = sub.add_parser(
        "compare",
        help="evaluate shared / average-traffic / windowed / full designs",
    )
    compare.add_argument("app", help="application name")
    _add_engine_options(compare)

    trace = sub.add_parser(
        "trace",
        help="dump an application's traffic trace, or inspect a span "
        "capture",
        description="Dual-mode: an application name dumps its "
        "full-crossbar traffic trace as JSONL (-o required); an "
        "existing span-JSONL file (from --trace FILE or a worker "
        "spool) prints the span tree and optionally exports Chrome "
        "trace-event JSON for chrome://tracing / Perfetto.",
    )
    trace.add_argument(
        "app",
        help="application name (see 'list') or a span-JSONL file path",
    )
    trace.add_argument(
        "-o", "--output", default=None,
        help="output path (traffic-trace mode only, required there)",
    )
    trace.add_argument(
        "--export-chrome", default=None, metavar="FILE",
        help="span mode: also write Chrome trace-event JSON to FILE",
    )

    sweep = sub.add_parser(
        "sweep-window",
        help="crossbar size vs window size on the synthetic benchmark",
    )
    sweep.add_argument("--burst", type=int, default=1_000)
    sweep.add_argument(
        "--windows", type=int, nargs="+",
        default=[200, 500, 1_000, 2_000, 4_000, 20_000],
    )
    _add_engine_options(sweep)

    scenarios = sub.add_parser(
        "scenarios",
        help="multi-use-case suites: one robust crossbar for many workloads",
    )
    scenarios_sub = scenarios.add_subparsers(dest="scenarios_command",
                                             required=True)
    scenarios_sub.add_parser(
        "list", help="list the built-in scenario suites"
    )
    run = scenarios_sub.add_parser(
        "run",
        help="synthesize every scenario plus one robust design for a suite",
    )
    run.add_argument(
        "suite",
        help="built-in suite name (see 'scenarios list') or a suite JSON file",
    )
    run.add_argument(
        "--policy", choices=("union", "worst-case", "weighted"),
        default="union", help="conflict/problem merge policy",
    )
    run.add_argument(
        "--min-weight", type=float, default=0.5,
        help="weighted policy: minimum weight fraction for a conflict "
        "pair to survive the merge",
    )
    run.add_argument(
        "--threshold", type=float, default=0.3,
        help="overlap threshold as a fraction of the window (0..0.5)",
    )
    run.add_argument(
        "--maxtb", type=int, default=4,
        help="max targets per bus (0 disables the limit)",
    )
    run.add_argument(
        "--report", default=None, metavar="FILE",
        help="also write the aggregated report as JSON",
    )
    run.add_argument(
        "--replay-latency", action="store_true",
        help="also replay the robust design through the platform "
        "simulator for every scenario (live programs for full-load "
        "app scenarios, trace-driven replay for profile-backed, "
        "load-scaled and thinned ones) and report average latency",
    )
    run.add_argument(
        "--explain-cache", action="store_true",
        help="print the per-stage computed/memo-hit/disk-hit breakdown "
        "of the staged pipeline after the run",
    )
    _add_engine_options(run)
    export = scenarios_sub.add_parser(
        "export", help="write a built-in suite as an editable JSON file"
    )
    export.add_argument("suite", help="built-in suite name")
    export.add_argument("-o", "--output", required=True, help="output path")

    pipeline = sub.add_parser(
        "pipeline",
        help="the staged synthesis flow: inspect stage artifacts",
    )
    pipeline_sub = pipeline.add_subparsers(dest="pipeline_command",
                                           required=True)
    inspect = pipeline_sub.add_parser(
        "inspect",
        help="run the staged flow on an application or a scenario suite "
        "and print every stage artifact with its content-addressed "
        "fingerprint (suites get the per-scenario DAG, including the "
        "latency-replay stage)",
    )
    inspect.add_argument(
        "app",
        help="application name (see 'list'), built-in suite name "
        "(see 'scenarios list') or a suite JSON file",
    )
    inspect.add_argument(
        "--window", type=int, default=None,
        help="analysis window in cycles (default: app-specific)",
    )
    inspect.add_argument(
        "--threshold", type=float, default=0.3,
        help="overlap threshold as a fraction of the window (0..0.5)",
    )
    inspect.add_argument(
        "--maxtb", type=int, default=4,
        help="max targets per bus (0 disables the limit)",
    )
    inspect.add_argument(
        "--backend", choices=("assignment", "milp"), default="assignment",
        help="feasibility/binding solver backend",
    )
    inspect.add_argument(
        "--milp-backend", choices=("reference", "highs", "portfolio"),
        default=None,
        help="MILP solver tier for --backend milp (default: "
        "$REPRO_MILP_BACKEND, else the pure-Python reference solver)",
    )
    inspect.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist serializable stage artifacts here; a repeated "
        "inspect reuses the solved binding stages",
    )

    cache = sub.add_parser(
        "cache", help="maintain a result/stage cache directory"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry count and on-disk bytes of a cache directory"
    )
    cache_stats.add_argument("cache_dir", metavar="DIR")
    cache_prune = cache_sub.add_parser(
        "prune",
        help="evict least-recently-used entries down to a byte budget",
    )
    cache_prune.add_argument("cache_dir", metavar="DIR")
    cache_prune.add_argument(
        "--max-bytes", type=int, required=True, metavar="N",
        help="keep evicting oldest-used entries until the cache fits N bytes",
    )

    serve = sub.add_parser(
        "serve",
        help="run the long-lived synthesis daemon (HTTP/JSON API)",
        description="Serve synthesis jobs over HTTP: async job queue, "
        "request coalescing by content address, cache-backed warm "
        "paths. See docs/http-api.md for the endpoint reference.",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="bind address (default: loopback only)",
    )
    serve.add_argument(
        "--port", type=int, default=8321, metavar="PORT",
        help="listen port (0 = pick a free port and print it)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent job slots in the queue",
    )
    serve.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="engine worker processes available to each job "
        "(1 = serial, 0 = one per CPU)",
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared result/stage cache; warm requests answer without "
        "re-solving, even across daemon restarts",
    )
    serve.add_argument(
        "--verbose", action="store_true",
        help="log each HTTP request to stderr",
    )
    serve.add_argument(
        "--log-json", action="store_true",
        help="emit one JSON object per request/job transition to "
        "stderr (machine-readable; default is plain text)",
    )
    serve.add_argument(
        "--no-trace", action="store_true",
        help="disable span tracing (enabled by default; traces are "
        "served at GET /v1/jobs/<id>/trace)",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="fail any job that runs longer than this wall-clock bound "
        "(default: unbounded)",
    )
    serve.add_argument(
        "--finished-ttl", type=float, default=None, metavar="SECONDS",
        help="evict finished jobs from the registries after this long; "
        "the whole-result cache still answers warmly (default: keep "
        "forever)",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=None, metavar="N",
        help="shed new requests with 503 + Retry-After once N jobs are "
        "queued (default: unbounded)",
    )
    serve.add_argument(
        "--faults", default=None, metavar="PLAN",
        help="install a deterministic fault-injection plan (inline JSON "
        "or a path to a JSON file) for chaos testing; exported to "
        "workers via REPRO_FAULTS",
    )
    serve.add_argument(
        "--no-shm", action="store_true",
        help="disable the shared stage plane (cross-job window-tensor "
        "sharing and the mmap sidecar tier); results are identical "
        "either way",
    )
    return parser


def _cmd_list() -> int:
    rows = []
    for name in sorted(APPLICATIONS):
        app = build_application(name)
        rows.append(
            [name, app.num_initiators, app.num_targets, app.num_cores,
             app.description]
        )
    print(
        format_table(
            ["name", "initiators", "targets", "cores", "description"], rows
        )
    )
    return 0


def _config_from_args(args) -> SynthesisConfig:
    return SynthesisConfig(
        window_size=args.window,
        overlap_threshold=args.threshold,
        max_targets_per_bus=args.maxtb or None,
        backend=args.backend,
        milp_backend=getattr(args, "milp_backend", None),
    )


def _engine_from_args(args) -> ExecutionEngine:
    if getattr(args, "no_shm", False):
        from repro.pipeline import shm

        shm.set_enabled(False)
    return ExecutionEngine(jobs=args.jobs, cache=args.cache_dir)


def _cmd_design(args) -> int:
    app = build_application(args.app)
    engine = _engine_from_args(args)
    config = _config_from_args(args)
    profile = _PhaseProfile(args.profile, args.jobs)
    print(f"designing crossbars for {app.name} ({app.num_cores} cores) ...")
    full_run = app.simulate_full_crossbar()
    result = engine.synthesize(
        full_run.trace,
        config,
        window_size=args.window or app.default_window,
        application=app.name,
    )
    print(
        format_synthesis_result(
            result,
            target_names=full_run.trace.target_names,
            initiator_names=full_run.trace.initiator_names,
        )
    )
    if args.validate:
        validation = app.simulate(
            result.design.it.as_list(),
            result.design.ti.as_list(),
            app.sim_cycles * 4,
        )
        full_stats = full_run.latency_stats()
        designed_stats = validation.latency_stats()
        print(
            format_table(
                ["design", "buses", "avg lat (cy)", "max lat (cy)"],
                [
                    ["full", app.num_cores, full_stats.mean,
                     full_stats.maximum],
                    ["designed", result.design.bus_count,
                     designed_stats.mean, designed_stats.maximum],
                ],
                title="\nvalidation",
            )
        )
    if engine.cache is not None:
        print(f"cache: {engine.cache.stats}")
    profile.report()
    return 0


def _cmd_compare(args) -> int:
    app = build_application(args.app)
    engine = _engine_from_args(args)
    profile = _PhaseProfile(args.profile, args.jobs)
    trace = app.simulate_full_crossbar().trace
    windowed = engine.synthesize(
        trace,
        SynthesisConfig(),
        window_size=app.default_window,
        application=app.name,
    ).design
    designs = [
        shared_bus_design(trace),
        average_traffic_design(trace),
        windowed,
        full_crossbar_design(trace),
    ]
    evaluations = compare_designs(app, designs, engine=engine)
    full_stats = evaluations["full"].stats
    rows = [
        [
            label,
            evaluations[label].bus_count,
            evaluations[label].stats.mean,
            evaluations[label].stats.maximum,
            evaluations[label].stats.mean / full_stats.mean,
        ]
        for label in ("shared", "average-traffic", "windowed", "full")
    ]
    print(
        format_table(
            ["design", "buses", "avg lat (cy)", "max lat (cy)", "avg vs full"],
            rows,
            title=f"design comparison on {app.name}",
        )
    )
    profile.report()
    return 0


def _cmd_trace(args) -> int:
    from pathlib import Path

    if args.app not in APPLICATIONS and Path(args.app).exists():
        return _cmd_trace_spans(args)
    from repro.errors import ConfigurationError

    if args.output is None:
        raise ConfigurationError(
            "trace: -o/--output is required when dumping an "
            "application's traffic trace (span mode needs an existing "
            "span-JSONL file instead)"
        )
    app = build_application(args.app)
    result = app.simulate_full_crossbar()
    save_trace_jsonl(result.trace, args.output)
    print(
        f"wrote {len(result.trace)} records "
        f"({result.trace.total_cycles} cycles) to {args.output}"
    )
    return 0


def _cmd_trace_spans(args) -> int:
    """Span mode of ``repro trace``: render/export a span capture."""
    from repro.errors import ConfigurationError
    from repro.obs import export as _export

    try:
        spans = _export.load_jsonl(args.app)
    except (ValueError, KeyError, TypeError) as error:
        raise ConfigurationError(
            f"{args.app} is not a span-JSONL file: {error}"
        )
    traces = sorted({span.trace_id for span in spans})
    print(
        f"{len(spans)} span(s) across {len(traces)} trace(s) "
        f"from {args.app}"
    )
    print()
    print(_export.format_span_tree(spans))
    if args.export_chrome:
        events = _export.write_chrome_trace(spans, args.export_chrome)
        print(
            f"\nwrote {events} Chrome trace events to "
            f"{args.export_chrome} (open in chrome://tracing or "
            f"https://ui.perfetto.dev)"
        )
    return 0


def _cmd_sweep_window(args) -> int:
    engine = _engine_from_args(args)
    profile = _PhaseProfile(args.profile, args.jobs)
    trace = synthetic_trace(
        burst_cycles=args.burst, total_cycles=max(80_000, args.burst * 40)
    )
    points = window_size_sweep(
        trace,
        args.windows,
        SynthesisConfig(max_targets_per_bus=None),
        engine=engine,
    )
    print(
        format_table(
            ["window (cy)", "IT buses", "TI buses", "total"],
            [
                [int(point.value), point.it_buses, point.ti_buses,
                 point.total_buses]
                for point in points
            ],
            title=f"window sweep (synthetic, burst ~{args.burst} cy)",
        )
    )
    if engine.cache is not None:
        print(f"cache: {engine.cache.stats}")
    profile.report()
    return 0


def _resolve_suite(name: str):
    """A built-in suite by name, or a suite loaded from a JSON file."""
    from pathlib import Path

    from repro.scenarios import SUITES, build_suite, load_suite

    if name in SUITES:
        return build_suite(name)
    if Path(name).exists():
        return load_suite(name)
    return build_suite(name)  # raises with the list of known suites


def _cmd_scenarios_list() -> int:
    from repro.scenarios import SUITES, build_suite

    rows = []
    for name in sorted(SUITES):
        suite = build_suite(name)
        rows.append([name, len(suite), suite.description])
    print(format_table(["suite", "scenarios", "description"], rows))
    return 0


def _cmd_scenarios_run(args) -> int:
    from repro.scenarios import ScenarioSuiteRunner

    suite = _resolve_suite(args.suite)
    engine = _engine_from_args(args)
    profile = _PhaseProfile(args.profile, args.jobs)
    config = SynthesisConfig(
        overlap_threshold=args.threshold,
        max_targets_per_bus=args.maxtb or None,
    )
    print(
        f"running scenario suite '{suite.name}' "
        f"({len(suite)} scenarios, policy={args.policy}, jobs={engine.jobs}) ..."
    )
    runner = ScenarioSuiteRunner(
        engine=engine,
        config=config,
        policy=args.policy,
        min_weight=args.min_weight,
        replay_latency=args.replay_latency,
    )
    report = runner.run(suite)
    print(report.summary())
    if args.explain_cache:
        print()
        print("staged-pipeline cache breakdown:")
        print(runner.explain_cache())
    if args.report:
        import json

        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote aggregated JSON report to {args.report}")
    if engine.cache is not None:
        print(f"cache: {engine.cache.stats}")
    profile.report()
    return 0


def _cmd_scenarios_export(args) -> int:
    from repro.scenarios import build_suite, save_suite

    suite = build_suite(args.suite)
    save_suite(suite, args.output)
    print(f"wrote suite '{suite.name}' ({len(suite)} scenarios) to {args.output}")
    return 0


def _cmd_pipeline_inspect_suite(args) -> int:
    from repro.errors import ConfigurationError
    from repro.scenarios import ScenarioSuiteRunner

    if args.window is not None:
        raise ConfigurationError(
            "--window applies to single-application inspection only; "
            "suite scenarios carry their own analysis windows "
            "(edit the suite's window_size fields instead)"
        )
    suite = _resolve_suite(args.app)
    engine = ExecutionEngine(jobs=1, cache=args.cache_dir)
    config = SynthesisConfig(
        overlap_threshold=args.threshold,
        max_targets_per_bus=args.maxtb or None,
        backend=args.backend,
    )
    # Replay is part of the suite's stage DAG: inspect always runs it so
    # the replay stage rows (and their cache behaviour) are visible.
    runner = ScenarioSuiteRunner(
        engine=engine, config=config, replay_latency=True
    )
    print(
        f"running the staged suite flow for '{suite.name}' "
        f"({len(suite)} scenarios, with latency replay) ..."
    )
    runner.run(suite)
    rows = [
        [scenario, stage, fingerprint[:12], summary]
        for scenario, stage, fingerprint, summary in runner.last_stage_rows
    ]
    print(
        format_table(
            ["scenario", "stage", "fingerprint", "artifact"],
            rows,
            title=f"per-scenario stage DAG for suite '{suite.name}'",
        )
    )
    print()
    print(runner.pipeline.counters.breakdown())
    return 0


def _cmd_pipeline_inspect(args) -> int:
    from pathlib import Path

    from repro.exec.cache import ResultCache
    from repro.pipeline import ArtifactStore, PipelineRunner, describe_stages
    from repro.scenarios import SUITES

    if args.app not in APPLICATIONS and (
        args.app in SUITES or Path(args.app).exists()
    ):
        return _cmd_pipeline_inspect_suite(args)
    app = build_application(args.app)
    config = _config_from_args(args)
    disk = ResultCache(args.cache_dir) if args.cache_dir else None
    runner = PipelineRunner(store=ArtifactStore(disk=disk))
    window = args.window or app.default_window
    print(
        f"running the staged flow for {app.name} "
        f"(window {window}, threshold {config.overlap_threshold:.0%}) ..."
    )
    trace = app.simulate_full_crossbar().trace
    outcome = runner.design(trace, config, window, label=app.name)
    rows = [
        [stage, fingerprint[:12], summary]
        for stage, fingerprint, summary in describe_stages(outcome)
    ]
    print(
        format_table(
            ["stage", "fingerprint", "artifact"],
            rows,
            title=f"stage artifacts for {app.name}",
        )
    )
    print()
    print(runner.counters.breakdown())
    return 0


def _cmd_pipeline(args) -> int:
    if args.pipeline_command == "inspect":
        return _cmd_pipeline_inspect(args)
    raise AssertionError(
        f"unhandled pipeline command {args.pipeline_command!r}"
    )


def _cmd_cache(args) -> int:
    from repro.exec.cache import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        print(f"cache {cache.cache_dir}: {cache.usage()}")
        return 0
    if args.cache_command == "prune":
        removed = cache.prune(args.max_bytes)
        print(
            f"pruned {removed} entries; cache {cache.cache_dir} now holds "
            f"{cache.usage()}"
        )
        return 0
    raise AssertionError(f"unhandled cache command {args.cache_command!r}")


def _cmd_scenarios(args) -> int:
    if args.scenarios_command == "list":
        return _cmd_scenarios_list()
    if args.scenarios_command == "run":
        return _cmd_scenarios_run(args)
    if args.scenarios_command == "export":
        return _cmd_scenarios_export(args)
    raise AssertionError(f"unhandled scenarios command {args.scenarios_command!r}")


def _cmd_serve(args) -> int:
    import signal

    from repro.server import serve as start_server

    if args.faults:
        from repro.resilience import install_from_spec

        plan = install_from_spec(args.faults)
        print(
            f"repro serve: fault injection ACTIVE "
            f"(seed={plan.seed}, points={', '.join(sorted(plan.rules))})"
        )

    if args.no_shm:
        from repro.pipeline import shm

        shm.set_enabled(False)

    server = start_server(
        host=args.host,
        port=args.port,
        engine_jobs=args.jobs,
        cache_dir=args.cache_dir,
        workers=args.workers,
        verbose=args.verbose,
        job_timeout=args.job_timeout,
        finished_ttl=args.finished_ttl,
        max_queue_depth=args.max_queue_depth,
        trace=not args.no_trace,
        log_json=args.log_json,
    )
    stop = threading.Event()

    def _request_stop(_signum, _frame) -> None:
        stop.set()

    # SIGINT/SIGTERM both mean "drain and exit"; a second Ctrl-C during
    # the drain falls through to KeyboardInterrupt and exits hard.
    previous = {
        sig: signal.signal(sig, _request_stop)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    print(f"repro serve: listening on {server.address}")
    print(
        f"  workers={args.workers} engine-jobs={args.jobs} "
        f"cache={args.cache_dir or '(none)'}"
    )
    try:
        stop.wait()
        print("repro serve: draining queue ...")
        server.stop(drain=True)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print("repro serve: stopped")
    return 0


def _captured_trace(args, run) -> int:
    """Run a command with span tracing armed; export spans as JSONL.

    The capture gets a synthetic ``cli.<command>`` root so every span
    recorded during the run (including pool-worker spans merged from
    the spool) hangs off one tree in the export.
    """
    from repro.obs import export as _export

    armed_here = not _tracing.tracing_enabled()
    if armed_here:
        _tracing.arm_tracing()
    try:
        with _tracing.root_span(f"cli.{args.command}"):
            code = run(args)
        count = _export.write_jsonl(
            _tracing.collect_spans(), args.trace_out
        )
        print(
            f"wrote {count} span(s) to {args.trace_out} "
            f"(inspect with 'repro trace {args.trace_out}')"
        )
    finally:
        if armed_here:
            _tracing.disarm_tracing()
    return code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list": lambda _args: _cmd_list(),
        "design": _cmd_design,
        "compare": _cmd_compare,
        "trace": _cmd_trace,
        "sweep-window": _cmd_sweep_window,
        "scenarios": _cmd_scenarios,
        "pipeline": _cmd_pipeline,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
    }
    handler = handlers.get(args.command)
    if handler is None:
        raise AssertionError(f"unhandled command {args.command!r}")
    try:
        if getattr(args, "trace_out", None):
            return _captured_trace(args, handler)
        return handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
