"""Seeded, deterministic fault injection.

A :class:`FaultPlan` names a set of **injection points** -- places in
the platform where a failure can be provoked on purpose -- and decides,
as a *pure function* of ``(seed, point, key)``, whether a given arrival
at that point fires. Purity is the whole design: pool workers, job
threads and the parent process all reach identical decisions without
any shared mutable state, so a chaos run is reproducible from its seed
alone and byte-identical assertions against a fault-free run are
meaningful.

Known injection points
----------------------
``worker.crash``
    A pool worker hard-exits (``os._exit``) when it picks up a matching
    task, producing a *real* ``BrokenProcessPool`` in the parent -- the
    exact failure the engine's retry/rebuild/degrade ladder exists for.
``cache.corrupt``
    A :class:`~repro.exec.cache.ResultCache` read treats the entry as
    corrupted (the same path a truncated or garbage file takes), so the
    caller must re-solve and overwrite.
``solver.slow``
    The branch-and-bound node loop sleeps ``delay_s`` per matching
    node, forcing wall-clock deadlines to trigger deterministically.
``io.transient``
    A cache write raises :class:`OSError` on matching attempts,
    exercising the write-retry + degrade-to-recomputation path.

Installation
------------
``install_plan(plan)`` activates a plan process-wide and (by default)
exports it to the ``REPRO_FAULTS`` environment variable, so pool
workers inherit it under ``fork`` (module global) *and* ``spawn``
(lazy env read), and a ``repro serve`` daemon started with
``--faults`` passes it to every job. ``clear_plan()`` removes both.

Decisions are keyed: call sites pass a stable key (task index plus
attempt number, a cache key, a node counter) and rules may restrict
themselves to matching keys via fnmatch patterns -- ``"*:a0"`` fires
only on first attempts, which is how a chaos test provokes "crash
once, recover on retry".
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs import metrics as _metrics

__all__ = [
    "FAULT_POINTS",
    "FAULTS_ENV_VAR",
    "FaultRule",
    "FaultPlan",
    "InjectedFault",
    "install_plan",
    "install_from_spec",
    "active_plan",
    "clear_plan",
    "should_inject",
    "maybe_crash_worker",
    "should_corrupt_cache",
    "maybe_slow_solver",
    "maybe_io_error",
    "fault_summary",
]

FAULTS_ENV_VAR = "REPRO_FAULTS"

FAULT_POINTS = (
    "worker.crash",
    "cache.corrupt",
    "solver.slow",
    "io.transient",
)

_WORKER_EXIT_CODE = 70  # EX_SOFTWARE: an induced, not accidental, death

_FAULTS_FIRED = _metrics.counter(
    "repro_faults_fired_total",
    "Injected faults that actually fired, by injection point.",
    ("point",),
)


class InjectedFault(OSError):
    """An error raised on purpose by the fault-injection framework.

    Subclasses :class:`OSError` so injected transient I/O failures take
    exactly the handling paths a real one would -- tolerant callers must
    not need to know about injection to survive it.
    """


@dataclass(frozen=True)
class FaultRule:
    """How one injection point misbehaves.

    Attributes
    ----------
    rate:
        Probability in ``[0, 1]`` that a matching arrival fires,
        decided by a seeded hash of the arrival's key (never by a live
        RNG -- see module docstring).
    match:
        Optional fnmatch patterns; when given, only keys matching at
        least one pattern are considered at all.
    max_hits:
        Per-process cap on how many times this rule fires (``None`` =
        unlimited). The cap is process-local state, so use it for
        single-process determinism (server tests), not for pool-worker
        coordination -- workers each count their own hits.
    delay_s:
        For delay-style points (``solver.slow``): seconds to sleep per
        firing arrival.
    """

    rate: float = 1.0
    match: Optional[Tuple[str, ...]] = None
    max_hits: Optional[int] = None
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"fault rate must lie in [0, 1], got {self.rate}"
            )
        if self.max_hits is not None and self.max_hits < 0:
            raise ConfigurationError("max_hits must be >= 0 or None")
        if self.delay_s < 0:
            raise ConfigurationError("delay_s must be >= 0")
        if self.match is not None:
            object.__setattr__(self, "match", tuple(self.match))

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"rate": self.rate}
        if self.match is not None:
            payload["match"] = list(self.match)
        if self.max_hits is not None:
            payload["max_hits"] = self.max_hits
        if self.delay_s:
            payload["delay_s"] = self.delay_s
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultRule":
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"fault rule must be an object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"rate", "match", "max_hits", "delay_s"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault rule field(s): {', '.join(sorted(unknown))}"
            )
        match = payload.get("match")
        return cls(
            rate=float(payload.get("rate", 1.0)),
            match=tuple(match) if match is not None else None,
            max_hits=payload.get("max_hits"),
            delay_s=float(payload.get("delay_s", 0.0)),
        )


def _decision_fraction(seed: int, point: str, key: str) -> float:
    """Uniform-in-[0,1) decision value, pure in (seed, point, key)."""
    digest = hashlib.sha256(
        f"{seed}:{point}:{key}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass
class FaultPlan:
    """A named set of fault rules plus the seed that drives decisions.

    The plan also keeps per-point *fired* tallies (process-local,
    thread-safe) so the server's ``/v1/stats`` can report what chaos
    actually happened.
    """

    seed: int = 0
    rules: Dict[str, FaultRule] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for point in self.rules:
            if point not in FAULT_POINTS:
                raise ConfigurationError(
                    f"unknown fault point {point!r}; known points: "
                    f"{', '.join(FAULT_POINTS)}"
                )
        self._fired: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- decisions ----------------------------------------------------

    def rule(self, point: str) -> Optional[FaultRule]:
        return self.rules.get(point)

    def decide(self, point: str, key: str) -> bool:
        """Whether an arrival at ``point`` with ``key`` fires.

        Pure in ``(seed, point, key)`` except for the ``max_hits``
        process-local cap; firing arrivals are tallied.
        """
        rule = self.rules.get(point)
        if rule is None:
            return False
        if rule.match is not None and not any(
            fnmatch.fnmatchcase(key, pattern) for pattern in rule.match
        ):
            return False
        if _decision_fraction(self.seed, point, key) >= rule.rate:
            return False
        with self._lock:
            if (
                rule.max_hits is not None
                and self._fired.get(point, 0) >= rule.max_hits
            ):
                return False
            self._fired[point] = self._fired.get(point, 0) + 1
        # Registry mirror (process-global, monotonic); the per-plan
        # tallies above stay authoritative for fault_summary() -- tests
        # assert them per plan, which a global counter cannot provide.
        _FAULTS_FIRED.inc(point=point)
        return True

    def fired(self) -> Dict[str, int]:
        """Per-point fired tallies (a consistent copy)."""
        with self._lock:
            return dict(self._fired)

    # -- (de)serialization --------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rules": {
                point: rule.to_dict()
                for point, rule in sorted(self.rules.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"fault plan must be an object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"seed", "rules"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan field(s): {', '.join(sorted(unknown))}"
            )
        rules = payload.get("rules", {})
        if not isinstance(rules, Mapping):
            raise ConfigurationError("fault plan 'rules' must be an object")
        return cls(
            seed=int(payload.get("seed", 0)),
            rules={
                point: FaultRule.from_dict(rule)
                for point, rule in rules.items()
            },
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"fault plan is not valid JSON: {error}"
            ) from error
        return cls.from_dict(payload)


# The process-wide active plan. ``None`` means "not yet resolved": the
# first consultation falls back to the environment, which is how spawn
# workers and subprocesses inherit a plan without explicit plumbing.
_ACTIVE: Optional[FaultPlan] = None
_RESOLVED = False
_STATE_LOCK = threading.Lock()


def install_plan(
    plan: Optional[FaultPlan], export_env: bool = True
) -> Optional[FaultPlan]:
    """Activate ``plan`` process-wide (``None`` deactivates).

    With ``export_env`` (the default) the plan is also written to the
    ``REPRO_FAULTS`` environment variable so child processes -- pool
    workers under any start method, subprocess smoke runs -- inherit
    it. Returns the installed plan.
    """
    global _ACTIVE, _RESOLVED
    with _STATE_LOCK:
        _ACTIVE = plan
        _RESOLVED = True
        if export_env:
            if plan is None:
                os.environ.pop(FAULTS_ENV_VAR, None)
            else:
                os.environ[FAULTS_ENV_VAR] = plan.to_json()
    return plan


def install_from_spec(spec: str, export_env: bool = True) -> FaultPlan:
    """Install a plan from a JSON string or a path to a JSON file.

    The ``repro serve --faults`` flag lands here; a spec starting with
    ``{`` is parsed inline, anything else is read as a file path.
    """
    text = spec
    if not spec.lstrip().startswith("{"):
        try:
            with open(spec, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise ConfigurationError(
                f"cannot read fault plan file {spec!r}: {error}"
            ) from error
    plan = FaultPlan.from_json(text)
    install_plan(plan, export_env=export_env)
    return plan


def clear_plan() -> None:
    """Deactivate fault injection and drop the env export."""
    install_plan(None)


def active_plan() -> Optional[FaultPlan]:
    """The process's active plan, resolving from the env on first use."""
    global _ACTIVE, _RESOLVED
    if _RESOLVED:
        return _ACTIVE
    with _STATE_LOCK:
        if not _RESOLVED:
            spec = os.environ.get(FAULTS_ENV_VAR)
            _ACTIVE = FaultPlan.from_json(spec) if spec else None
            _RESOLVED = True
    return _ACTIVE


def should_inject(point: str, key: str) -> bool:
    """Whether the active plan fires ``point`` for ``key`` (False when
    no plan is installed -- the hot-path cost is one None check)."""
    plan = active_plan()
    if plan is None:
        return False
    return plan.decide(point, key)


# -- call-site helpers (one per injection point) ----------------------


def maybe_crash_worker(key: str) -> None:
    """Hard-exit the current process if ``worker.crash`` fires.

    Called at pool-worker task entry; ``os._exit`` (no cleanup, no
    exception) is what a segfault or OOM kill looks like from the
    parent: a dead worker and a :class:`BrokenProcessPool`.
    """
    if should_inject("worker.crash", key):
        os._exit(_WORKER_EXIT_CODE)


def should_corrupt_cache(key: str) -> bool:
    """Whether a cache read of ``key`` must be treated as corrupted."""
    return should_inject("cache.corrupt", key)


def maybe_slow_solver(key: str) -> None:
    """Sleep the rule's ``delay_s`` if ``solver.slow`` fires."""
    plan = active_plan()
    if plan is None:
        return
    if plan.decide("solver.slow", key):
        rule = plan.rule("solver.slow")
        if rule is not None and rule.delay_s > 0:
            time.sleep(rule.delay_s)


def maybe_io_error(key: str) -> None:
    """Raise an injected transient :class:`OSError` if ``io.transient``
    fires for ``key`` (call sites include the attempt number in the
    key, so retries re-decide rather than re-fire unconditionally)."""
    if should_inject("io.transient", key):
        raise InjectedFault(f"injected transient I/O failure ({key})")


def fault_summary() -> Optional[Dict[str, Any]]:
    """Observability payload for ``/v1/stats``: the active plan plus
    its per-point fired tallies, or ``None`` when injection is off."""
    plan = active_plan()
    if plan is None:
        return None
    return {
        "seed": plan.seed,
        "points": sorted(plan.rules),
        "fired": plan.fired(),
    }
