"""Retry policy and degradation accounting for the execution engine.

:class:`RetryPolicy` bounds how hard :class:`~repro.exec.engine.
ExecutionEngine` fights before giving ground: a per-task retry budget,
a capped exponential backoff between recovery attempts, and at most
``pool_rebuilds`` fresh pools per batch. Only when every rung of that
ladder is exhausted does a batch degrade to serial execution -- and
:class:`EngineStats` counts every rung taken, so "we degraded" is an
observable fact (surfaced through ``/v1/stats``) instead of a silent
``except: pass``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict

from repro.errors import ConfigurationError
from repro.obs import metrics as _metrics

__all__ = ["RetryPolicy", "EngineStats"]

_ENGINE_EVENTS = _metrics.counter(
    "repro_engine_events_total",
    "Execution-engine recovery ladder events.",
    ("event",),
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on fault recovery in the execution engine.

    Attributes
    ----------
    task_retries:
        How many times a single task may be retried (in a healthy or
        rebuilt pool) after a worker failure before it falls back to
        an in-process serial solve.
    pool_rebuilds:
        How many times a broken process pool may be torn down and
        rebuilt per batch. Past this budget the remaining tasks run
        serially.
    backoff_s / backoff_cap_s:
        Sleep before recovery attempt *n* is ``backoff_s * 2**n``
        capped at ``backoff_cap_s`` -- enough to let a transient
        resource squeeze pass, small enough not to dominate latency.
    """

    task_retries: int = 1
    pool_rebuilds: int = 1
    backoff_s: float = 0.05
    backoff_cap_s: float = 1.0

    def __post_init__(self) -> None:
        if self.task_retries < 0:
            raise ConfigurationError("task_retries must be >= 0")
        if self.pool_rebuilds < 0:
            raise ConfigurationError("pool_rebuilds must be >= 0")
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ConfigurationError("backoff values must be >= 0")

    def backoff_for(self, attempt: int) -> float:
        """Backoff before recovery attempt ``attempt`` (0-based)."""
        return min(self.backoff_s * (2**attempt), self.backoff_cap_s)


class EngineStats:
    """Thread-safe tally of the engine's degradation events.

    One instance is shared across every engine scoped from the same
    parent (``ExecutionEngine.scoped``), so the serve daemon's
    ``/v1/stats`` aggregates recovery activity across all jobs.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.task_retries = 0
        self.pool_rebuilds = 0
        self.serial_fallbacks = 0
        self.serial_tasks = 0

    def record_task_retry(self, count: int = 1) -> None:
        with self._lock:
            self.task_retries += count
        _ENGINE_EVENTS.inc(count, event="task_retry")

    def record_pool_rebuild(self) -> None:
        with self._lock:
            self.pool_rebuilds += 1
        _ENGINE_EVENTS.inc(event="pool_rebuild")

    def record_serial_fallback(self, tasks: int) -> None:
        """A batch (or its remainder) gave up on the pool entirely."""
        with self._lock:
            self.serial_fallbacks += 1
            self.serial_tasks += tasks
        _ENGINE_EVENTS.inc(event="serial_fallback")
        _ENGINE_EVENTS.inc(tasks, event="serial_task")

    @property
    def degraded(self) -> bool:
        """Whether any recovery beyond plain retries was ever needed."""
        with self._lock:
            return self.serial_fallbacks > 0 or self.pool_rebuilds > 0

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "task_retries": self.task_retries,
                "pool_rebuilds": self.pool_rebuilds,
                "serial_fallbacks": self.serial_fallbacks,
                "serial_tasks": self.serial_tasks,
                "degraded": self.serial_fallbacks > 0
                or self.pool_rebuilds > 0,
            }
