"""repro.resilience -- deterministic fault injection + fault tolerance.

Two halves of one contract:

* :mod:`repro.resilience.faults` injects failures on purpose -- a
  seeded :class:`FaultPlan` of named points (``worker.crash``,
  ``cache.corrupt``, ``solver.slow``, ``io.transient``) whose
  decisions are pure functions of ``(seed, point, key)``, so chaos
  runs are reproducible and inherited by pool workers and the serve
  daemon via the ``REPRO_FAULTS`` environment variable.
* :mod:`repro.resilience.retry` bounds how the platform absorbs those
  failures -- :class:`RetryPolicy` (per-task retries, capped backoff,
  one pool rebuild) and :class:`EngineStats` (counted, surfaced
  degradation instead of silent fallbacks).

The chaos test suite (``tests/resilience/``) closes the loop: under an
installed plan, synthesis reports must stay byte-identical to a
fault-free run.
"""

from repro.resilience.faults import (
    FAULT_POINTS,
    FAULTS_ENV_VAR,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    clear_plan,
    fault_summary,
    install_from_spec,
    install_plan,
    maybe_crash_worker,
    maybe_io_error,
    maybe_slow_solver,
    should_corrupt_cache,
    should_inject,
)
from repro.resilience.retry import EngineStats, RetryPolicy

__all__ = [
    "FAULT_POINTS",
    "FAULTS_ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "EngineStats",
    "RetryPolicy",
    "active_plan",
    "clear_plan",
    "fault_summary",
    "install_from_spec",
    "install_plan",
    "maybe_crash_worker",
    "maybe_io_error",
    "maybe_slow_solver",
    "should_corrupt_cache",
    "should_inject",
]
