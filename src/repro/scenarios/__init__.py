"""Workload scenarios and multi-use-case robust synthesis.

The paper designs one crossbar per application; a shipping SoC serves
many use-cases. This subpackage turns the reproduction into a
fleet-scale design service:

* :mod:`~repro.scenarios.model` -- the :class:`Scenario` record (a
  named workload binding a traffic source to load scaling, weights and
  QoS constraints) and the :class:`ScenarioSuite` container with JSON
  round-trip,
* :mod:`~repro.scenarios.library` -- built-in suites stamped out from
  the synthetic profile generators and the registered applications,
* :mod:`~repro.scenarios.runner` -- the suite runner: per-scenario
  synthesis fanned out through the
  :class:`~repro.exec.engine.ExecutionEngine`, one robust design via
  :class:`~repro.core.multi.RobustSynthesizer`, per-scenario replay
  validation and an aggregated report with a Pareto view.

Contracts
---------
* **Content addressing.** Scenario traffic is content-addressed like
  any trace: per-scenario window/conflict/bind stages and the
  suite-level merged bind carry pipeline fingerprints, and individual
  solves are whole-result-keyed through the execution engine.
* **Caching.** The suite runner keeps its artifact store alive across
  :meth:`~repro.scenarios.runner.ScenarioSuiteRunner.run` calls --
  editing a suite re-executes only the changed scenarios' stages
  (incremental re-synthesis) -- and persists serializable stages into
  the engine's cache directory when one is configured.
* **Determinism.** Suites and scenarios are deterministic given their
  seeds and weights; a warm rerun's report is byte-identical to a cold
  run at any ``jobs`` count (asserted by the incremental and
  replay-determinism suites).
"""

from repro.scenarios.model import (
    SUITE_FORMAT,
    Scenario,
    ScenarioSuite,
    load_suite,
    save_suite,
    suite_from_dict,
    suite_to_dict,
)
from repro.scenarios.library import SUITES, build_suite
from repro.scenarios.runner import (
    ScenarioOutcome,
    SuiteParetoPoint,
    SuiteRunReport,
    ScenarioSuiteRunner,
)

__all__ = [
    "Scenario",
    "ScenarioSuite",
    "SUITE_FORMAT",
    "suite_to_dict",
    "suite_from_dict",
    "save_suite",
    "load_suite",
    "SUITES",
    "build_suite",
    "ScenarioSuiteRunner",
    "ScenarioOutcome",
    "SuiteParetoPoint",
    "SuiteRunReport",
]
