"""The scenario-suite runner: fleet synthesis behind one entry point.

:class:`ScenarioSuiteRunner` takes a :class:`~repro.scenarios.model.ScenarioSuite`
and produces a :class:`SuiteRunReport`:

1. every scenario's trace is built deterministically,
2. every scenario is synthesized *individually* through the
   :class:`~repro.exec.engine.ExecutionEngine` -- scenarios fan out over
   worker processes and solved points come back from the
   content-addressed cache on repeat runs,
3. one *robust* crossbar is synthesized across all scenarios
   (:class:`~repro.core.multi.RobustSynthesizer`) under the selected
   merge policy,
4. the shared design is replayed against every scenario's own problem
   (capacity + separation audit, per-scenario worst-case overlap), and
   optionally (``replay_latency=True``) through the platform simulator
   for *every* scenario kind, reporting observed packet latency:
   full-load app-backed scenarios replay their live programs, while
   profile-backed, load-scaled and thinned scenarios replay their
   recorded traces through a trace-driven workload driver
   (:class:`~repro.platform.drivers.TraceDrivenInitiator`); replay
   results are cached pipeline stages
   (:class:`~repro.pipeline.artifacts.ReplayArtifact`) and the misses
   fan out over the engine's process pool,
5. the report aggregates everything: a per-scenario table (own optimum
   vs the robust design), violation tables, and a Pareto view over
   (bus count, worst-case overlap) across all candidate designs.

Every step above runs as a stage of the staged pipeline
(:mod:`repro.pipeline`) through a runner-owned artifact store that
*persists across* :meth:`ScenarioSuiteRunner.run` calls. That makes
suite editing incremental: re-running an edited suite rebuilds, windows
and re-solves only the scenarios whose content changed -- everything
else is served from the store -- and then re-runs merge/replay on the
cached per-scenario analyses. The per-stage hit/miss breakdown of the
last run is available from :meth:`ScenarioSuiteRunner.explain_cache`
(surfaced by ``repro scenarios run --explain-cache``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.analysis.textplot import xy_plot
from repro.core.binding import binding_overlap_objective
from repro.core.multi import (
    RobustSynthesisReport,
    RobustSynthesizer,
    ScenarioSideCheck,
    _check_policy,
    _empty_conflicts,
)
from repro.core.problem import CrossbarDesignProblem
from repro.core.spec import BusBinding, CrossbarDesign, SynthesisConfig
from repro.core.validate import audit_binding
from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.exec.engine import ExecutionEngine, ReplayTask, SynthesisTask
from repro.exec.serialize import SynthesisResult, result_to_dict
from repro.pipeline.artifacts import (
    CollectedTraffic,
    ReplayArtifact,
    stage_fingerprint,
)
from repro.pipeline.runner import PipelineRunner
from repro.pipeline.store import ArtifactStore, StageCounters
from repro.platform.drivers import TraceDrivenInitiator, replay_platform
from repro.platform.metrics import LatencyStats
from repro.scenarios.model import Scenario, ScenarioSuite
from repro.traffic.trace import TrafficTrace

__all__ = [
    "REPORT_FORMAT",
    "ScenarioOutcome",
    "SuiteParetoPoint",
    "SuiteRunReport",
    "ScenarioSuiteRunner",
]

REPORT_FORMAT = "repro-scenario-report-v1"


@dataclass(frozen=True)
class ScenarioOutcome:
    """Everything the suite run learned about one scenario."""

    scenario: Scenario
    num_records: int
    total_cycles: int
    window_size: int
    individual: SynthesisResult
    it_check: ScenarioSideCheck
    ti_check: ScenarioSideCheck
    latency: Optional[LatencyStats] = None
    """Observed packet latency of the robust design replayed through the
    platform simulator -- populated for every scenario kind when the
    runner was built with ``replay_latency=True``: full-load app-backed
    scenarios replay their live programs, profile-backed and load-scaled
    or thinned scenarios replay their recorded traces through a
    trace-driven workload driver."""

    latency_skipped: Optional[str] = None
    """Why replay could not cover this scenario (e.g. ``"empty trace"``);
    ``None`` when replay ran or was not requested. Reports render this
    as an explicit ``skipped (<reason>)`` marker instead of silently
    omitting the latency value."""

    @property
    def individual_buses(self) -> int:
        """This scenario's own optimal bus count (both crossbars)."""
        return self.individual.bus_count

    @property
    def violations(self) -> Tuple[str, ...]:
        """All replay violations of the robust design on this scenario."""
        return (
            self.it_check.capacity_violations
            + self.it_check.separation_violations
            + self.ti_check.capacity_violations
            + self.ti_check.separation_violations
        )

    @property
    def worst_case_overlap(self) -> int:
        """Worst per-bus overlap (cycles) under the robust design."""
        return max(self.it_check.max_bus_overlap, self.ti_check.max_bus_overlap)


@dataclass(frozen=True)
class SuiteParetoPoint:
    """One candidate design evaluated across the whole suite.

    ``worst_case_overlap`` is the suite-wide maximum of Eq. 11's
    objective (the serialization-latency proxy the binding optimizer
    minimizes); ``violations`` counts capacity/separation failures when
    the candidate is replayed on every scenario. The Pareto front is
    taken over (bus_count, worst_case_overlap) among violation-free
    candidates.
    """

    label: str
    bus_count: int
    worst_case_overlap: int
    violations: int
    on_front: bool = False


@dataclass(frozen=True)
class SuiteRunReport:
    """Aggregated outcome of one scenario-suite run."""

    suite_name: str
    policy: str
    robust: RobustSynthesisReport
    outcomes: Tuple[ScenarioOutcome, ...]
    pareto: Tuple[SuiteParetoPoint, ...]

    @property
    def robust_buses(self) -> int:
        return self.robust.design.bus_count

    @property
    def total_violations(self) -> int:
        return sum(len(outcome.violations) for outcome in self.outcomes)

    @staticmethod
    def _latency_cell(outcome: "ScenarioOutcome") -> str:
        if outcome.latency is not None:
            return f"{outcome.latency.mean:.1f}"
        if outcome.latency_skipped is not None:
            return f"skipped ({outcome.latency_skipped})"
        return "-"

    def summary(self) -> str:
        """The aggregated plain-text report."""
        with_latency = any(
            outcome.latency is not None or outcome.latency_skipped is not None
            for outcome in self.outcomes
        )
        rows = [
            [
                outcome.scenario.name,
                outcome.scenario.source,
                outcome.num_records,
                outcome.window_size,
                f"{outcome.individual.design.it.num_buses}+"
                f"{outcome.individual.design.ti.num_buses}",
                outcome.individual_buses,
                len(outcome.violations),
                outcome.worst_case_overlap,
            ]
            + ([self._latency_cell(outcome)] if with_latency else [])
            for outcome in self.outcomes
        ]
        headers = ["scenario", "source", "packets", "window", "own IT+TI",
                   "own buses", "robust viol", "robust maxov"]
        if with_latency:
            headers.append("avg lat (cy)")
        parts = [
            format_table(
                headers,
                rows,
                title=f"scenario suite '{self.suite_name}' "
                f"({len(self.outcomes)} scenarios, policy={self.policy})",
            ),
            "",
            self.robust.summary(),
        ]
        violation_rows = [
            [outcome.scenario.name, violation]
            for outcome in self.outcomes
            for violation in outcome.violations
        ]
        if violation_rows:
            parts += [
                "",
                format_table(
                    ["scenario", "violation"],
                    violation_rows,
                    title="replay violations of the robust design",
                ),
            ]
        parts += [
            "",
            format_table(
                ["design", "buses", "worst maxov", "violations", "pareto"],
                [
                    [
                        point.label,
                        point.bus_count,
                        point.worst_case_overlap,
                        point.violations,
                        "*" if point.on_front else "",
                    ]
                    for point in self.pareto
                ],
                title="suite-wide design candidates "
                "(buses vs worst-case overlap)",
            ),
        ]
        feasible = [point for point in self.pareto if point.violations == 0]
        if len(feasible) >= 2:
            parts += [
                "",
                xy_plot(
                    [float(point.bus_count) for point in feasible],
                    [float(point.worst_case_overlap) for point in feasible],
                    title="feasible candidates: worst-case overlap vs buses",
                    x_label="buses",
                    y_label="maxov",
                ),
            ]
        return "\n".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready encoding of the aggregated report."""

        def binding_dict(binding: BusBinding) -> Dict[str, Any]:
            return {
                "binding": list(binding.binding),
                "num_buses": binding.num_buses,
                "max_bus_overlap": binding.max_bus_overlap,
                "optimal": binding.optimal,
            }

        def check_dict(check: ScenarioSideCheck) -> Dict[str, Any]:
            return {
                "capacity_violations": list(check.capacity_violations),
                "separation_violations": list(check.separation_violations),
                "max_bus_overlap": check.max_bus_overlap,
            }

        return {
            "format": REPORT_FORMAT,
            "suite": self.suite_name,
            "policy": self.policy,
            "robust": {
                "label": self.robust.design.label,
                "bus_count": self.robust.design.bus_count,
                "it": binding_dict(self.robust.design.it),
                "ti": binding_dict(self.robust.design.ti),
                "it_conflicts": self.robust.it_report.conflicts.num_conflicts,
                "ti_conflicts": self.robust.ti_report.conflicts.num_conflicts,
                "total_violations": self.robust.total_violations,
            },
            "scenarios": [
                {
                    "scenario": outcome.scenario.to_dict(),
                    "packets": outcome.num_records,
                    "total_cycles": outcome.total_cycles,
                    "window_size": outcome.window_size,
                    "individual": result_to_dict(outcome.individual),
                    "it_check": check_dict(outcome.it_check),
                    "ti_check": check_dict(outcome.ti_check),
                    # Latency replay is opt-in; the keys appear only when
                    # it ran, keeping reports byte-identical otherwise.
                    **(
                        {"latency": asdict(outcome.latency)}
                        if outcome.latency is not None
                        else {}
                    ),
                    **(
                        {"latency_skipped": outcome.latency_skipped}
                        if outcome.latency_skipped is not None
                        else {}
                    ),
                }
                for outcome in self.outcomes
            ],
            "pareto": [
                {
                    "label": point.label,
                    "bus_count": point.bus_count,
                    "worst_case_overlap": point.worst_case_overlap,
                    "violations": point.violations,
                    "on_front": point.on_front,
                }
                for point in self.pareto
            ],
        }


@dataclass(frozen=True)
class _ScenarioReplay:
    """One scenario's latency-replay verdict (internal bookkeeping)."""

    latency: Optional[LatencyStats]
    skipped: Optional[str]
    fingerprint: str = ""
    summary: str = ""


class ScenarioSuiteRunner:
    """Drives a suite end to end; see the module docstring.

    Parameters
    ----------
    engine:
        Execution engine for the per-scenario individual solves and the
        batched replay simulations (parallelism + whole-result caching).
    replay_latency:
        Also replay the robust design through the platform simulator
        for *every* scenario, reporting average packet latency next to
        the capacity/separation audit. Full-load app-backed scenarios
        replay their live programs (closed-loop); profile-backed,
        load-scaled and thinned scenarios replay their recorded traces
        through a :class:`~repro.platform.drivers.TraceDrivenInitiator`.
        Replays run as a cached pipeline stage
        (:class:`~repro.pipeline.artifacts.ReplayArtifact`), so suite
        re-runs reuse simulated latencies instead of re-simulating; the
        rare scenario replay cannot cover (e.g. an empty trace) is
        marked ``skipped (<reason>)`` in the report.
    pipeline:
        The stage runner; by default a fresh
        :class:`~repro.pipeline.PipelineRunner` whose store persists
        across :meth:`run` calls on this runner (the incremental path)
        and -- when the engine has a cache directory -- persists
        serializable stages there too.
    """

    def __init__(
        self,
        engine: Optional[ExecutionEngine] = None,
        config: Optional[SynthesisConfig] = None,
        policy: str = "union",
        min_weight: float = 0.5,
        replay_latency: bool = False,
        pipeline: Optional[PipelineRunner] = None,
    ) -> None:
        _check_policy(policy)
        self.engine = engine if engine is not None else ExecutionEngine(jobs=1)
        self.config = config or SynthesisConfig()
        self.policy = policy
        self.min_weight = min_weight
        self.replay_latency = replay_latency
        if pipeline is None:
            disk = None
            if self.engine.cache is not None:
                # A separate ResultCache *instance* on the engine's
                # directory: stage entries share the directory (one
                # prune covers both) without polluting the whole-result
                # hit/miss statistics callers observe on engine.cache.
                disk = ResultCache(self.engine.cache.cache_dir)
            pipeline = PipelineRunner(
                store=ArtifactStore(disk=disk), memoize_bindings=True
            )
        self.pipeline = pipeline
        self.last_run_breakdown: Dict[str, Dict[str, int]] = {}
        self.last_stage_rows: List[Tuple[str, str, str, str]] = []
        """(scenario, stage, fingerprint, summary) rows of the last run's
        per-scenario stage DAG (``repro pipeline inspect <suite>``)."""

    def run(self, suite: ScenarioSuite) -> SuiteRunReport:
        """Synthesize the suite: every scenario alone, then one robust
        crossbar validated against all of them.

        Re-running after editing the suite re-executes only the changed
        scenarios' per-scenario stages (trace build, windowing,
        conflicts, individual solve); unchanged scenarios are served
        from the pipeline store and only merge/replay re-runs on the
        cached analyses.
        """
        before = self.pipeline.counters.snapshot()
        scenarios = list(suite.scenarios)
        # ~6 store entries per scenario and run (trace, 2x window, 2x
        # conflicts, individual) plus suite-level artifacts: size the
        # LRU so one run can never evict its own working set, or the
        # incremental guarantee would degrade silently on big suites.
        self.pipeline.store.reserve(8 * len(scenarios) + 32)
        collected = [self._scenario_traffic(s) for s in scenarios]
        traces = [artifact.trace for artifact in collected]
        self._check_platform(suite, scenarios, traces)
        windows = [
            scenario.effective_window(trace)
            for scenario, trace in zip(scenarios, traces)
        ]

        # Per-scenario analyses (phases 2-3) as cached pipeline stages.
        # The robust problems are always uniform-windowed (the merge
        # policies align windows by index), matching the historical
        # CrossbarDesignProblem.from_trace behaviour.
        analysis_config = replace(self.config, variable_windows=False)
        it_sides = []
        ti_sides = []
        for artifact, window in zip(collected, windows):
            it_windowed = self.pipeline.window(
                artifact, analysis_config, window, mirrored=False
            )
            ti_windowed = self.pipeline.window(
                artifact, analysis_config, window, mirrored=True
            )
            it_sides.append(
                (it_windowed, self.pipeline.conflicts(it_windowed, analysis_config))
            )
            ti_sides.append(
                (ti_windowed, self.pipeline.conflicts(ti_windowed, analysis_config))
            )

        individuals, individual_fingerprints = self._individual_results(
            scenarios, collected, traces, windows
        )

        names = [scenario.name for scenario in scenarios]
        robust = RobustSynthesizer(
            self.config, policy=self.policy, min_weight=self.min_weight
        ).design_from_artifacts(
            self.pipeline, it_sides, ti_sides, names=names, weights=suite.weights
        )

        replays = self._replay_latencies(scenarios, collected, robust.design)

        outcomes = tuple(
            ScenarioOutcome(
                scenario=scenario,
                num_records=len(trace),
                total_cycles=trace.total_cycles,
                window_size=window,
                individual=individual,
                it_check=it_check,
                ti_check=ti_check,
                latency=replay.latency,
                latency_skipped=replay.skipped,
            )
            for scenario, trace, window, individual, it_check, ti_check, replay
            in zip(
                scenarios,
                traces,
                windows,
                individuals,
                robust.it_report.scenario_checks,
                robust.ti_report.scenario_checks,
                replays,
            )
        )
        self.last_stage_rows = self._stage_rows(
            scenarios,
            collected,
            it_sides,
            ti_sides,
            individuals,
            individual_fingerprints,
            robust,
            replays,
        )
        pareto = self._pareto_view(
            outcomes,
            robust.design,
            [windowed.problem for windowed, _ in it_sides],
            [windowed.problem for windowed, _ in ti_sides],
        )
        self.last_run_breakdown = StageCounters.delta(
            before, self.pipeline.counters.snapshot()
        )
        return SuiteRunReport(
            suite_name=suite.name,
            policy=self.policy,
            robust=robust,
            outcomes=outcomes,
            pareto=pareto,
        )

    def explain_cache(self) -> str:
        """Per-stage computed/memo-hit/disk-hit table of the last run."""
        return StageCounters.format_tables(self.last_run_breakdown)

    # -- per-scenario stages ------------------------------------------

    def _scenario_trace_key(self, scenario: Scenario) -> str:
        """Content key of a scenario's trace-build stage.

        The key covers exactly the fields that determine the trace
        (source, params, load scale, QoS targets, and the name -- it
        seeds app-trace thinning); editing a scenario's weight or
        description therefore rebuilds nothing.
        """
        spec = {
            "source": scenario.source,
            "params": dict(scenario.params),
            "load_scale": scenario.load_scale,
            "critical_targets": list(scenario.critical_targets),
            "name": scenario.name,
        }
        return stage_fingerprint("scenario-trace", None, spec)

    def _scenario_traffic(self, scenario: Scenario) -> CollectedTraffic:
        """Phase 1 per scenario, content-addressed by the scenario spec."""
        return self.pipeline.memoized(
            "scenario-trace",
            self._scenario_trace_key(scenario),
            lambda: CollectedTraffic.from_trace(
                scenario.build_trace(), label=scenario.name
            ),
        )

    def _individual_results(
        self,
        scenarios: Sequence[Scenario],
        collected: Sequence[CollectedTraffic],
        traces: Sequence[TrafficTrace],
        windows: Sequence[int],
    ) -> Tuple[List[SynthesisResult], List[str]]:
        """Each scenario's own optimum, memoized across runs.

        Unmemoized scenarios go to the engine in one batch (parallel +
        engine-cached); a rerun of an edited suite therefore hands the
        engine only the changed scenarios. ``computed`` here counts
        "delegated to the engine" -- the engine may still serve the
        point from its own whole-result cache. Returns the results and
        their stage fingerprints, both in suite order.
        """
        tasks = [
            SynthesisTask(
                config=replace(self.config, window_size=window),
                window_size=window,
            )
            for window in windows
        ]
        tags = [
            f"scenario:{scenario.source}:{scenario.name}"
            for scenario in scenarios
        ]
        results: List[Optional[SynthesisResult]] = [None] * len(scenarios)
        fingerprints: List[str] = []
        pending: List[Tuple[int, str]] = []
        for index, (artifact, task, tag) in enumerate(
            zip(collected, tasks, tags)
        ):
            fingerprint = stage_fingerprint(
                "individual-solve",
                artifact.fingerprint,
                {
                    "config": asdict(task.config),
                    "window": task.window_size,
                    "tag": tag,
                },
            )
            fingerprints.append(fingerprint)
            cached = self.pipeline.store.get(fingerprint)
            if cached is not None:
                self.pipeline.counters.record_memo_hit("individual-solve")
                results[index] = cached
                continue
            pending.append((index, fingerprint))
        if pending:
            solved = self.engine.run_batch(
                [(traces[index], tasks[index]) for index, _ in pending],
                applications=[tags[index] for index, _ in pending],
            )
            for (index, fingerprint), result in zip(pending, solved):
                self.pipeline.counters.record_computed("individual-solve")
                self.pipeline.store.put(fingerprint, result)
                results[index] = result
        return results, fingerprints  # type: ignore[return-value]

    def _replay_plan(
        self, scenario: Scenario, trace: TrafficTrace, design: CrossbarDesign
    ) -> Tuple[Any, ReplayTask]:
        """The driver + portable task that replay this scenario.

        Full-load app-backed scenarios replay their live programs -- the
        closed-loop path reacts to the candidate fabric's contention
        exactly as the deployed software would. Every other kind
        (profile-backed, load-scaled, thinned) replays its recorded
        trace: the records already reflect scaling and thinning, and the
        trace-driven initiator re-issues them through the
        arbiter/bus/target models at their recorded cycles.
        """
        from repro.apps import build_application
        from repro.exec.fingerprint import canonical_json

        if scenario.source_kind == "app" and scenario.load_scale == 1.0:
            application = build_application(
                scenario.source_name, **dict(scenario.params)
            )
            driver = application.driver(
                source_key=canonical_json(
                    {"source": scenario.source, "params": dict(scenario.params)}
                )
            )
            task = ReplayTask(
                it_binding=design.it.binding,
                ti_binding=design.ti.binding,
                budget=application.sim_cycles * 4,
                app_name=scenario.source_name,
                app_params=tuple(sorted(scenario.params.items())),
                label=scenario.name,
            )
            return driver, task
        if scenario.source_kind == "app":
            platform = build_application(
                scenario.source_name, **dict(scenario.params)
            ).config
        else:
            platform = replay_platform(trace)
        driver = TraceDrivenInitiator(
            trace, config=platform, label=scenario.name
        )
        task = ReplayTask(
            it_binding=design.it.binding,
            ti_binding=design.ti.binding,
            budget=driver.sim_cycles,
            trace=trace,
            platform=platform,
            label=scenario.name,
        )
        return driver, task

    def _replay_latencies(
        self,
        scenarios: Sequence[Scenario],
        collected: Sequence[CollectedTraffic],
        design: CrossbarDesign,
    ) -> List[_ScenarioReplay]:
        """The validation stage: latency replay of the robust design
        through the platform simulator, for every scenario kind.

        Replays run as a cached pipeline stage: cached scenarios are
        served from the store (memory or disk), the misses fan out over
        the engine's replay batch (parallel when ``jobs > 1``), and
        every computed replay lands back in the store so reruns and
        other processes reuse it. A scenario replay cannot cover gets
        an explicit skip reason instead of a silently missing value.
        """
        if not self.replay_latency:
            return [_ScenarioReplay(None, None)] * len(scenarios)
        replays: List[Optional[_ScenarioReplay]] = [None] * len(scenarios)
        pending: List[Tuple[int, ReplayTask, Optional[str]]] = []
        for index, (scenario, artifact) in enumerate(
            zip(scenarios, collected)
        ):
            trace = artifact.trace
            if len(trace) == 0:
                # Nothing to drive through the fabric: no packets means
                # no latency sample, however the fabric looks.
                replays[index] = _ScenarioReplay(None, "empty trace")
                continue
            driver, task = self._replay_plan(scenario, trace, design)
            fingerprint = self.pipeline.replay_fingerprint(
                driver, design, task.budget
            )
            if fingerprint is not None:
                cached = self.pipeline.lookup_replay(fingerprint)
                if cached is not None:
                    replays[index] = _ScenarioReplay(
                        cached.stats, None, fingerprint, cached.describe()
                    )
                    continue
            pending.append((index, task, fingerprint))
        if pending:
            outcomes = self.engine.run_replay_batch(
                [task for _index, task, _fingerprint in pending]
            )
            for (index, _task, fingerprint), outcome in zip(
                pending, outcomes
            ):
                artifact = ReplayArtifact(
                    stats=outcome.stats,
                    critical_stats=outcome.critical_stats,
                    finished=outcome.finished,
                    num_transactions=outcome.num_transactions,
                    simulated_cycles=outcome.simulated_cycles,
                    fingerprint=fingerprint or "",
                    label=outcome.label,
                )
                self.pipeline.record_replay(artifact)
                replays[index] = _ScenarioReplay(
                    artifact.stats,
                    None,
                    fingerprint or "",
                    artifact.describe(),
                )
        return replays  # type: ignore[return-value]

    def _stage_rows(
        self,
        scenarios: Sequence[Scenario],
        collected: Sequence[CollectedTraffic],
        it_sides: Sequence[Tuple],
        ti_sides: Sequence[Tuple],
        individuals: Sequence[SynthesisResult],
        individual_fingerprints: Sequence[str],
        robust: RobustSynthesisReport,
        replays: Sequence[_ScenarioReplay],
    ) -> List[Tuple[str, str, str, str]]:
        """The per-scenario stage DAG of this run, as display rows."""
        rows: List[Tuple[str, str, str, str]] = []
        for index, (scenario, artifact) in enumerate(
            zip(scenarios, collected)
        ):
            rows.append(
                (
                    scenario.name,
                    "scenario-trace",
                    self._scenario_trace_key(scenario),
                    f"{len(artifact.trace)} records, "
                    f"{artifact.trace.total_cycles} cycles",
                )
            )
            for side_name, sides in (("it", it_sides), ("ti", ti_sides)):
                windowed, conflicts = sides[index]
                rows.append(
                    (
                        scenario.name,
                        f"window[{side_name}]",
                        windowed.fingerprint,
                        windowed.describe(),
                    )
                )
                rows.append(
                    (
                        scenario.name,
                        f"conflicts[{side_name}]",
                        conflicts.fingerprint,
                        conflicts.describe(),
                    )
                )
            rows.append(
                (
                    scenario.name,
                    "individual-solve",
                    individual_fingerprints[index],
                    f"{individuals[index].bus_count} buses",
                )
            )
            if self.replay_latency:
                replay = replays[index]
                rows.append(
                    (
                        scenario.name,
                        "replay",
                        replay.fingerprint or "-",
                        replay.summary
                        or f"skipped ({replay.skipped})",
                    )
                )
        for side_name, side_report in (
            ("it", robust.it_report),
            ("ti", robust.ti_report),
        ):
            rows.append(
                (
                    "(suite)",
                    f"bind-merged[{side_name}]",
                    side_report.stage_fingerprint or "-",
                    f"{side_report.binding.num_buses} buses, maxov "
                    f"{side_report.binding.max_bus_overlap}",
                )
            )
        return rows

    @staticmethod
    def _check_platform(
        suite: ScenarioSuite,
        scenarios: Sequence[Scenario],
        traces: Sequence[TrafficTrace],
    ) -> None:
        shape = (traces[0].num_initiators, traces[0].num_targets)
        for scenario, trace in zip(scenarios[1:], traces[1:]):
            if (trace.num_initiators, trace.num_targets) != shape:
                raise ConfigurationError(
                    f"suite {suite.name!r}: scenario {scenario.name!r} runs "
                    f"on a {trace.num_initiators}x{trace.num_targets} "
                    f"platform but the suite started with "
                    f"{shape[0]}x{shape[1]}; a shared crossbar needs one "
                    f"platform shape"
                )

    def _pareto_view(
        self,
        outcomes: Sequence[ScenarioOutcome],
        robust_design: CrossbarDesign,
        it_problems: Sequence[CrossbarDesignProblem],
        ti_problems: Sequence[CrossbarDesignProblem],
    ) -> Tuple[SuiteParetoPoint, ...]:
        """Evaluate every candidate design across the whole suite.

        Candidates are each scenario's own optimal design plus the
        robust design. A candidate tuned to one scenario typically
        violates capacity or separation constraints on the others --
        which is exactly what the table demonstrates.
        """
        candidates: List[Tuple[str, CrossbarDesign]] = [
            (outcome.scenario.name, outcome.individual.design)
            for outcome in outcomes
        ]
        candidates.append((robust_design.label, robust_design))

        evaluated = []
        for label, design in candidates:
            worst = 0
            violations = 0
            for it_problem, ti_problem in zip(it_problems, ti_problems):
                for problem, binding in (
                    (it_problem, design.it),
                    (ti_problem, design.ti),
                ):
                    violations += len(
                        audit_binding(
                            problem,
                            _empty_conflicts(problem.num_targets),
                            binding.binding,
                            max_targets_per_bus=None,
                        )
                    )
                    worst = max(
                        worst,
                        binding_overlap_objective(problem, binding.binding),
                    )
            evaluated.append((label, design.bus_count, worst, violations))

        points = []
        for label, buses, worst, violations in evaluated:
            dominated = violations == 0 and any(
                other_violations == 0
                and other_buses <= buses
                and other_worst <= worst
                and (other_buses < buses or other_worst < worst)
                for _other, other_buses, other_worst, other_violations in evaluated
            )
            points.append(
                SuiteParetoPoint(
                    label=label,
                    bus_count=buses,
                    worst_case_overlap=worst,
                    violations=violations,
                    on_front=violations == 0 and not dominated,
                )
            )
        return tuple(points)


