"""Built-in scenario suites.

Each builder stamps a :class:`~repro.scenarios.model.ScenarioSuite` out
of the profile generators and registered applications. The suites share
one platform shape per suite (a robust crossbar needs identical core
counts across its scenarios) and are sized for their purpose:

* ``smoke`` -- four small, structurally distinct workloads; finishes in
  seconds and is the CI acceptance suite.
* ``mixed`` -- the paper's synthetic burst benchmark next to hotspot,
  open-loop and streaming use-cases at the 10x10 platform size.
* ``loadramp`` -- one burst workload replayed at four offered-load
  levels, the classic robustness-vs-load study.
* ``apps`` -- two registered MPSoC applications (full and thinned
  load) sharing the standard 2N+3 platform shape.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ConfigurationError
from repro.scenarios.model import Scenario, ScenarioSuite

__all__ = ["SUITES", "build_suite"]


def _build_smoke() -> ScenarioSuite:
    shape = {"num_initiators": 6, "num_targets": 6, "total_cycles": 24_000}
    return ScenarioSuite(
        name="smoke",
        description="four small distinct workloads on a 6x6 platform "
        "(CI-sized: seconds, not minutes)",
        scenarios=(
            Scenario(
                name="burst-sync",
                source="profile:burst",
                params={**shape, "burst_cycles": 400, "gap_cycles": 1_000,
                        "seed": 11},
                window_size=800,
                weight=3.0,
                description="paper-style sync-group bursts",
            ),
            Scenario(
                name="hotspot-dram",
                source="profile:hotspot",
                params={**shape, "hotspot_targets": (0, 1),
                        "hotspot_fraction": 0.5, "mean_gap": 150, "seed": 12},
                window_size=800,
                weight=2.0,
                description="half of all packets hit two shared targets",
            ),
            Scenario(
                name="poisson-background",
                source="profile:poisson",
                params={**shape, "rate": 0.003, "spread": 0.3, "seed": 13},
                window_size=800,
                weight=1.0,
                description="memoryless open-loop background load",
            ),
            Scenario(
                name="pipeline-stream",
                source="profile:pipeline",
                params={**shape, "frame_cycles": 4_000, "slot_cycles": 1_000,
                        "stage_lag": 450, "seed": 14},
                window_size=800,
                weight=2.0,
                description="staged producer/consumer frames",
            ),
        ),
    )


def _build_mixed() -> ScenarioSuite:
    shape = {"num_initiators": 10, "num_targets": 10, "total_cycles": 60_000}
    return ScenarioSuite(
        name="mixed",
        description="the paper's synthetic burst benchmark next to "
        "hotspot, open-loop and streaming use-cases (10x10)",
        scenarios=(
            Scenario(
                name="burst-benchmark",
                source="profile:burst",
                params={**shape, "burst_cycles": 1_000, "gap_cycles": 2_500,
                        "seed": 3},
                window_size=2_000,
                weight=4.0,
                description="Sec. 7.2 benchmark traffic",
            ),
            Scenario(
                name="burst-critical",
                source="profile:burst",
                params={**shape, "burst_cycles": 1_000, "gap_cycles": 2_500,
                        "seed": 4},
                critical_targets=(2, 5),
                window_size=2_000,
                weight=2.0,
                description="same load with two real-time streams (Sec. 7.3)",
            ),
            Scenario(
                name="hotspot-framebuffer",
                source="profile:hotspot",
                params={**shape, "hotspot_targets": (0,),
                        "hotspot_fraction": 0.4, "mean_gap": 200, "seed": 5},
                window_size=2_000,
                weight=2.0,
            ),
            Scenario(
                name="poisson-idle",
                source="profile:poisson",
                params={**shape, "rate": 0.002, "spread": 0.2, "seed": 6},
                window_size=2_000,
                weight=1.0,
            ),
            Scenario(
                name="pipeline-video",
                source="profile:pipeline",
                params={**shape, "frame_cycles": 10_000, "slot_cycles": 2_400,
                        "stage_lag": 1_100, "seed": 7},
                window_size=2_000,
                weight=3.0,
            ),
        ),
    )


def _build_loadramp() -> ScenarioSuite:
    shape = {"num_initiators": 8, "num_targets": 8, "total_cycles": 40_000,
             "burst_cycles": 600, "gap_cycles": 1_800}
    levels = (0.6, 1.0, 1.5, 2.0)
    return ScenarioSuite(
        name="loadramp",
        description="one burst workload at four offered-load levels "
        "(robustness vs load)",
        scenarios=tuple(
            Scenario(
                name=f"load-{int(level * 100):03d}",
                source="profile:burst",
                params={**shape, "seed": 21},
                load_scale=level,
                weight=1.0,
                window_size=1_200,
                description=f"burst workload at {level:.1f}x nominal load",
            )
            for level in levels
        ),
    )


def _build_apps() -> ScenarioSuite:
    return ScenarioSuite(
        name="apps",
        description="a registered MPSoC application at full and thinned "
        "load (mat2, 21 cores)",
        scenarios=(
            Scenario(
                name="mat2-full",
                source="app:mat2",
                weight=3.0,
                description="pipelined matmul at nominal load",
            ),
            Scenario(
                name="mat2-light",
                source="app:mat2",
                load_scale=0.6,
                weight=1.0,
                description="the same application, deterministically "
                "thinned to 60% of its packets",
            ),
        ),
    )


SUITES: Dict[str, Callable[[], ScenarioSuite]] = {
    "smoke": _build_smoke,
    "mixed": _build_mixed,
    "loadramp": _build_loadramp,
    "apps": _build_apps,
}
"""Builders for every built-in scenario suite."""


def build_suite(name: str) -> ScenarioSuite:
    """Build a built-in suite by registry name."""
    try:
        builder = SUITES[name]
    except KeyError:
        known = ", ".join(sorted(SUITES))
        raise ConfigurationError(
            f"unknown scenario suite {name!r}; available: {known}"
        ) from None
    return builder()
